//! The typed-layer correctness contract: the const-generic typed GEMM
//! paths (`fedzkt_tensor::typed`, the zoo dispatch table in
//! `fedzkt_nn::typed`, the fused conv panel shim) are a *proof* layer,
//! never a semantics layer. A full federated run with the typed paths
//! enabled must produce a `RunLog` **bit-identical** to the same run with
//! every typed shim disabled — same kernels, same `(m, k, n)`, same
//! accumulation order, so not a single float bit may move.
//!
//! Two CI anchors run at their checked-in size: `tiny` (the FedZKT
//! smoke preset — generator, distillation, MLP zoo) and `fedgkt-split`
//! (the asymmetric split-training algorithm whose n = 0 feature bundles
//! and server-head dense stack lean hardest on the typed wrappers).

use std::sync::Mutex;

use fedzkt::scenario::Scenario;
use fedzkt::tensor::typed;

/// The enable toggle is process-global; serialize the tests that flip it
/// so the "typed off" half of one comparison cannot overlap another.
static TOGGLE: Mutex<()> = Mutex::new(());

/// Restores the typed toggle on drop, panic included.
struct ToggleGuard;

impl Drop for ToggleGuard {
    fn drop(&mut self) {
        typed::set_enabled(true);
    }
}

fn run_log_json(sc: &Scenario) -> String {
    sc.clone().run().unwrap_or_else(|e| panic!("{}: {e}", sc.name)).to_json()
}

fn assert_typed_transparent(preset: &str) {
    let _serial = TOGGLE.lock().unwrap();
    let path = format!("{}/scenarios/{preset}.json", env!("CARGO_MANIFEST_DIR"));
    let sc = Scenario::load(&path).unwrap_or_else(|e| panic!("{path}: {e}"));

    assert!(typed::enabled(), "typed paths are the default");
    let typed_run = run_log_json(&sc);

    let _restore = ToggleGuard;
    typed::set_enabled(false);
    let dynamic_run = run_log_json(&sc);

    assert_eq!(
        typed_run, dynamic_run,
        "{preset}: typed run diverged from dynamic run"
    );
}

#[test]
fn tiny_run_log_is_bit_identical_typed_vs_dynamic() {
    assert_typed_transparent("tiny");
}

#[test]
fn fedgkt_split_run_log_is_bit_identical_typed_vs_dynamic() {
    assert_typed_transparent("fedgkt-split");
}
