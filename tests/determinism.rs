//! Whole-run determinism: the `seeded_rng`/`split_seed` contract promises
//! that a federated run is a pure function of its seed. Guarded here at the
//! outermost API — two `Simulation::run` invocations with the same seed
//! must produce bit-identical `RunLog` metrics, and different seeds must
//! not.
//!
//! Since the execution model went multi-threaded, the contract has a second
//! axis: the thread count is a throughput knob, never a semantics knob.
//! `threads = 1` and `threads = 4` must produce bit-identical logs — for
//! **every** algorithm running under the driver (FedZKT, FedMD and Fed-ET
//! dispatch their device phases onto the fleet; FedGKT's composite split
//! models train serially but still evaluate on the pool) — and the
//! parallel tensor kernels (GEMM, conv2d) must produce bit-identical
//! buffers.

use fedzkt::autograd::Var;
use fedzkt::core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{RunLog, SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::tensor::{par, seeded_rng, Tensor};
use std::sync::Mutex;

/// Serialises the tests in this binary: `par::set_threads` is process-global
/// state, so a kernel-level thread sweep must not interleave with another
/// test's run (libtest runs tests concurrently on multi-core hosts). Every
/// test takes this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial_guard() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn run_once(seed: u64) -> RunLog {
    run_with_threads(seed, 0)
}

fn run_with_threads(seed: u64, threads: usize) -> RunLog {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 96,
        test_n: 48,
        classes: 4,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Dirichlet { beta: 0.5 }
        .split(train.labels(), 4, 3, 7)
        .unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let sim_cfg = SimConfig { rounds: 2, seed, threads, ..Default::default() };
    let cfg = FedZktConfig {
        local_epochs: 1,
        distill_iters: 3,
        transfer_iters: 3,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        ..Default::default()
    };
    let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
    Simulation::builder(fed, test, sim_cfg).build().run().clone()
}

/// A FedMD run with partial participation, so lazy warmup, logit scoring,
/// and the fleet-dispatched digest/revisit phases are all exercised.
fn run_fedmd_with_threads(seed: u64, threads: usize) -> RunLog {
    let (train, test) = SynthConfig {
        family: DataFamily::Cifar10Like,
        img: 8,
        train_n: 96,
        test_n: 48,
        classes: 4,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let (public, _) = SynthConfig {
        family: DataFamily::Cifar100Like,
        img: 8,
        train_n: 64,
        test_n: 8,
        classes: 8,
        seed: 9,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let sim_cfg =
        SimConfig { rounds: 2, participation: 0.67, seed, threads, ..Default::default() };
    let cfg = FedMdConfig {
        public_warmup_epochs: 1,
        private_warmup_epochs: 1,
        alignment_size: 32,
        digest_epochs: 1,
        revisit_epochs: 1,
        batch_size: 16,
        lr: 0.05,
    };
    let fed = FedMd::new(&zoo, &train, &shards, public, cfg, &sim_cfg);
    Simulation::builder(fed, test, sim_cfg).build().run().clone()
}

/// Bit-level equality of every floating-point metric, so that a -0.0 vs 0.0
/// or NaN regression cannot hide behind `PartialEq`.
fn assert_bit_identical(a: &RunLog, b: &RunLog) {
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.round, rb.round);
        assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits());
        assert_eq!(
            ra.avg_device_accuracy.to_bits(),
            rb.avg_device_accuracy.to_bits()
        );
        assert_eq!(ra.device_accuracy.len(), rb.device_accuracy.len());
        for (x, y) in ra.device_accuracy.iter().zip(&rb.device_accuracy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        match (ra.global_accuracy, rb.global_accuracy) {
            (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
            (None, None) => {}
            other => panic!("global accuracy presence diverged: {other:?}"),
        }
        assert_eq!(ra.upload_bytes, rb.upload_bytes);
        assert_eq!(ra.download_bytes, rb.download_bytes);
        assert_eq!(ra.sim_seconds.to_bits(), rb.sim_seconds.to_bits());
        assert_eq!(ra.active_devices, rb.active_devices);
        assert_eq!(ra.registered_devices, rb.registered_devices);
        assert_eq!(ra.peak_resident_devices, rb.peak_resident_devices);
    }
}

#[test]
fn same_seed_produces_bit_identical_runlog() {
    let _guard = serial_guard();
    let a = run_once(11);
    let b = run_once(11);
    // Structural equality first (clear failure messages)...
    assert_eq!(a, b, "same-seed runs diverged");
    assert_bit_identical(&a, &b);
}

#[test]
fn runlog_is_bit_identical_across_thread_counts() {
    let _guard = serial_guard();
    // The determinism guarantee of the execution model: worker-thread count
    // partitions work but never reorders a single floating-point operation
    // within an output element, and fleet results merge in device order.
    let one = run_with_threads(11, 1);
    let four = run_with_threads(11, 4);
    assert_eq!(one, four, "threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
}

#[test]
fn fedmd_runlog_is_bit_identical_across_thread_counts() {
    let _guard = serial_guard();
    // FedMD's digest/revisit (and lazy warmup) run on the same fleet
    // machinery as the other algorithms, so the same guarantee applies.
    let one = run_fedmd_with_threads(13, 1);
    let four = run_fedmd_with_threads(13, 4);
    assert_eq!(one, four, "FedMD threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    // Sanity: partial participation really is in effect.
    assert!(one.rounds.iter().all(|r| r.active_devices.len() == 2));
}

#[test]
fn scenario_file_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // The declarative path end to end: a checked-in scenario *file* parsed
    // and executed through the erased runner must carry the same guarantee
    // as the hand-wired runs above — the description layer cannot introduce
    // nondeterminism.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/tiny.json");
    let mut scenario = fedzkt::scenario::Scenario::load(path).expect("checked-in tiny scenario");
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "scenario threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    // And the artifact layer too: serialized logs agree byte for byte.
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.rounds.len(), scenario.sim.rounds);
}

#[test]
fn lossy_codec_scenario_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // The quantized analogue of the tiny-scenario guarantee above: the
    // checked-in `quant-uplink` preset pushes every payload through the
    // int8 codec, so this asserts that *lossy* encode/decode — quantized
    // uploads feeding the distillation game, quantized transfers loaded
    // back into devices — is bit-deterministic across worker-thread
    // counts, not just the raw path.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/quant-uplink.json");
    let mut scenario =
        fedzkt::scenario::Scenario::load(path).expect("checked-in quant-uplink scenario");
    assert_eq!(
        scenario.sim.codec,
        fedzkt::fl::CodecSpec::QuantQ8,
        "preset must exercise a lossy codec"
    );
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "quant-uplink threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    assert_eq!(one.to_json(), four.to_json());
    // The preset attaches smartphone links, so transfer time is charged.
    assert!(one.rounds.iter().all(|r| r.sim_seconds > 0.0));
}

#[test]
fn lazy_scenario_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // The lazy fleet adds a third determinism axis next to seed and thread
    // count: materialization. A lazily materialized run must carry the
    // thread-count guarantee just like the eager runs above — checkout/
    // release bookkeeping and on-demand rebuilds happen on the driver
    // thread, outside the fleet's parallel region.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/tiny.json");
    let mut scenario = fedzkt::scenario::Scenario::load(path).expect("checked-in tiny scenario");
    scenario.sim.materialization = fedzkt::fl::Materialization::Lazy;
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "lazy threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    assert_eq!(one.to_json(), four.to_json());
}

#[test]
fn fedet_scenario_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // Fed-ET fans its devices' CE training and transfer-back digests onto
    // the same fleet machinery as FedZKT, and folds the uploaded ensemble
    // in device order on the driver thread — so the checked-in preset
    // must carry the thread-count guarantee end to end.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fedet-hetero.json");
    let mut scenario =
        fedzkt::scenario::Scenario::load(path).expect("checked-in fedet-hetero scenario");
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "Fed-ET threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    assert_eq!(one.to_json(), four.to_json());
}

#[test]
fn fedgkt_scenario_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // FedGKT's split training runs its composite extractor+head models
    // serially on the driver thread, but evaluation and the server's head
    // training still see the worker pool — the preset must be invariant
    // to its size like every other algorithm.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/fedgkt-split.json");
    let mut scenario =
        fedzkt::scenario::Scenario::load(path).expect("checked-in fedgkt-split scenario");
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "FedGKT threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    assert_eq!(one.to_json(), four.to_json());
}

#[test]
fn tensor_kernels_bit_identical_across_thread_counts() {
    let _guard = serial_guard();
    // Above the GEMM parallel threshold (128^3 = 2 MMACs) so the row
    // partition genuinely engages at threads > 1.
    let mut rng = seeded_rng(41);
    let a = Tensor::randn(&[128, 128], &mut rng);
    let b = Tensor::randn(&[128, 128], &mut rng);
    // A conv workload big enough for the batched-lowering parallel paths.
    let x = Tensor::randn(&[8, 4, 12, 12], &mut rng);
    let w = Tensor::randn(&[8, 2, 3, 3], &mut rng);
    let run = |threads: usize| {
        par::set_threads(threads);
        let nn = a.matmul(&b).unwrap();
        let nt = a.matmul_nt(&b).unwrap();
        let tn = a.matmul_tn(&b).unwrap();
        let xv = Var::parameter(x.clone());
        let wv = Var::parameter(w.clone());
        let y = xv.conv2d(&wv, 1, 1, 2);
        y.sum_all().backward();
        let out = (
            nn,
            nt,
            tn,
            y.value_clone(),
            xv.grad().unwrap(),
            wv.grad().unwrap(),
        );
        par::set_threads(0);
        out
    };
    let serial = run(1);
    let parallel = run(4);
    for (s, p) in [
        (&serial.0, &parallel.0),
        (&serial.1, &parallel.1),
        (&serial.2, &parallel.2),
        (&serial.3, &parallel.3),
        (&serial.4, &parallel.4),
        (&serial.5, &parallel.5),
    ] {
        assert_eq!(s.shape(), p.shape());
        for (x, y) in s.data().iter().zip(p.data()) {
            assert_eq!(x.to_bits(), y.to_bits(), "kernel output diverged across thread counts");
        }
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let _guard = serial_guard();
    // Guards `split_seed` actually reaching the run: if the seed were
    // dropped somewhere, every run would be identical and the test above
    // would pass vacuously.
    let a = run_once(11);
    let c = run_once(12);
    assert_ne!(a, c, "different seeds produced identical runs");
}

#[test]
fn int8_compute_scenario_runs_bit_identically_across_thread_counts() {
    let _guard = serial_guard();
    // The compute format is the fourth determinism axis next to seed,
    // thread count and materialization. The int8 path is integer
    // arithmetic plus a fixed affine correction, and operands are
    // quantized before the row partition forks, so a distillation-game
    // round scored under int8 must carry the same thread-count guarantee
    // as the f32 runs above.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/tiny.json");
    let mut scenario = fedzkt::scenario::Scenario::load(path).expect("checked-in tiny scenario");
    scenario.sim.compute = fedzkt::fl::ComputeFormat::Int8;
    scenario.sim.threads = 1;
    let one = scenario.run().expect("runnable scenario");
    scenario.sim.threads = 4;
    let four = scenario.run().expect("runnable scenario");
    assert_eq!(one, four, "int8 threads=1 vs threads=4 diverged");
    assert_bit_identical(&one, &four);
    assert_eq!(one.to_json(), four.to_json());
    assert_eq!(one.rounds.len(), scenario.sim.rounds);
}
