//! Whole-run determinism: the `seeded_rng`/`split_seed` contract promises
//! that a federated run is a pure function of its seed. Guarded here at the
//! outermost API — two `FedZkt::run` invocations with the same seed must
//! produce bit-identical `RunLog` metrics, and different seeds must not.

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::RunLog;
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn run_once(seed: u64) -> RunLog {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 96,
        test_n: 48,
        classes: 4,
        seed: 7,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Dirichlet { beta: 0.5 }
        .split(train.labels(), 4, 3, 7)
        .unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let cfg = FedZktConfig {
        rounds: 2,
        local_epochs: 1,
        distill_iters: 3,
        transfer_iters: 3,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        seed,
        ..Default::default()
    };
    let mut fed = FedZkt::new(&zoo, &train, &shards, test, cfg);
    fed.run().clone()
}

#[test]
fn same_seed_produces_bit_identical_runlog() {
    let a = run_once(11);
    let b = run_once(11);
    // Structural equality first (clear failure messages)...
    assert_eq!(a, b, "same-seed runs diverged");
    // ...then bit-level equality of every floating-point metric, so that a
    // -0.0 vs 0.0 or NaN regression cannot hide behind `PartialEq`.
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.round, rb.round);
        assert_eq!(ra.train_loss.to_bits(), rb.train_loss.to_bits());
        assert_eq!(
            ra.avg_device_accuracy.to_bits(),
            rb.avg_device_accuracy.to_bits()
        );
        assert_eq!(ra.device_accuracy.len(), rb.device_accuracy.len());
        for (x, y) in ra.device_accuracy.iter().zip(&rb.device_accuracy) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        match (ra.global_accuracy, rb.global_accuracy) {
            (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
            (None, None) => {}
            other => panic!("global accuracy presence diverged: {other:?}"),
        }
        assert_eq!(ra.upload_bytes, rb.upload_bytes);
        assert_eq!(ra.download_bytes, rb.download_bytes);
        assert_eq!(ra.sim_seconds.to_bits(), rb.sim_seconds.to_bits());
        assert_eq!(ra.active_devices, rb.active_devices);
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    // Guards `split_seed` actually reaching the run: if the seed were
    // dropped somewhere, every run would be identical and the test above
    // would pass vacuously.
    let a = run_once(11);
    let c = run_once(12);
    assert_ne!(a, c, "different seeds produced identical runs");
}
