//! Invariants of the FedZKT protocol that hold by design and must hold in
//! the implementation — the properties DESIGN.md §6 calls out.

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::{param_bytes, state_dict};

fn setup(cfg: FedZktConfig) -> (FedZkt, usize) {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 120,
        test_n: 60,
        classes: 4,
        seed: 21,
        ..Default::default()
    }
    .generate();
    let k = 3;
    let shards = Partition::Iid.split(train.labels(), 4, k, 21).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    (FedZkt::new(&zoo, &train, &shards, test, cfg), k)
}

fn tiny_cfg() -> FedZktConfig {
    FedZktConfig {
        rounds: 1,
        local_epochs: 1,
        distill_iters: 3,
        transfer_iters: 3,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        seed: 2,
        ..Default::default()
    }
}

/// The resource-constrained-device claim: per-device traffic is the size of
/// that device's own model — independent of the global model and generator
/// sizes, which live only at the server.
#[test]
fn device_traffic_is_own_model_sized() {
    let (mut fed, k) = setup(tiny_cfg());
    let metrics = fed.round(0);
    let per_device: u64 =
        (0..k).map(|d| state_dict(fed.device_model(d)).byte_size() as u64).sum();
    assert_eq!(metrics.upload_bytes, per_device);
    assert_eq!(metrics.download_bytes, per_device);

    // Inflating the server-side models must not change device traffic.
    let big_cfg = FedZktConfig {
        generator: GeneratorSpec { z_dim: 64, ngf: 16 },
        global_model: ModelSpec::SmallCnn { base_channels: 16 },
        ..tiny_cfg()
    };
    let (mut big_fed, _) = setup(big_cfg);
    let big_metrics = big_fed.round(0);
    assert_eq!(big_metrics.upload_bytes, metrics.upload_bytes);
    assert_eq!(big_metrics.download_bytes, metrics.download_bytes);
    assert!(
        param_bytes(big_fed.global_model()) > param_bytes(fed.global_model()),
        "sanity: the big config really is bigger"
    );
}

/// Model heterogeneity is real: the zoo members have pairwise different
/// parameter layouts, so FedAvg-style element-wise averaging is impossible.
#[test]
fn zoo_is_architecturally_incompatible() {
    let (fed, k) = setup(tiny_cfg());
    for a in 0..k {
        for b in (a + 1)..k {
            let sa = state_dict(fed.device_model(a));
            let sb = state_dict(fed.device_model(b));
            let layout = |sd: &fedzkt::nn::StateDict| -> Vec<Vec<usize>> {
                sd.params.iter().map(|t| t.shape().to_vec()).collect()
            };
            assert_ne!(layout(&sa), layout(&sb), "devices {a} and {b} share a layout");
        }
    }
}

/// The server's bidirectional transfer must actually move information:
/// after one round every *active* device's parameters differ from the
/// pure-local-training counterfactual.
#[test]
fn server_distillation_changes_device_models() {
    let with_server = {
        let (mut fed, _) = setup(tiny_cfg());
        fed.round(0);
        state_dict(fed.device_model(0))
    };
    let without_server = {
        let cfg = FedZktConfig { distill_iters: 0, transfer_iters: 0, ..tiny_cfg() };
        let (mut fed, _) = setup(cfg);
        fed.round(0);
        state_dict(fed.device_model(0))
    };
    assert_ne!(with_server, without_server, "server update had no effect on device 0");
}

/// All models stay finite through the adversarial game (failure injection:
/// the logit-ℓ1 loss with a high LR is the most explosion-prone setting).
#[test]
fn training_stays_finite_under_aggressive_settings() {
    let cfg = FedZktConfig {
        loss: fedzkt::core::DistillLoss::LogitL1,
        server_lr: 0.1,
        generator_lr: 0.01,
        rounds: 2,
        ..tiny_cfg()
    };
    let (mut fed, k) = setup(cfg);
    fed.run();
    for d in 0..k {
        for p in fed.device_model(d).params() {
            assert!(p.value().all_finite(), "device {d} has non-finite parameters");
        }
    }
    for p in fed.global_model().params() {
        assert!(p.value().all_finite(), "global model has non-finite parameters");
    }
}

/// Probing gradients (Fig. 2) must not perturb training: a probed run and
/// an unprobed run produce identical models.
#[test]
fn probe_is_side_effect_free() {
    let (mut probed, _) = setup(FedZktConfig { probe_grad_norms: true, ..tiny_cfg() });
    let (mut plain, _) = setup(FedZktConfig { probe_grad_norms: false, ..tiny_cfg() });
    probed.round(0);
    plain.round(0);
    assert_eq!(
        state_dict(probed.device_model(0)),
        state_dict(plain.device_model(0)),
        "probe changed training trajectory"
    );
}
