//! Invariants of the federated protocol that hold by design and must hold
//! in the implementation — the properties DESIGN.md §6 calls out.
//!
//! Since the `Simulation` redesign these are stated once, **at the trait
//! level**, and checked for the whole algorithm family (FedZKT,
//! FedAvg/FedProx, FedMD, Fed-ET, FedGKT): stragglers stay bit-unchanged,
//! and per-round traffic equals the sum of the active devices' own
//! payloads' wire sizes — uplink from `payload_template`, downlink from
//! `downlink_template`, which FedGKT's asymmetric protocol (per-sample
//! features up, soft labels down) keeps honest. FedZKT-specific
//! invariants (server-side size independence, architectural
//! incompatibility of the zoo, distillation effectiveness, probe
//! side-effect freedom) follow below.

use fedzkt::core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Dataset, Partition, SynthConfig};
use fedzkt::fl::{
    CodecSpec, FedAvg, FedAvgConfig, FedEt, FedEtConfig, FedGkt, FedGktConfig,
    FederatedAlgorithm, PayloadCodec, SimConfig, Simulation,
};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::{param_bytes, state_dict};

/// The full codec grid every trait-level invariant is checked under.
const CODECS: [CodecSpec; 4] = [
    CodecSpec::Raw,
    CodecSpec::QuantQ8,
    CodecSpec::QuantQ4,
    CodecSpec::TopK { density: 0.25 },
];

fn data(seed: u64) -> (Dataset, Dataset) {
    SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 120,
        test_n: 60,
        classes: 4,
        seed,
        ..Default::default()
    }
    .generate()
}

fn zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ]
}

fn tiny_cfg() -> FedZktConfig {
    FedZktConfig {
        local_epochs: 1,
        distill_iters: 3,
        transfer_iters: 3,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        ..Default::default()
    }
}

fn fedzkt_sim(cfg: FedZktConfig, sim: SimConfig) -> Simulation<FedZkt> {
    let (train, test) = data(21);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 21).unwrap();
    let fed = FedZkt::new(&zoo(), &train, &shards, cfg, &sim);
    Simulation::builder(fed, test, sim).build()
}

fn fedavg_sim(sim: SimConfig) -> Simulation<FedAvg> {
    let (train, test) = data(22);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 22).unwrap();
    let fed = FedAvg::new(
        ModelSpec::Mlp { hidden: 16 },
        &train,
        &shards,
        FedAvgConfig { local_epochs: 1, batch_size: 16, ..Default::default() },
        &sim,
    );
    Simulation::builder(fed, test, sim).build()
}

fn fedmd_sim(sim: SimConfig) -> Simulation<FedMd> {
    let (train, test) = data(23);
    let (public, _) = SynthConfig {
        family: DataFamily::FashionLike,
        img: 8,
        train_n: 64,
        test_n: 8,
        classes: 4,
        seed: 24,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 23).unwrap();
    let fed = FedMd::new(
        &zoo(),
        &train,
        &shards,
        public,
        FedMdConfig {
            public_warmup_epochs: 1,
            private_warmup_epochs: 1,
            alignment_size: 32,
            digest_epochs: 1,
            revisit_epochs: 1,
            batch_size: 16,
            lr: 0.05,
        },
        &sim,
    );
    Simulation::builder(fed, test, sim).build()
}

fn fedet_sim(sim: SimConfig) -> Simulation<FedEt> {
    let (train, test) = data(25);
    let (public, _) = SynthConfig {
        family: DataFamily::FashionLike,
        img: 8,
        train_n: 64,
        test_n: 8,
        classes: 4,
        seed: 26,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 25).unwrap();
    let fed = FedEt::new(
        &zoo(),
        &train,
        &shards,
        public,
        FedEtConfig {
            local_epochs: 1,
            batch_size: 16,
            lr: 0.05,
            transfer_size: 32,
            distill_epochs: 1,
            transfer_epochs: 1,
            server_lr: 0.02,
            diversity_lambda: 1.0,
            server_model: ModelSpec::SmallCnn { base_channels: 4 },
        },
        &sim,
    );
    Simulation::builder(fed, test, sim).build()
}

fn fedgkt_sim(sim: SimConfig) -> Simulation<FedGkt> {
    let (train, test) = data(27);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 27).unwrap();
    let fed = FedGkt::new(
        &zoo(),
        &train,
        &shards,
        FedGktConfig {
            local_epochs: 1,
            kd_epochs: 1,
            server_epochs: 1,
            batch_size: 16,
            lr: 0.05,
            server_lr: 0.02,
            feature_dim: 8,
            server_hidden: 16,
        },
        &sim,
    );
    Simulation::builder(fed, test, sim).build()
}

/// Trait-level invariant 1: devices outside the active set are
/// bit-unchanged by a round — stragglers neither train nor receive
/// updates, in every algorithm.
fn assert_stragglers_untouched<A: FederatedAlgorithm>(sim: &mut Simulation<A>) {
    let n = sim.devices();
    let before: Vec<_> = (0..n).map(|k| state_dict(sim.algorithm().device_model(k))).collect();
    let metrics = sim.round(0);
    assert!(
        metrics.active_devices.len() < n,
        "test needs genuine stragglers (got {} active of {n})",
        metrics.active_devices.len()
    );
    for (k, snapshot) in before.iter().enumerate() {
        let unchanged = state_dict(sim.algorithm().device_model(k)) == *snapshot;
        assert_eq!(
            unchanged,
            !metrics.active_devices.contains(&k),
            "device {k} active={} unchanged={unchanged}",
            metrics.active_devices.contains(&k)
        );
    }
}

/// Trait-level invariant 2: per-round traffic equals the sum of the
/// active devices' own payloads' **encoded wire sizes** under the run's
/// codec — uplink sized by `payload_template`, downlink by
/// `downlink_template` — and never a function of server-side state.
/// `O(|w_k|)` per device for the model-exchanging algorithms,
/// logit-shaped for FedMD, per-sample-bundle up / soft-labels down for
/// FedGKT. (Every codec's wire size is a pure function of a template's
/// shapes, so both expectations are computable without replaying the
/// round.)
fn assert_traffic_is_wire_sized<A: FederatedAlgorithm>(sim: &mut Simulation<A>) {
    let codec = sim.config().codec;
    let metrics = sim.round(0);
    let expected_up: u64 = metrics
        .active_devices
        .iter()
        .map(|&k| codec.wire_bytes(&sim.algorithm().payload_template(k)) as u64)
        .sum();
    let expected_down: u64 = metrics
        .active_devices
        .iter()
        .map(|&k| codec.wire_bytes(&sim.algorithm().downlink_template(k)) as u64)
        .sum();
    assert!(expected_up > 0, "payloads must be non-trivial");
    assert!(expected_down > 0, "downlinks must be non-trivial");
    assert_eq!(metrics.upload_bytes, expected_up, "uplink under {codec:?}");
    assert_eq!(metrics.download_bytes, expected_down, "downlink under {codec:?}");
}

// participation 0.34 of 3 devices → exactly 1 active, 2 stragglers.
fn partial() -> SimConfig {
    SimConfig { rounds: 1, participation: 0.34, seed: 2, ..Default::default() }
}

fn full() -> SimConfig {
    SimConfig { rounds: 1, seed: 2, ..Default::default() }
}

#[test]
fn stragglers_keep_their_stale_models_fedzkt() {
    assert_stragglers_untouched(&mut fedzkt_sim(tiny_cfg(), partial()));
}

/// Stragglers stay bit-unchanged even when the codec is lossy: the wire
/// round-trip only ever touches *active* devices, in every algorithm.
#[test]
fn stragglers_untouched_under_every_lossy_codec() {
    for codec in CODECS {
        assert_stragglers_untouched(&mut fedzkt_sim(
            tiny_cfg(),
            SimConfig { codec, ..partial() },
        ));
        assert_stragglers_untouched(&mut fedmd_sim(SimConfig { codec, ..partial() }));
        assert_stragglers_untouched(&mut fedet_sim(SimConfig { codec, ..partial() }));
        assert_stragglers_untouched(&mut fedgkt_sim(SimConfig { codec, ..partial() }));
        // FedAvg's shared-model degeneration of the invariant, as above:
        // one active device must still be able to move the global model.
        let mut sim = fedavg_sim(SimConfig { codec, ..partial() });
        let before = state_dict(sim.algorithm().device_model(0));
        sim.round(0);
        assert_ne!(state_dict(sim.algorithm().device_model(0)), before, "{codec:?}");
    }
}

#[test]
fn stragglers_keep_their_stale_models_fedavg() {
    // FedAvg shares one global model across devices, so "device k's model"
    // is the global model for every k; the invariant degenerates to the
    // global model changing only through active devices. A round with one
    // active device must still change it (that device trains).
    let mut sim = fedavg_sim(partial());
    let before = state_dict(sim.algorithm().device_model(0));
    let metrics = sim.round(0);
    assert_eq!(metrics.active_devices.len(), 1);
    assert_ne!(state_dict(sim.algorithm().device_model(0)), before);
}

#[test]
fn stragglers_keep_their_stale_models_fedmd() {
    assert_stragglers_untouched(&mut fedmd_sim(partial()));
}

#[test]
fn traffic_is_wire_sized_fedzkt() {
    for codec in CODECS {
        assert_traffic_is_wire_sized(&mut fedzkt_sim(tiny_cfg(), SimConfig { codec, ..full() }));
    }
    assert_traffic_is_wire_sized(&mut fedzkt_sim(tiny_cfg(), partial()));
}

#[test]
fn traffic_is_wire_sized_fedavg() {
    for codec in CODECS {
        assert_traffic_is_wire_sized(&mut fedavg_sim(SimConfig { codec, ..full() }));
    }
    assert_traffic_is_wire_sized(&mut fedavg_sim(partial()));
}

#[test]
fn traffic_is_wire_sized_fedmd() {
    for codec in CODECS {
        assert_traffic_is_wire_sized(&mut fedmd_sim(SimConfig { codec, ..full() }));
    }
    assert_traffic_is_wire_sized(&mut fedmd_sim(partial()));
}

#[test]
fn stragglers_keep_their_stale_models_fedet() {
    assert_stragglers_untouched(&mut fedet_sim(partial()));
}

#[test]
fn stragglers_keep_their_stale_models_fedgkt() {
    assert_stragglers_untouched(&mut fedgkt_sim(partial()));
}

#[test]
fn traffic_is_wire_sized_fedet() {
    for codec in CODECS {
        assert_traffic_is_wire_sized(&mut fedet_sim(SimConfig { codec, ..full() }));
    }
    assert_traffic_is_wire_sized(&mut fedet_sim(partial()));
}

#[test]
fn traffic_is_wire_sized_fedgkt() {
    for codec in CODECS {
        assert_traffic_is_wire_sized(&mut fedgkt_sim(SimConfig { codec, ..full() }));
    }
    assert_traffic_is_wire_sized(&mut fedgkt_sim(partial()));
}

/// FedGKT's wire payloads are shard-shaped, not model-shaped: the uplink
/// bundle rows scale with the device's sample count, the downlink is
/// soft labels only — so the generalized invariant 2 above genuinely
/// exercises asymmetric templates.
#[test]
fn fedgkt_templates_are_per_sample_and_asymmetric() {
    let sim = fedgkt_sim(full());
    for k in 0..sim.devices() {
        let up = sim.algorithm().payload_template(k);
        let down = sim.algorithm().downlink_template(k);
        let n = sim.algorithm().local_samples(k);
        // features [n, d] + logits [n, C] + labels [n] up; logits [n, C] down.
        assert_eq!(up.params.len(), 3, "device {k}");
        assert_eq!(up.params[0].shape(), &[n, 8], "device {k} features");
        assert_eq!(up.params[1].shape(), &[n, 4], "device {k} logits");
        assert_eq!(up.params[2].shape(), &[n], "device {k} labels");
        assert_eq!(down.params.len(), 1, "device {k}");
        assert_eq!(down.params[0].shape(), &[n, 4], "device {k} soft labels");
        assert!(up.byte_size() > down.byte_size(), "device {k}: uplink must dominate");
    }
}

/// The lossy codecs genuinely shrink what the tracker records — the
/// invariant above is not satisfied by everything reporting raw sizes.
#[test]
fn lossy_codecs_record_less_traffic_than_raw() {
    let uplink = |codec| {
        fedzkt_sim(tiny_cfg(), SimConfig { codec, ..full() }).round(0).upload_bytes
    };
    let raw = uplink(CodecSpec::Raw);
    for codec in &CODECS[1..] {
        let lossy = uplink(*codec);
        // The weakest grid member is top-k at density 0.25 (8 bytes per
        // kept element ⇒ asymptotically 2×); everything must clear 1.5×.
        assert!(3 * lossy < 2 * raw, "{codec:?}: {lossy} vs raw {raw}");
    }
}

/// FedZKT's payloads really are state-dict shaped (the `O(|w_k|)` claim
/// in its concrete form), and FedMD's really are logit-shaped — so
/// invariant 2 above is not vacuously true.
#[test]
fn payload_semantics_per_algorithm() {
    let sim = fedzkt_sim(tiny_cfg(), full());
    for k in 0..sim.devices() {
        assert_eq!(
            sim.algorithm().payload_template(k).byte_size(),
            state_dict(sim.algorithm().device_model(k)).byte_size()
        );
    }
    let sim = fedmd_sim(full());
    // 32 alignment samples × 4 classes × 4 bytes, identical for every k.
    for k in 0..sim.devices() {
        let template = sim.algorithm().payload_template(k);
        assert_eq!(template.byte_size(), 32 * 4 * 4);
        assert_eq!(template.params[0].shape(), &[32, 4]);
    }
}

/// The resource-constrained-device claim: per-device traffic is the size of
/// that device's own model — independent of the global model and generator
/// sizes, which live only at the server.
#[test]
fn device_traffic_independent_of_server_model_sizes() {
    let mut sim = fedzkt_sim(tiny_cfg(), full());
    let metrics = sim.round(0);

    // Inflating the server-side models must not change device traffic.
    let big_cfg = FedZktConfig {
        generator: GeneratorSpec { z_dim: 64, ngf: 16 },
        global_model: ModelSpec::SmallCnn { base_channels: 16 },
        ..tiny_cfg()
    };
    let mut big_sim = fedzkt_sim(big_cfg, full());
    let big_metrics = big_sim.round(0);
    assert_eq!(big_metrics.upload_bytes, metrics.upload_bytes);
    assert_eq!(big_metrics.download_bytes, metrics.download_bytes);
    assert!(
        param_bytes(big_sim.algorithm().global_model().unwrap())
            > param_bytes(sim.algorithm().global_model().unwrap()),
        "sanity: the big config really is bigger"
    );
}

/// Model heterogeneity is real: the zoo members have pairwise different
/// parameter layouts, so FedAvg-style element-wise averaging is impossible.
#[test]
fn zoo_is_architecturally_incompatible() {
    let sim = fedzkt_sim(tiny_cfg(), full());
    let k = sim.devices();
    for a in 0..k {
        for b in (a + 1)..k {
            let sa = state_dict(sim.algorithm().device_model(a));
            let sb = state_dict(sim.algorithm().device_model(b));
            let layout = |sd: &fedzkt::nn::StateDict| -> Vec<Vec<usize>> {
                sd.params.iter().map(|t| t.shape().to_vec()).collect()
            };
            assert_ne!(layout(&sa), layout(&sb), "devices {a} and {b} share a layout");
        }
    }
}

/// The server's bidirectional transfer must actually move information:
/// after one round every *active* device's parameters differ from the
/// pure-local-training counterfactual.
#[test]
fn server_distillation_changes_device_models() {
    let with_server = {
        let mut sim = fedzkt_sim(tiny_cfg(), full());
        sim.round(0);
        state_dict(sim.algorithm().device_model(0))
    };
    let without_server = {
        let cfg = FedZktConfig { distill_iters: 0, transfer_iters: 0, ..tiny_cfg() };
        let mut sim = fedzkt_sim(cfg, full());
        sim.round(0);
        state_dict(sim.algorithm().device_model(0))
    };
    assert_ne!(with_server, without_server, "server update had no effect on device 0");
}

/// All models stay finite through the adversarial game (failure injection:
/// the logit-ℓ1 loss with a high LR is the most explosion-prone setting).
#[test]
fn training_stays_finite_under_aggressive_settings() {
    let cfg = FedZktConfig {
        loss: fedzkt::core::DistillLoss::LogitL1,
        server_lr: 0.1,
        generator_lr: 0.01,
        ..tiny_cfg()
    };
    let mut sim = fedzkt_sim(cfg, SimConfig { rounds: 2, ..full() });
    sim.run();
    let k = sim.devices();
    for d in 0..k {
        for p in sim.algorithm().device_model(d).params() {
            assert!(p.value().all_finite(), "device {d} has non-finite parameters");
        }
    }
    for p in sim.algorithm().global_model().unwrap().params() {
        assert!(p.value().all_finite(), "global model has non-finite parameters");
    }
}

/// Probing gradients (Fig. 2) must not perturb training: a probed run and
/// an unprobed run produce identical models.
#[test]
fn probe_is_side_effect_free() {
    let mut probed = fedzkt_sim(FedZktConfig { probe_grad_norms: true, ..tiny_cfg() }, full());
    let mut plain = fedzkt_sim(FedZktConfig { probe_grad_norms: false, ..tiny_cfg() }, full());
    probed.round(0);
    plain.round(0);
    assert_eq!(
        state_dict(probed.algorithm().device_model(0)),
        state_dict(plain.algorithm().device_model(0)),
        "probe changed training trajectory"
    );
}
