//! Cross-crate integration tests: tiny but complete federated runs of
//! every algorithm in the workspace, all through the `Simulation` driver.

use fedzkt::core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Dataset, Partition, SynthConfig};
use fedzkt::fl::{
    DeviceResources, FedAvg, FedAvgConfig, RunLog, SimConfig, Simulation,
};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn mnist_like(seed: u64) -> (Dataset, Dataset) {
    SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 120,
        test_n: 60,
        classes: 4,
        seed,
        ..Default::default()
    }
    .generate()
}

fn tiny_zkt_cfg() -> FedZktConfig {
    FedZktConfig {
        local_epochs: 1,
        distill_iters: 4,
        transfer_iters: 4,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        ..Default::default()
    }
}

fn tiny_zoo() -> Vec<ModelSpec> {
    vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ]
}

fn tiny_fedzkt(seed: u64, rounds: usize) -> Simulation<FedZkt> {
    let (train, test) = mnist_like(seed);
    let shards = Partition::Iid.split(train.labels(), 4, 3, seed.wrapping_add(1)).unwrap();
    let sim_cfg = SimConfig { rounds, seed, ..Default::default() };
    let fed = FedZkt::new(&tiny_zoo(), &train, &shards, tiny_zkt_cfg(), &sim_cfg);
    Simulation::builder(fed, test, sim_cfg).build()
}

#[test]
fn fedzkt_full_pipeline_heterogeneous() {
    let mut sim = tiny_fedzkt(1, 2);
    let log = sim.run();
    assert_eq!(log.rounds.len(), 2);
    assert!(log.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    assert!(log.rounds.iter().all(|r| r.upload_bytes > 0 && r.download_bytes > 0));
}

/// Acceptance for the SimClock integration: attach device resources and
/// the driver populates `sim_seconds` — nonzero, accumulating, and read
/// straight from the `RunLog` (no hand-driven clock anywhere).
#[test]
fn fedzkt_sim_seconds_positive_with_resources() {
    let (train, test) = mnist_like(4);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 4).unwrap();
    let sim_cfg = SimConfig { rounds: 2, seed: 4, ..Default::default() };
    let fed = FedZkt::new(&tiny_zoo(), &train, &shards, tiny_zkt_cfg(), &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg)
        .resources(DeviceResources::heterogeneous_population(3, 4))
        .server_seconds(0.25)
        .build();
    let log = sim.run().clone();
    for r in &log.rounds {
        assert!(r.sim_seconds > 0.0, "round {} has sim_seconds {}", r.round, r.sim_seconds);
        // The constant server time alone bounds every round from below.
        assert!(r.sim_seconds >= 0.25);
    }
    let total: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
    assert!((sim.clock().expect("clock attached").now() - total).abs() < 1e-9);
    // Without resources, the field stays zero.
    let mut plain = tiny_fedzkt(4, 1);
    assert_eq!(plain.round(0).sim_seconds, 0.0);
}

/// The server's distillation compute is charged to the clock: more
/// distillation iterations ⇒ longer simulated rounds, all else equal.
#[test]
fn sim_seconds_scale_with_server_distillation_budget() {
    let run = |distill_iters: usize| {
        let (train, test) = mnist_like(4);
        let shards = Partition::Iid.split(train.labels(), 4, 3, 4).unwrap();
        let sim_cfg = SimConfig { rounds: 1, seed: 4, ..Default::default() };
        let cfg = FedZktConfig {
            distill_iters,
            transfer_iters: distill_iters,
            ..tiny_zkt_cfg()
        };
        let fed = FedZkt::new(&tiny_zoo(), &train, &shards, cfg, &sim_cfg);
        let mut sim = Simulation::builder(fed, test, sim_cfg)
            .resources(DeviceResources::heterogeneous_population(3, 4))
            .build();
        sim.round(0).sim_seconds
    };
    let small = run(2);
    let big = run(8);
    assert!(big > small, "nD=8 must cost more simulated time than nD=2: {big} vs {small}");
}

/// The run log round-trips through its JSON artifact format at full
/// fidelity, straight off a real heterogeneous run.
#[test]
fn runlog_json_roundtrips_from_real_run() {
    let mut sim = tiny_fedzkt(6, 2);
    let log = sim.run().clone();
    let back = RunLog::from_json(&log.to_json()).expect("parse emitted JSON");
    assert_eq!(log, back);
    // CSV and JSON agree on the round count.
    assert_eq!(log.to_csv().lines().count(), 1 + back.rounds.len());
}

/// Acceptance for the wire-format layer, on the `paper-small` scenario
/// (miniaturized: the zoo, algorithm, partition and data family are the
/// preset's own — all four codec-relevant payload shapes are the paper
/// configuration's — while rounds/samples/iterations are scaled down so
/// the tier-1 suite stays minutes-fast; the uplink ratio is a pure
/// function of the zoo's tensor shapes, so it is exactly paper-small's):
///
/// * int8-quantized payloads report ≥ 3.5× less uplink traffic than raw;
/// * final accuracy stays within 2 percentage points of the raw run;
/// * `sim_seconds` strictly increases once links have finite bandwidth
///   (vs the unlimited-bandwidth spelling of the same resources).
#[test]
fn quantized_uplink_on_paper_small_saves_traffic_without_losing_accuracy() {
    use fedzkt::fl::CodecSpec;
    use fedzkt::scenario::{preset, LinkBandwidth, ResourceAssignment, ResourceSpec};

    let mut base = preset("paper-small").expect("registry preset");
    // Miniaturize the scale knobs only; everything the codec sees (the
    // paper zoo's architectures, and hence every payload's tensor shapes)
    // is untouched.
    base.data.img = 8;
    base.data.train_n = 200;
    base.data.test_n = 400;
    base.sim.rounds = 2;
    base.sim.eval_every = 0; // accuracy is read from the final round only
    base.set_device_count(5);
    {
        let cfg = base.fedzkt_cfg_mut().expect("paper-small runs fedzkt");
        cfg.local_epochs = 1;
        cfg.distill_iters = 3;
        cfg.transfer_iters = 3;
        cfg.device_batch = 16;
        cfg.distill_batch = 16;
        cfg.device_lr = 0.05;
    }

    let raw = base.run().expect("raw run");
    let mut quant = base.clone();
    quant.sim.codec = CodecSpec::QuantQ8;
    let q8 = quant.run().expect("q8 run");

    let uplink = |log: &fedzkt::fl::RunLog| -> u64 {
        log.rounds.iter().map(|r| r.upload_bytes).sum()
    };
    let ratio = uplink(&raw) as f64 / uplink(&q8) as f64;
    assert!(
        ratio >= 3.5,
        "QuantQ8 must report ≥3.5× less uplink than raw, got {ratio:.2} ({} vs {})",
        uplink(&raw),
        uplink(&q8)
    );
    let gap = (raw.final_accuracy() - q8.final_accuracy()).abs();
    assert!(
        gap <= 0.02,
        "quantization moved accuracy by {:.2} points (raw {:.4}, q8 {:.4})",
        100.0 * gap,
        raw.final_accuracy(),
        q8.final_accuracy()
    );

    // Finite links must strictly lengthen the simulated rounds relative to
    // unlimited links over the *same* population and run.
    let with_bandwidth = |bw: LinkBandwidth| {
        let mut sc = quant.clone();
        sc.sim.rounds = 1;
        sc.resources = Some(ResourceSpec {
            assignment: ResourceAssignment::Smartphone,
            bandwidth: Some(bw),
            server_seconds: 0.0,
        });
        sc.run().expect("clocked run").rounds[0].sim_seconds
    };
    let unlimited = with_bandwidth(LinkBandwidth::unlimited());
    let finite = with_bandwidth(LinkBandwidth {
        up_bytes_per_sec: 5e4,
        down_bytes_per_sec: 2e5,
    });
    assert!(unlimited > 0.0, "compute time alone keeps the clock moving");
    assert!(
        finite > unlimited,
        "finite bandwidth must add transfer time: {finite} vs {unlimited}"
    );
}

#[test]
fn fedzkt_beats_local_only_on_skewed_data() {
    // With 2 classes per device out of 4, federation must help: each
    // device alone can never classify the classes it has never seen.
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 240,
        test_n: 120,
        classes: 4,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let shards = Partition::QuantitySkew { classes_per_device: 2 }
        .split(train.labels(), 4, 4, 3)
        .unwrap();
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 4);

    // Local-only: train each device on its shard, average accuracies.
    let mut local_acc = 0.0f32;
    for (i, shard) in shards.iter().enumerate() {
        let spec = zoo[i];
        let acc = fedzkt::core::local_only_bound(
            spec,
            &train.subset(shard),
            &test,
            &fedzkt::core::BoundConfig { epochs: 4, lr: 0.05, seed: 7, ..Default::default() },
        );
        local_acc += acc / shards.len() as f32;
    }

    let sim_cfg = SimConfig { rounds: 4, seed: 3, ..Default::default() };
    let cfg = FedZktConfig { local_epochs: 1, prox_mu: 1.0, ..tiny_zkt_cfg() };
    let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let fed_acc = sim.run().final_accuracy();
    // Local-only models top out near 50% (they see half the classes).
    assert!(local_acc < 0.62, "local-only unexpectedly strong: {local_acc}");
    assert!(
        fed_acc > local_acc - 0.05,
        "federation should not be far below local-only: fed {fed_acc} vs local {local_acc}"
    );
}

#[test]
fn fedmd_full_pipeline_with_public_data() {
    let (train, test) = mnist_like(5);
    let (public, _) = SynthConfig {
        family: DataFamily::FashionLike,
        img: 8,
        train_n: 80,
        test_n: 8,
        classes: 4,
        seed: 6,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
    let sim_cfg = SimConfig { rounds: 2, seed: 5, ..Default::default() };
    let fed = FedMd::new(
        &tiny_zoo(),
        &train,
        &shards,
        public,
        FedMdConfig {
            public_warmup_epochs: 1,
            private_warmup_epochs: 1,
            alignment_size: 32,
            digest_epochs: 1,
            revisit_epochs: 1,
            batch_size: 16,
            lr: 0.05,
        },
        &sim_cfg,
    );
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let log = sim.run();
    assert_eq!(log.rounds.len(), 2);
    assert!(log.final_accuracy() > 0.25, "acc {}", log.final_accuracy());
}

#[test]
fn fedavg_homogeneous_baseline() {
    let (train, test) = mnist_like(8);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 8).unwrap();
    let sim_cfg = SimConfig { rounds: 3, seed: 8, ..Default::default() };
    let fed = FedAvg::new(
        ModelSpec::Mlp { hidden: 16 },
        &train,
        &shards,
        FedAvgConfig { local_epochs: 2, batch_size: 16, lr: 0.05, ..Default::default() },
        &sim_cfg,
    );
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let log = sim.run();
    assert!(log.final_accuracy() > 0.3, "acc {}", log.final_accuracy());
}

#[test]
fn same_seed_reproduces_entire_run() {
    let run = || {
        let (train, test) = mnist_like(9);
        let shards = Partition::Dirichlet { beta: 0.5 }.split(train.labels(), 4, 3, 9).unwrap();
        let sim_cfg = SimConfig { rounds: 2, seed: 9, ..Default::default() };
        let fed = FedZkt::new(&tiny_zoo(), &train, &shards, tiny_zkt_cfg(), &sim_cfg);
        Simulation::builder(fed, test, sim_cfg).build().run().clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the full log bit-for-bit");
}

#[test]
fn single_device_federation_degenerates_gracefully() {
    let (train, test) = mnist_like(10);
    let shards = Partition::Iid.split(train.labels(), 4, 1, 10).unwrap();
    let zoo = vec![ModelSpec::Mlp { hidden: 16 }];
    let sim_cfg = SimConfig { rounds: 2, seed: 10, ..Default::default() };
    let fed = FedZkt::new(&zoo, &train, &shards, tiny_zkt_cfg(), &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let log = sim.run();
    assert!(log.final_accuracy().is_finite());
}

/// The evaluation cadence skips accuracy computation on off-cadence rounds
/// but never skips protocol work: traffic accrues every round and the
/// final round always reports fresh accuracies.
#[test]
fn eval_cadence_spans_a_real_run() {
    let (train, test) = mnist_like(12);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 12).unwrap();
    let sim_cfg = SimConfig { rounds: 4, eval_every: 0, seed: 12, ..Default::default() };
    let fed = FedZkt::new(&tiny_zoo(), &train, &shards, tiny_zkt_cfg(), &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let log = sim.run().clone();
    for r in &log.rounds[..3] {
        assert!(r.device_accuracy.is_empty(), "round {} evaluated off cadence", r.round);
        assert!(r.upload_bytes > 0, "protocol work must not be skipped");
    }
    let last = log.rounds.last().unwrap();
    assert_eq!(last.device_accuracy.len(), 3);
    assert!(last.avg_device_accuracy > 0.0);
}

/// The two knowledge-transfer presets run end-to-end through the scenario
/// layer (miniaturized like the lazy/eager sweep — same family, partition,
/// algorithm and codec, tiny sizes). Fed-ET's symmetric state-dict traffic
/// and FedGKT's asymmetric feature/soft-label exchange must both show up
/// in the RunLog exactly as the protocol defines them.
#[test]
fn knowledge_transfer_presets_run_end_to_end() {
    let shrink = |name: &str| {
        let mut sc = fedzkt::scenario::preset(name).expect("registry preset");
        sc.data.img = 8;
        sc.data.train_n = 96;
        sc.data.test_n = 32;
        sc.set_device_count(3);
        sc.sim.rounds = 2;
        sc.sim.eval_batch = 32;
        if let Some(cfg) = sc.fedet_cfg_mut() {
            cfg.local_epochs = 1;
            cfg.batch_size = 8;
            cfg.transfer_size = 16;
            cfg.distill_epochs = 1;
            cfg.transfer_epochs = 1;
            cfg.server_model = ModelSpec::SmallCnn { base_channels: 4 };
        }
        if let Some(cfg) = sc.fedgkt_cfg_mut() {
            cfg.local_epochs = 1;
            cfg.kd_epochs = 1;
            cfg.server_epochs = 1;
            cfg.batch_size = 8;
            cfg.feature_dim = 8;
            cfg.server_hidden = 16;
        }
        sc
    };

    let fedet = shrink("fedet-hetero").run().expect("fedet-hetero runs");
    assert_eq!(fedet.rounds.len(), 2);
    assert!(fedet.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    for r in &fedet.rounds {
        // Fed-ET downlinks what it uplinked: full device state dicts.
        assert_eq!(r.upload_bytes, r.download_bytes, "round {}", r.round);
        assert!(r.upload_bytes > 0);
    }

    let fedgkt = shrink("fedgkt-split").run().expect("fedgkt-split runs");
    assert_eq!(fedgkt.rounds.len(), 2);
    assert!(fedgkt.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    for r in &fedgkt.rounds {
        // FedGKT uplinks per-sample features+logits+labels but downlinks
        // only [n, C] soft labels — strictly less, every round.
        assert!(
            r.download_bytes < r.upload_bytes,
            "round {}: downlink {} must be under uplink {}",
            r.round,
            r.download_bytes,
            r.upload_bytes
        );
        assert!(r.download_bytes > 0);
    }
}

/// The int8 compute format is an accuracy/semantics knob for inference
/// phases only; on the checked-in `tiny` preset it must land within one
/// accuracy point of the f32 run.
#[test]
fn int8_compute_accuracy_is_close_to_f32() {
    let base = fedzkt::scenario::preset("tiny").expect("registry preset");
    let f32_log = base.clone().run().expect("runnable scenario");
    let mut int8 = base;
    int8.sim.compute = fedzkt::fl::ComputeFormat::Int8;
    let int8_log = int8.run().expect("runnable scenario");
    let gap = (f32_log.final_accuracy() - int8_log.final_accuracy()).abs();
    assert!(
        gap <= 0.01 + 1e-6,
        "int8 accuracy drifted {:.4} points from f32 ({:.4} vs {:.4})",
        100.0 * gap,
        f32_log.final_accuracy(),
        int8_log.final_accuracy()
    );
}

/// A full distillation-game round runs under int8 compute and produces a
/// valid RunLog: finite accuracies, real traffic, every round present.
#[test]
fn fedzkt_round_runs_under_int8_compute() {
    let (train, test) = mnist_like(14);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 14).unwrap();
    let sim_cfg = SimConfig {
        rounds: 2,
        seed: 14,
        compute: fedzkt::fl::ComputeFormat::Int8,
        ..Default::default()
    };
    let fed = FedZkt::new(&tiny_zoo(), &train, &shards, tiny_zkt_cfg(), &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    let log = sim.run();
    assert_eq!(log.rounds.len(), 2);
    assert!(log.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    assert!(log.rounds.iter().all(|r| r.upload_bytes > 0 && r.download_bytes > 0));
}
