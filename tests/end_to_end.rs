//! Cross-crate integration tests: tiny but complete federated runs of
//! every algorithm in the workspace.

use fedzkt::core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Dataset, Partition, SynthConfig};
use fedzkt::fl::{FedAvg, FedAvgConfig};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn mnist_like(seed: u64) -> (Dataset, Dataset) {
    SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 120,
        test_n: 60,
        classes: 4,
        seed,
        ..Default::default()
    }
    .generate()
}

fn tiny_zkt_cfg(seed: u64) -> FedZktConfig {
    FedZktConfig {
        rounds: 2,
        local_epochs: 1,
        distill_iters: 4,
        transfer_iters: 4,
        device_batch: 16,
        distill_batch: 8,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        seed,
        ..Default::default()
    }
}

#[test]
fn fedzkt_full_pipeline_heterogeneous() {
    let (train, test) = mnist_like(1);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 2).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let mut fed = FedZkt::new(&zoo, &train, &shards, test, tiny_zkt_cfg(1));
    let log = fed.run();
    assert_eq!(log.rounds.len(), 2);
    assert!(log.rounds.iter().all(|r| r.avg_device_accuracy.is_finite()));
    assert!(log.rounds.iter().all(|r| r.upload_bytes > 0 && r.download_bytes > 0));
}

#[test]
fn fedzkt_beats_local_only_on_skewed_data() {
    // With 2 classes per device out of 4, federation must help: each
    // device alone can never classify the classes it has never seen.
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 240,
        test_n: 120,
        classes: 4,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let shards = Partition::QuantitySkew { classes_per_device: 2 }
        .split(train.labels(), 4, 4, 3)
        .unwrap();
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 4);

    // Local-only: train each device on its shard, average accuracies.
    let mut local_acc = 0.0f32;
    for (i, shard) in shards.iter().enumerate() {
        let spec = zoo[i];
        let acc = fedzkt::core::local_only_bound(
            spec,
            &train.subset(shard),
            &test,
            &fedzkt::core::BoundConfig { epochs: 4, lr: 0.05, seed: 7, ..Default::default() },
        );
        local_acc += acc / shards.len() as f32;
    }

    let cfg = FedZktConfig { rounds: 4, prox_mu: 1.0, ..tiny_zkt_cfg(3) };
    let mut fed = FedZkt::new(&zoo, &train, &shards, test, cfg);
    let fed_acc = fed.run().final_accuracy();
    // Local-only models top out near 50% (they see half the classes).
    assert!(local_acc < 0.62, "local-only unexpectedly strong: {local_acc}");
    assert!(
        fed_acc > local_acc - 0.05,
        "federation should not be far below local-only: fed {fed_acc} vs local {local_acc}"
    );
}

#[test]
fn fedmd_full_pipeline_with_public_data() {
    let (train, test) = mnist_like(5);
    let (public, _) = SynthConfig {
        family: DataFamily::FashionLike,
        img: 8,
        train_n: 80,
        test_n: 8,
        classes: 4,
        seed: 6,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 5).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let mut fed = FedMd::new(
        &zoo,
        &train,
        &shards,
        public,
        test,
        FedMdConfig {
            rounds: 2,
            public_warmup_epochs: 1,
            private_warmup_epochs: 1,
            alignment_size: 32,
            digest_epochs: 1,
            revisit_epochs: 1,
            batch_size: 16,
            lr: 0.05,
            seed: 5,
            ..Default::default()
        },
    );
    let log = fed.run();
    assert_eq!(log.rounds.len(), 2);
    assert!(log.final_accuracy() > 0.25, "acc {}", log.final_accuracy());
}

#[test]
fn fedavg_homogeneous_baseline() {
    let (train, test) = mnist_like(8);
    let shards = Partition::Iid.split(train.labels(), 4, 3, 8).unwrap();
    let mut fed = FedAvg::new(
        ModelSpec::Mlp { hidden: 16 },
        &train,
        &shards,
        test,
        FedAvgConfig { rounds: 3, local_epochs: 2, batch_size: 16, lr: 0.05, seed: 8, ..Default::default() },
    );
    let log = fed.run();
    assert!(log.final_accuracy() > 0.3, "acc {}", log.final_accuracy());
}

#[test]
fn same_seed_reproduces_entire_run() {
    let run = || {
        let (train, test) = mnist_like(9);
        let shards = Partition::Dirichlet { beta: 0.5 }.split(train.labels(), 4, 3, 9).unwrap();
        let zoo = vec![
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ];
        let mut fed = FedZkt::new(&zoo, &train, &shards, test, tiny_zkt_cfg(9));
        fed.run().clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce the full log bit-for-bit");
}

#[test]
fn single_device_federation_degenerates_gracefully() {
    let (train, test) = mnist_like(10);
    let shards = Partition::Iid.split(train.labels(), 4, 1, 10).unwrap();
    let zoo = vec![ModelSpec::Mlp { hidden: 16 }];
    let mut fed = FedZkt::new(&zoo, &train, &shards, test, tiny_zkt_cfg(10));
    let log = fed.run();
    assert!(log.final_accuracy().is_finite());
}
