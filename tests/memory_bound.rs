//! Tier-1 memory-bound regression for the lazy fleet.
//!
//! The bound is asserted on the [`DeviceRegistry`] residency counters the
//! driver exports into every `RunLog` row — a deterministic, allocator- and
//! OS-independent gauge — **not** on process RSS, which measures the
//! allocator and the test harness as much as the fleet. The registry panics
//! on any checkout/release imbalance, so the counter cannot silently
//! undercount.

use fedzkt::fl::ChurnSpec;
use fedzkt::scenario::Scenario;

/// A 100 000-device tiny-model scenario (the checked-in `mega-fleet`
/// preset, shrunk 10× to stay seconds-scale in debug builds) must complete
/// with peak residency bounded by one round's sampled working set plus
/// O(1) server-side state — never by the registered population.
#[test]
fn lazy_fleet_peak_residency_is_bounded_by_the_sampled_set() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/mega-fleet.json");
    let mut sc = Scenario::load(path).expect("checked-in mega-fleet scenario");
    assert!(sc.sim.materialization.is_lazy(), "mega-fleet is the lazy-mode preset");

    sc.registered_devices = 100_000;
    sc.data.train_n = 100_000;
    sc.data.test_n = 32;
    sc.sim.participation = 0.01;
    sc.sim.rounds = 2;

    let log = sc.run().expect("shrunk mega-fleet runs");
    assert_eq!(log.rounds.len(), 2);

    let max_sampled =
        log.rounds.iter().map(|r| r.active_devices.len()).max().expect("two rounds");
    assert_eq!(max_sampled, 1_000, "0.01 participation of 100k devices");

    for round in &log.rounds {
        assert_eq!(round.registered_devices, 100_000);
        // Peak resident ≤ sampled-per-round + O(1): the eager fleet would
        // report 100 000 here.
        assert!(
            round.peak_resident_devices <= max_sampled + 1,
            "round {}: peak resident {} exceeds the sampled working set {}",
            round.round,
            round.peak_resident_devices,
            max_sampled
        );
        assert!(round.peak_resident_devices >= round.active_devices.len());
    }
}

/// Churn must not change the memory story: the availability scan is a
/// pure function evaluated device-at-a-time, so a churning 100k fleet
/// keeps peak residency bounded by the devices actually *touched* in a
/// round (sampled survivors + mid-round dropouts, which materialize for
/// their partial compute slice) — never by the registered or even the
/// available population.
#[test]
fn churning_fleet_peak_residency_stays_o_of_sampled() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/mega-fleet.json");
    let mut sc = Scenario::load(path).expect("checked-in mega-fleet scenario");

    sc.registered_devices = 100_000;
    sc.data.train_n = 100_000;
    sc.data.test_n = 32;
    sc.sim.participation = 0.01;
    sc.sim.rounds = 2;
    sc.churn = Some(ChurnSpec {
        seed: 17,
        arrival_window: 2,
        duty_period: 3,
        duty_on: 2,
        dropout: 0.2,
        ..Default::default()
    });

    let log = sc.run().expect("churning shrunk mega-fleet runs");
    assert_eq!(log.rounds.len(), 2);

    for round in &log.rounds {
        assert_eq!(round.registered_devices, 100_000);
        assert!(
            round.available_devices < 100_000,
            "round {}: duty cycling must keep part of the fleet offline",
            round.round
        );
        assert!(round.dropped_devices > 0, "20% dropout over ~1k sampled devices");
        let touched = round.active_devices.len() + round.dropped_devices;
        assert!(
            round.peak_resident_devices <= touched + 1,
            "round {}: peak resident {} exceeds the touched working set {}",
            round.round,
            round.peak_resident_devices,
            touched
        );
    }
}
