//! Checkpointing a live federated run through the binary wire format:
//! the round-trip a real deployment would do when persisting device models
//! between rounds (or actually transmitting them).

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{FedGkt, FedGktConfig, FederatedAlgorithm, SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::{
    decode_state_dict, encode_state_dict, load_state_dict, state_dict,
};

fn tiny_run() -> Simulation<FedZkt> {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 96,
        test_n: 48,
        classes: 4,
        seed: 31,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 31).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let sim_cfg = SimConfig { rounds: 1, seed: 31, ..Default::default() };
    let fed = FedZkt::new(
        &zoo,
        &train,
        &shards,
        FedZktConfig {
            local_epochs: 1,
            distill_iters: 3,
            transfer_iters: 3,
            device_batch: 16,
            distill_batch: 8,
            device_lr: 0.05,
            generator: GeneratorSpec { z_dim: 16, ngf: 4 },
            global_model: ModelSpec::SmallCnn { base_channels: 4 },
            ..Default::default()
        },
        &sim_cfg,
    );
    Simulation::builder(fed, test, sim_cfg).build()
}

#[test]
fn mid_run_device_models_survive_the_wire_format() {
    let mut sim = tiny_run();
    sim.round(0);
    let fed = sim.algorithm();
    // "Transmit" every trained device model through the binary format and
    // load it into a freshly built twin of the same architecture.
    for k in 0..fed.devices() {
        let sd = state_dict(fed.device_model(k));
        let bytes = encode_state_dict(&sd);
        // On-wire size is exactly what the comm accounting assumes, plus a
        // bounded header (16 B) and per-tensor dims.
        assert!(bytes.len() >= sd.byte_size());
        assert!(bytes.len() <= sd.byte_size() + 64 * (sd.params.len() + sd.buffers.len() + 1));
        let decoded = decode_state_dict(&bytes).unwrap();
        assert_eq!(sd, decoded, "device {k}: wire round-trip lost data");
        let twin = fed.device_spec(k).build(1, 4, 8, 999);
        load_state_dict(twin.as_ref(), &decoded).unwrap();
        assert_eq!(state_dict(twin.as_ref()), sd, "device {k}: twin differs");
    }
}

fn tiny_gkt_run(seed: u64) -> Simulation<FedGkt> {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 96,
        test_n: 48,
        classes: 4,
        seed: 31,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, 3, 31).unwrap();
    let zoo = vec![
        ModelSpec::Mlp { hidden: 16 },
        ModelSpec::SmallCnn { base_channels: 2 },
        ModelSpec::LeNet { scale: 0.5, deep: false },
    ];
    let sim_cfg = SimConfig { rounds: 1, seed, ..Default::default() };
    let fed = FedGkt::new(
        &zoo,
        &train,
        &shards,
        FedGktConfig {
            local_epochs: 1,
            kd_epochs: 1,
            server_epochs: 1,
            batch_size: 16,
            lr: 0.05,
            server_lr: 0.02,
            feature_dim: 8,
            server_hidden: 16,
        },
        &sim_cfg,
    );
    Simulation::builder(fed, test, sim_cfg).build()
}

#[test]
fn fedgkt_split_models_survive_the_wire_format() {
    // FedGKT's per-device state is a *composite* — zoo extractor plus a
    // linear head trained against server soft labels — and the server
    // carries its own classifier head. Both sides must survive the same
    // binary format the monolithic models use, and restore into a
    // differently-seeded twin federation bit for bit.
    let mut sim = tiny_gkt_run(31);
    sim.round(0);
    let twin = tiny_gkt_run(777);
    for k in 0..sim.devices() {
        let sd = state_dict(sim.algorithm().device_model(k));
        let decoded = decode_state_dict(&encode_state_dict(&sd)).unwrap();
        assert_eq!(sd, decoded, "device {k}: split-model wire round-trip lost data");
        assert_ne!(
            state_dict(twin.algorithm().device_model(k)),
            sd,
            "device {k}: twin seed must actually differ for the restore to mean anything"
        );
        load_state_dict(twin.algorithm().device_model(k), &decoded).unwrap();
        assert_eq!(state_dict(twin.algorithm().device_model(k)), sd, "device {k}: twin differs");
    }
    // The server head travels the same path.
    let head = state_dict(sim.algorithm().server_head());
    let decoded = decode_state_dict(&encode_state_dict(&head)).unwrap();
    load_state_dict(twin.algorithm().server_head(), &decoded).unwrap();
    assert_eq!(state_dict(twin.algorithm().server_head()), head, "server head differs");
}

#[test]
fn checkpoint_files_resume_training() {
    // Unique per process: parallel test invocations must not race.
    let dir = std::env::temp_dir().join(format!("fedzkt_resume_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Run one round, checkpoint device 0 to disk.
    let mut sim = tiny_run();
    sim.round(0);
    let fed = sim.algorithm();
    let path = dir.join("device0.fzkt");
    fedzkt::nn::save_state_dict(&state_dict(fed.device_model(0)), &path).unwrap();

    // "Restart": rebuild the architecture, restore, verify behavioural
    // equivalence on a fixed input.
    let restored = fed.device_spec(0).build(1, 4, 8, 12345);
    let loaded = fedzkt::nn::load_state_dict_file(&path).unwrap();
    load_state_dict(restored.as_ref(), &loaded).unwrap();
    let x = fedzkt::autograd::Var::constant(fedzkt::tensor::Tensor::ones(&[2, 1, 8, 8]));
    restored.set_training(false);
    fed.device_model(0).set_training(false);
    let a = fedzkt::autograd::no_grad(|| restored.forward(&x)).value_clone();
    let b = fedzkt::autograd::no_grad(|| fed.device_model(0).forward(&x)).value_clone();
    assert_eq!(a.data(), b.data());
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_checkpoint_is_rejected_not_loaded() {
    let mut sim = tiny_run();
    sim.round(0);
    let fed = sim.algorithm();
    let sd = state_dict(fed.device_model(1));
    let mut bytes = encode_state_dict(&sd).to_vec();
    // Flip a header byte (tensor count) — must fail cleanly.
    bytes[8] = bytes[8].wrapping_add(1);
    assert!(decode_state_dict(&bytes).is_err());
    // Loading a valid dict of the WRONG architecture must also fail and
    // leave the target untouched.
    let other_arch = fed.device_spec(0).build(1, 4, 8, 7);
    let before = state_dict(other_arch.as_ref());
    assert!(load_state_dict(other_arch.as_ref(), &sd).is_err());
    assert_eq!(state_dict(other_arch.as_ref()), before);
}

#[test]
fn every_paper_zoo_architecture_survives_a_file_roundtrip() {
    // The save→load path must be lossless for every architecture a device
    // can pick: the small zoo (1-channel input) and the CIFAR zoo, whose
    // ShuffleNetV2/MobileNetV2 members carry batch-norm running-stat
    // buffers — the part of a state dict most easily lost in a wire
    // format. Unique per-process dir: parallel `cargo test` invocations on
    // one machine must not race on the checkpoint files.
    let dir = std::env::temp_dir().join(format!("fedzkt_zoo_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let zoos = [
        (ModelSpec::paper_zoo_small(), 1usize),
        (ModelSpec::paper_zoo_cifar(), 3usize),
    ];
    for (z, (zoo, in_channels)) in zoos.iter().enumerate() {
        for (i, spec) in zoo.iter().enumerate() {
            let model = spec.build(*in_channels, 10, 8, 1000 + i as u64);
            let sd = state_dict(model.as_ref());
            let path = dir.join(format!("zoo_{z}_{i}.fzkt"));
            fedzkt::nn::save_state_dict(&sd, &path).unwrap();
            let loaded = fedzkt::nn::load_state_dict_file(&path).unwrap();
            assert_eq!(sd, loaded, "{}: file round-trip lost data", spec.name());
            // Restoring into a differently-seeded twin reproduces the exact
            // state dict, so a checkpoint fully determines the model.
            let twin = spec.build(*in_channels, 10, 8, 9_999);
            load_state_dict(twin.as_ref(), &loaded).unwrap();
            assert_eq!(
                state_dict(twin.as_ref()),
                sd,
                "{}: restored twin differs",
                spec.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
