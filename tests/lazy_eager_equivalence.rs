//! The lazy-fleet correctness contract: materialization is a memory knob,
//! never a semantics knob. For **every** checked-in scenario file, a run
//! with the lazy `DeviceRegistry` must produce a `RunLog` bit-identical to
//! the eager run — same seed, same wire traffic, same accuracies, same
//! simulated clock — with exactly one permitted difference: the
//! `peak_resident_devices` gauge, which is the *point* of the lazy fleet
//! (it reports the sampled working set, not the registered population).
//!
//! The paper-scale presets are hours of CPU at their written size, so the
//! sweep runs every file through one uniform miniaturization (same data,
//! partition shape, algorithm and codec; tiny sizes). The two seconds-scale
//! CI anchors — `tiny` and `quant-uplink` — additionally run at full size.

use fedzkt::core::FedMdConfig;
use fedzkt::fl::{Materialization, RunLog};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::scenario::Scenario;

fn scenario_files() -> Vec<std::path::PathBuf> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("checked-in scenarios directory")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no scenario files found");
    files
}

/// Shrink a scenario to seconds-scale while preserving its shape: the same
/// family, partition, algorithm, codec and resource model, over tiny data
/// and a three-device re-cycle of its zoo.
fn miniaturize(sc: &mut Scenario) {
    sc.data.img = 8;
    sc.data.train_n = 96;
    sc.data.test_n = 32;
    sc.set_device_count(3);
    sc.sim.rounds = 2;
    sc.sim.eval_batch = 32;
    if let Some(cfg) = sc.fedzkt_cfg_mut() {
        cfg.local_epochs = 1;
        cfg.distill_iters = 2;
        cfg.transfer_iters = 2;
        cfg.device_batch = 8;
        cfg.distill_batch = 8;
        cfg.generator = GeneratorSpec { z_dim: 8, ngf: 4 };
        cfg.global_model = ModelSpec::SmallCnn { base_channels: 4 };
    }
    if let Some(cfg) = sc.fedavg_cfg_mut() {
        cfg.local_epochs = 1;
        cfg.batch_size = 8;
    }
    if let Some(cfg) = sc.fedmd_cfg_mut() {
        *cfg = FedMdConfig {
            public_warmup_epochs: 1,
            private_warmup_epochs: 1,
            alignment_size: 16,
            digest_epochs: 1,
            revisit_epochs: 1,
            batch_size: 8,
            lr: cfg.lr,
        };
    }
    if let Some(cfg) = sc.fedet_cfg_mut() {
        cfg.local_epochs = 1;
        cfg.batch_size = 8;
        cfg.transfer_size = 16;
        cfg.distill_epochs = 1;
        cfg.transfer_epochs = 1;
        cfg.server_model = ModelSpec::SmallCnn { base_channels: 4 };
    }
    if let Some(cfg) = sc.fedgkt_cfg_mut() {
        cfg.local_epochs = 1;
        cfg.kd_epochs = 1;
        cfg.server_epochs = 1;
        cfg.batch_size = 8;
        cfg.feature_dim = 8;
        cfg.server_hidden = 16;
    }
}

fn run_in_mode(sc: &Scenario, mode: Materialization) -> RunLog {
    let mut sc = sc.clone();
    sc.sim.materialization = mode;
    sc.run().unwrap_or_else(|e| panic!("{} ({mode}): {e}", sc.name))
}

/// Zero out the one deliberately mode-dependent column so the rest of the
/// log can be compared bit for bit (via the serialized form, which compares
/// float *bits* — `to_json` round-trips f32 exactly).
fn masked_json(log: &RunLog) -> String {
    let mut log = log.clone();
    for round in &mut log.rounds {
        round.peak_resident_devices = 0;
    }
    log.to_json()
}

fn assert_modes_equivalent(sc: &Scenario, label: &str) {
    let eager = run_in_mode(sc, Materialization::Eager);
    let lazy = run_in_mode(sc, Materialization::Lazy);
    assert_eq!(
        masked_json(&eager),
        masked_json(&lazy),
        "{label}: lazy run diverged from eager"
    );
    for (re, rl) in eager.rounds.iter().zip(&lazy.rounds) {
        assert_eq!(
            re.registered_devices, rl.registered_devices,
            "{label}: registered fleet size is mode-independent"
        );
        assert!(
            rl.peak_resident_devices <= re.peak_resident_devices,
            "{label} round {}: lazy peak {} exceeds eager peak {}",
            re.round,
            rl.peak_resident_devices,
            re.peak_resident_devices
        );
    }
}

#[test]
fn every_scenario_file_is_mode_equivalent_miniaturized() {
    for path in scenario_files() {
        let mut sc = Scenario::load(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        miniaturize(&mut sc);
        assert_modes_equivalent(&sc, &format!("{} (miniaturized)", sc.name));
    }
}

#[test]
fn tiny_is_mode_equivalent_at_full_size() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/tiny.json");
    let sc = Scenario::load(path).expect("checked-in tiny scenario");
    assert_modes_equivalent(&sc, "tiny (full size)");
}

#[test]
fn quant_uplink_is_mode_equivalent_at_full_size() {
    // The lossy-codec anchor: quantized uploads decoded into the streaming
    // fold must agree with the eager batch path bit for bit too.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/quant-uplink.json");
    let sc = Scenario::load(path).expect("checked-in quant-uplink scenario");
    assert_modes_equivalent(&sc, "quant-uplink (full size)");
}
