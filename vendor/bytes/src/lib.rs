//! Offline shim for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the little-endian accessors the checkpoint wire format uses. Backed by a
//! plain `Vec<u8>` — contiguous, no refcounted slabs — which is all the
//! workspace needs.

#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable contiguous byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte source; advancing consumes bytes.
pub trait Buf {
    /// Bytes remaining to be consumed.
    fn remaining(&self) -> usize;

    /// Copy exactly `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write-side sink for bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_f32_le(-1.5);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 10);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_f32_le(), -1.5);
        let mut rest = [0u8; 2];
        cursor.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
