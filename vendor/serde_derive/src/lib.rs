//! Offline shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as markers
//! (no actual serialization runs offline), and the serde shim blanket-
//! implements both traits, so these derives just validate their position
//! and expand to nothing.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the serde shim blanket-implements the trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the serde shim blanket-implements the trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
