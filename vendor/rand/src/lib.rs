//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates registry, so this vendored crate
//! supplies the exact API surface the fedzkt workspace uses: a seedable
//! deterministic [`rngs::StdRng`], the [`RngExt`] extension trait
//! (`random`, `random_range`), and [`seq::SliceRandom`] (`shuffle`,
//! `choose`). The generator is xoshiro256++ seeded through SplitMix64 —
//! high quality, tiny, and bit-stable across platforms, which is what the
//! workspace's determinism contract (`seeded_rng`/`split_seed`) needs.

#![warn(missing_docs)]

/// Low-level source of random `u64`/`u32` words.
pub trait RngCore {
    /// Produce the next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Produce the next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Build an RNG whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's internal state, for checkpointing: feeding the
        /// returned words back through [`StdRng::from_state`] resumes the
        /// stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a state captured by [`StdRng::state`].
        ///
        /// The all-zero state is xoshiro's one degenerate fixed point (the
        /// stream would be constant zero); it can never be produced by
        /// `seed_from_u64`, so it is rejected here to catch corrupted
        /// checkpoints early.
        ///
        /// # Panics
        /// Panics when `s` is all zeros.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "all-zero xoshiro state is degenerate");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable uniformly over their whole domain via [`RngExt::random`].
pub trait Random: Sized {
    /// Draw one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::random(rng) % span) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (u128::random(rng) % span) as i128 + start as i128;
                v as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                self.start + <$t as Random>::random(rng) * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Sample a value uniformly over the whole domain of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Shuffling and element choice on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    #[should_panic(expected = "all-zero xoshiro state")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
