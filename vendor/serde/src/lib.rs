//! Offline shim for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and metric
//! types so that a real serde can be dropped in once a registry is
//! available, but no code path actually serializes offline. The traits are
//! therefore empty markers, blanket-implemented for every type, and the
//! derive macros (re-exported from the `serde_derive` shim) expand to
//! nothing.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
