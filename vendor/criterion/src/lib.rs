//! Offline shim for the `criterion` crate.
//!
//! Supports the benchmark-definition surface the `fedzkt_bench` targets
//! use — `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, `BenchmarkId` —
//! and executes each benchmark a small, bounded number of iterations,
//! reporting mean wall-clock time per iteration. No statistics, plots or
//! HTML reports; the point is that `cargo bench` compiles and produces
//! comparable one-line numbers offline.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under timing; handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `f`, running it a small fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup, then a bounded measured run.
        black_box(f());
        let iters = 5u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }

    fn report(&self, id: &str) {
        if self.iterations == 0 {
            println!("{id:<40} (no measurement)");
        } else {
            let per_iter = self.elapsed.as_secs_f64() / self.iterations as f64;
            println!("{id:<40} time: {:>12.3} µs/iter", per_iter * 1e6);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's iteration count is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.id);
        self
    }
}

/// Collect benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("plain", |b| b.iter(|| black_box(2u64 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(8usize), &8usize, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1u32)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
