//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of proptest the fedzkt workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), range / tuple /
//! mapped / `collection::vec` strategies, and the `prop_assert*` /
//! [`prop_assume!`] macros. Cases are generated from a deterministic
//! per-test seed (an FNV-1a hash of the test name) so runs are perfectly
//! reproducible — there is no shrinking and no failure persistence, which
//! also means no `proptest-regressions` files are written; a failing case
//! panics with its case index and the generating seed instead.

#![warn(missing_docs)]

/// Outcome of one generated test case, used by the `prop_*` macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a [`prop_assume!`] precondition; skip it.
    Reject,
    /// An assertion failed with the given message.
    Fail(String),
}

/// Per-test configuration, set via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
pub mod test_runner {
    /// RNG driving strategy generation; seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next random 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128 + self.start as i128;
                    v as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128 % span) as i128 + start as i128;
                    v as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($S:ident . $i:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Admissible lengths for a generated collection.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_inclusive - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy over `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// The usual glob import for tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// Define property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            while ran < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!(
                        "proptest shim: too many rejected cases in `{}` ({} accepted of {} wanted)",
                        stringify!($name), ran, config.cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => ran += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property `{}` failed at case {}: {}",
                        stringify!($name), ran, msg
                    ),
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Like `assert!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Like `assert_ne!`, but reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `(left != right)`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, b in -2.0f32..2.0, c in 1u64..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn tuples_and_maps(v in (1usize..4, 0u64..100).prop_map(|(n, s)| vec![s; n])) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn vec_sizes(v in collection::vec(0usize..5, 2..6), w in collection::vec(0u64..9, 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_generation() {
        let gen = |name: &str| {
            let mut rng = TestRng::for_test(name);
            (0..8).map(|_| Strategy::generate(&(0u64..1000), &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen("a"), gen("a"));
        assert_ne!(gen("a"), gen("b"));
    }
}
