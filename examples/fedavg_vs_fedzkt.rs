//! Classical FL vs FedZKT on the same federation.
//!
//! FedAvg requires every device to run the same architecture; FedZKT frees
//! each device to pick its own. This example builds both legs as
//! *scenarios* sharing one dataset, partition and protocol config — FedAvg
//! with the *smallest* architecture every device could afford (the MCU's
//! LeNet, since classical FL is constrained by the weakest participant),
//! FedZKT with the full heterogeneous zoo — and, because the runner is
//! algorithm-erased, drives both simulations out of one `Vec`.
//!
//! ```sh
//! cargo run --release --example fedavg_vs_fedzkt
//! ```

use fedzkt::data::{DataFamily, Partition};
use fedzkt::scenario::{preset, Scenario, Tier};

fn main() {
    // Classical FL: everyone must run the lowest-common-denominator model.
    let fedavg = preset("fedavg-lcd").expect("registry preset");
    // FedZKT: same data/partition/seed, but each device runs the
    // architecture its hardware affords.
    let mut fedzkt = Scenario::standard(
        DataFamily::MnistLike,
        Partition::Iid,
        Tier::Quick,
        fedavg.sim.seed,
    );
    fedzkt.sim.rounds = fedavg.sim.rounds;
    let lcd = fedavg.zoo[0].0;
    let rounds = fedavg.sim.rounds;

    // One erased collection, two algorithms — run them uniformly.
    let scenarios = [fedavg, fedzkt];
    let mut logs = Vec::new();
    for scenario in &scenarios {
        let mut sim = scenario.build().expect("buildable scenario");
        logs.push(sim.run().clone());
    }
    let (avg_log, zkt_log) = (&logs[0], &logs[1]);

    println!("round  FedAvg(LCD {})   FedZKT(heterogeneous zoo)", lcd.name());
    for r in 0..rounds {
        println!(
            "{:>5}  {:>18.1}%  {:>24.1}%",
            r + 1,
            100.0 * avg_log.rounds[r].avg_device_accuracy,
            100.0 * zkt_log.rounds[r].avg_device_accuracy,
        );
    }
    let avg_up = avg_log.rounds.last().map(|r| r.upload_bytes).unwrap_or(0);
    let zkt_up = zkt_log.rounds.last().map(|r| r.upload_bytes).unwrap_or(0);
    println!("\nlast-round uplink: FedAvg {avg_up} B, FedZKT {zkt_up} B (each device ships only its own model)");
    println!(
        "final: FedAvg {:.1}%  FedZKT {:.1}%",
        100.0 * avg_log.final_accuracy(),
        100.0 * zkt_log.final_accuracy()
    );
    avg_log.write_artifacts("target/examples", "fedavg_vs_fedzkt_fedavg").expect("write artifacts");
    zkt_log.write_artifacts("target/examples", "fedavg_vs_fedzkt_fedzkt").expect("write artifacts");
    println!("artifacts: target/examples/fedavg_vs_fedzkt_*.{{csv,json}}");
}
