//! Classical FL vs FedZKT on the same federation.
//!
//! FedAvg requires every device to run the same architecture; FedZKT frees
//! each device to pick its own. This example runs both on identical data
//! shards — FedAvg with the *smallest* architecture every device could
//! afford (the MCU's LeNet, since classical FL is constrained by the
//! weakest participant), FedZKT with the full heterogeneous zoo — and
//! compares accuracy and per-device communication. Both algorithms run
//! under the **same** `Simulation` driver with the same `SimConfig`.
//!
//! ```sh
//! cargo run --release --example fedavg_vs_fedzkt
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{FedAvg, FedAvgConfig, SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn main() {
    let devices = 5;
    let rounds = 6;
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 13,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid
        .split(train.labels(), train.num_classes(), devices, 13)
        .expect("partition");
    let sim_cfg = SimConfig { rounds, seed: 13, ..Default::default() };

    // Classical FL: everyone must run the lowest-common-denominator model.
    let lcd = ModelSpec::LeNet { scale: 0.5, deep: false };
    let fedavg = FedAvg::new(
        lcd,
        &train,
        &shards,
        FedAvgConfig { local_epochs: 2, batch_size: 32, lr: 0.05, ..Default::default() },
        &sim_cfg,
    );
    let mut avg_sim = Simulation::builder(fedavg, test.clone(), sim_cfg).build();
    let avg_log = avg_sim.run().clone();

    // FedZKT: each device runs the architecture its hardware affords.
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), devices);
    let fedzkt = FedZkt::new(
        &zoo,
        &train,
        &shards,
        FedZktConfig {
            local_epochs: 2,
            distill_iters: 16,
            transfer_iters: 16,
            device_lr: 0.05,
            generator: GeneratorSpec { z_dim: 32, ngf: 8 },
            global_model: ModelSpec::SmallCnn { base_channels: 8 },
            ..Default::default()
        },
        &sim_cfg,
    );
    let mut zkt_sim = Simulation::builder(fedzkt, test, sim_cfg).build();
    let zkt_log = zkt_sim.run().clone();

    println!("round  FedAvg(LCD {})   FedZKT(heterogeneous zoo)", lcd.name());
    for r in 0..rounds {
        println!(
            "{:>5}  {:>18.1}%  {:>24.1}%",
            r + 1,
            100.0 * avg_log.rounds[r].avg_device_accuracy,
            100.0 * zkt_log.rounds[r].avg_device_accuracy,
        );
    }
    let avg_up = avg_log.rounds.last().map(|r| r.upload_bytes).unwrap_or(0);
    let zkt_up = zkt_log.rounds.last().map(|r| r.upload_bytes).unwrap_or(0);
    println!("\nlast-round uplink: FedAvg {avg_up} B, FedZKT {zkt_up} B (each device ships only its own model)");
    println!(
        "final: FedAvg {:.1}%  FedZKT {:.1}%",
        100.0 * avg_log.final_accuracy(),
        100.0 * zkt_log.final_accuracy()
    );
    avg_log.write_artifacts("target/examples", "fedavg_vs_fedzkt_fedavg").expect("write artifacts");
    zkt_log.write_artifacts("target/examples", "fedavg_vs_fedzkt_fedzkt").expect("write artifacts");
    println!("artifacts: target/examples/fedavg_vs_fedzkt_*.{{csv,json}}");
}
