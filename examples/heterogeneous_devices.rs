//! The paper's motivating scenario (§IV-C2): ten devices spanning
//! smartphone-class (ShuffleNetV2 / MobileNetV2) and MCU-class (LeNet)
//! hardware collaborate on a CIFAR-10-like task, with simulated device
//! resources showing why element-wise averaging (FedAvg) cannot even be
//! attempted and where the wall-clock time goes.
//!
//! The simulated clock is owned by the `Simulation` driver: attaching
//! `DeviceResources` populates `sim_seconds` in every round's metrics, so
//! the timing below is read straight from the `RunLog`.
//!
//! ```sh
//! cargo run --release --example heterogeneous_devices
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{DeviceResources, SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::param_bytes;

fn main() {
    let devices = 10;
    let (train, test) = SynthConfig {
        family: DataFamily::Cifar10Like,
        img: 12,
        train_n: 500,
        test_n: 250,
        seed: 11,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 10, devices, 11).expect("partition");
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_cifar(), devices);

    // Heterogeneous hardware: a mix of phone- and MCU-class devices.
    let resources = DeviceResources::heterogeneous_population(devices, 11);

    println!("device  architecture          params(B)  samples/s");
    for (i, spec) in zoo.iter().enumerate() {
        let bytes = param_bytes(spec.build(3, 10, 12, 0).as_ref());
        println!(
            "{:>6}  {:<20} {:>9}  {:>9.1}",
            i + 1,
            spec.name(),
            bytes,
            resources[i].compute_samples_per_sec
        );
    }
    println!("\nNote: five distinct architectures — element-wise FedAvg is impossible here.\n");

    let sim_cfg = SimConfig { rounds: 6, seed: 11, ..Default::default() };
    let cfg = FedZktConfig {
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::MobileNetV2 { width: 1.0 },
        ..Default::default()
    };
    let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg)
        .resources(resources)
        // Per-round orchestration latency; the distillation game's compute
        // is charged separately via FedZktConfig::server_samples_per_sec.
        .server_seconds(1.0)
        .build();
    println!("round  avg-acc  per-device accuracies                                   sim-time");
    sim.run_with(|m| {
        let accs: Vec<String> =
            m.device_accuracy.iter().map(|a| format!("{:>4.0}%", 100.0 * a)).collect();
        println!(
            "{:>5}  {:>6.1}%  [{}]  +{:.0}s",
            m.round,
            100.0 * m.avg_device_accuracy,
            accs.join(" "),
            m.sim_seconds
        );
    });
    let total: f64 = sim.log().rounds.iter().map(|r| r.sim_seconds).sum();
    println!("\ntotal simulated wall time: {:.0} s", total);
    assert!(total > 0.0, "resources are attached, so simulated time must accrue");
    sim.log().write_artifacts("target/examples", "heterogeneous_devices").expect("write artifacts");
    println!("\nartifacts: target/examples/heterogeneous_devices.{{csv,json}}");
}
