//! The paper's motivating scenario (§IV-C2): ten devices spanning
//! smartphone-class (ShuffleNetV2 / MobileNetV2) and MCU-class (LeNet)
//! hardware collaborate on a CIFAR-10-like task, with simulated device
//! resources showing why element-wise averaging (FedAvg) cannot even be
//! attempted and where the wall-clock time goes.
//!
//! ```sh
//! cargo run --release --example heterogeneous_devices
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{DeviceResources, SimClock};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::{param_bytes, state_dict};

fn main() {
    let devices = 10;
    let (train, test) = SynthConfig {
        family: DataFamily::Cifar10Like,
        img: 12,
        train_n: 500,
        test_n: 250,
        seed: 11,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 10, devices, 11).expect("partition");
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_cifar(), devices);

    // Heterogeneous hardware: a mix of phone- and MCU-class devices.
    let resources = DeviceResources::heterogeneous_population(devices, 11);
    let mut clock = SimClock::new(resources.clone());

    println!("device  architecture          params(B)  samples/s");
    for (i, spec) in zoo.iter().enumerate() {
        let bytes = param_bytes(spec.build(3, 10, 12, 0).as_ref());
        println!(
            "{:>6}  {:<20} {:>9}  {:>9.1}",
            i + 1,
            spec.name(),
            bytes,
            resources[i].compute_samples_per_sec
        );
    }
    println!("\nNote: five distinct architectures — element-wise FedAvg is impossible here.\n");

    let cfg = FedZktConfig {
        rounds: 6,
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::MobileNetV2 { width: 1.0 },
        seed: 11,
        ..Default::default()
    };
    let mut fed = FedZkt::new(&zoo, &train, &shards, test, cfg);
    println!("round  avg-acc  per-device accuracies                                   sim-time");
    for round in 0..cfg.rounds {
        let m = fed.round(round);
        // Each device's round cost: download + local epochs + upload of its
        // own model (never the global model or generator).
        let samples = 2 * train.len() / devices;
        let dt = clock.advance_round(
            &m.active_devices,
            samples,
            &|d| state_dict(fed.device_model(d)).byte_size(),
            &|d| state_dict(fed.device_model(d)).byte_size(),
            1.0, // server-side distillation happens on server hardware
        );
        let accs: Vec<String> =
            m.device_accuracy.iter().map(|a| format!("{:>4.0}%", 100.0 * a)).collect();
        println!(
            "{:>5}  {:>6.1}%  [{}]  +{:.0}s",
            m.round,
            100.0 * m.avg_device_accuracy,
            accs.join(" "),
            dt
        );
    }
    println!("\ntotal simulated wall time: {:.0} s", clock.now());
}
