//! The paper's motivating scenario (§IV-C2): ten devices spanning
//! smartphone-class (ShuffleNetV2 / MobileNetV2) and MCU-class (LeNet)
//! hardware collaborate on a CIFAR-10-like task, with simulated device
//! resources showing why element-wise averaging (FedAvg) cannot even be
//! attempted and where the wall-clock time goes.
//!
//! Everything — the zoo, the heterogeneous hardware population, the
//! per-round server latency — is the `hetero-cifar` registry preset
//! (`scenarios/hetero-cifar.json`); attaching resources is what populates
//! `sim_seconds` in every round's metrics.
//!
//! ```sh
//! cargo run --release --example heterogeneous_devices
//! ```

use fedzkt::nn::param_bytes;
use fedzkt::scenario::preset;

fn main() {
    let scenario = preset("hetero-cifar").expect("registry preset");
    let m = scenario.materialize().expect("materializable scenario");
    let resources = m.resources.as_ref().expect("preset attaches resources");

    println!("device  architecture          params(B)  samples/s");
    let channels = scenario.data.family.channels();
    let classes = scenario.data.effective_classes();
    for (i, spec) in m.zoo.iter().enumerate() {
        let bytes = param_bytes(spec.build(channels, classes, scenario.data.img, 0).as_ref());
        println!(
            "{:>6}  {:<20} {:>9}  {:>9.1}",
            i + 1,
            spec.name(),
            bytes,
            resources[i].compute_samples_per_sec
        );
    }
    println!("\nNote: five distinct architectures — element-wise FedAvg is impossible here.\n");

    println!("round  avg-acc  per-device accuracies                                   sim-time");
    let log = scenario
        .run_with(&mut |metrics| {
            let accs: Vec<String> =
                metrics.device_accuracy.iter().map(|a| format!("{:>4.0}%", 100.0 * a)).collect();
            println!(
                "{:>5}  {:>6.1}%  [{}]  +{:.0}s",
                metrics.round,
                100.0 * metrics.avg_device_accuracy,
                accs.join(" "),
                metrics.sim_seconds
            );
        })
        .expect("runnable scenario");
    let total: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
    println!("\ntotal simulated wall time: {total:.0} s");
    assert!(total > 0.0, "resources are attached, so simulated time must accrue");
    log.write_artifacts("target/examples", "heterogeneous_devices").expect("write artifacts");
    println!("\nartifacts: target/examples/heterogeneous_devices.{{csv,json}}");
}
