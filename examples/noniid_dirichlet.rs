//! Non-IID federated learning with Dirichlet label skew (§IV-A4) and the
//! ℓ2 proximal regularizer of Eq. 9, showing (a) how skewed the shards are
//! and (b) the regularizer's effect — the Table IV ablation in miniature.
//!
//! The base experiment is the `noniid-dirichlet` registry preset; the two
//! legs differ in exactly one scenario field (`prox_mu`).
//!
//! ```sh
//! cargo run --release --example noniid_dirichlet
//! ```

use fedzkt::scenario::preset;

fn main() {
    let base = preset("noniid-dirichlet").expect("registry preset");

    // Materialize once to inspect the skew the partition produced.
    let m = base.materialize().expect("materializable scenario");
    println!("{} shards (rows: devices, cols: class counts):", base.partition);
    for (i, shard) in m.shards.iter().enumerate() {
        let sub = m.train.subset(shard);
        println!("  device {i}: {:?}  ({} samples)", sub.class_counts(), sub.len());
    }

    for (tag, label, mu) in [
        ("mu0", "no regularization", 0.0f32),
        ("mu1", "l2 regularization (Eq. 9)", 1.0),
    ] {
        let mut leg = base.clone();
        leg.fedzkt_cfg_mut().expect("preset runs fedzkt").prox_mu = mu;
        let log = leg.run().expect("runnable scenario");
        println!(
            "\n{label}: final avg accuracy {:.1}%  (per round: {})",
            100.0 * log.final_accuracy(),
            log.accuracy_series()
                .iter()
                .map(|a| format!("{:.0}%", 100.0 * a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        log.write_artifacts("target/examples", &format!("noniid_dirichlet_{tag}"))
            .expect("write artifacts");
    }
    println!("\nartifacts: target/examples/noniid_dirichlet_*.{{csv,json}}");
}
