//! Non-IID federated learning with Dirichlet label skew (§IV-A4) and the
//! ℓ2 proximal regularizer of Eq. 9, showing (a) how skewed the shards are
//! and (b) the regularizer's effect — the Table IV ablation in miniature.
//!
//! ```sh
//! cargo run --release --example noniid_dirichlet
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn main() {
    let beta = 0.3f32;
    let devices = 5;
    let (train, test) = SynthConfig {
        family: DataFamily::FashionLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Dirichlet { beta }
        .split(train.labels(), train.num_classes(), devices, 3)
        .expect("partition");

    println!("Dirichlet(beta={beta}) shards (rows: devices, cols: class counts):");
    for (i, shard) in shards.iter().enumerate() {
        let sub = train.subset(shard);
        println!("  device {i}: {:?}  ({} samples)", sub.class_counts(), sub.len());
    }

    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), devices);
    let sim_cfg = SimConfig { rounds: 6, seed: 3, ..Default::default() };
    let base = FedZktConfig {
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::SmallCnn { base_channels: 8 },
        ..Default::default()
    };

    for (tag, label, mu) in [
        ("mu0", "no regularization", 0.0f32),
        ("mu1", "l2 regularization (Eq. 9)", 1.0),
    ] {
        let fed = FedZkt::new(
            &zoo,
            &train,
            &shards,
            FedZktConfig { prox_mu: mu, ..base },
            &sim_cfg,
        );
        let mut sim = Simulation::builder(fed, test.clone(), sim_cfg).build();
        let log = sim.run();
        println!(
            "\n{label}: final avg accuracy {:.1}%  (per round: {})",
            100.0 * log.final_accuracy(),
            log.accuracy_series()
                .iter()
                .map(|a| format!("{:.0}%", 100.0 * a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        log.write_artifacts("target/examples", &format!("noniid_dirichlet_{tag}"))
            .expect("write artifacts");
    }
    println!("\nartifacts: target/examples/noniid_dirichlet_*.{{csv,json}}");
}
