//! One federation, four wire formats.
//!
//! Runs the `quant-uplink` preset (a tiny FedZKT federation with
//! smartphone-class links) under every payload codec and prints what each
//! one does to uplink traffic, simulated round time, and accuracy — the
//! codec × bandwidth axis the wire-format layer opens up. Raw is today's
//! uncompressed baseline; the lossy codecs genuinely perturb training
//! (devices receive the decoded payloads), so the accuracy column is a
//! real measurement, not a replay.
//!
//! ```sh
//! cargo run --release --example codec_comparison
//! ```

use fedzkt::fl::CodecSpec;
use fedzkt::scenario::preset;

fn main() {
    let base = preset("quant-uplink").expect("registry preset");
    let codecs = [
        CodecSpec::Raw,
        CodecSpec::QuantQ8,
        CodecSpec::QuantQ4,
        CodecSpec::TopK { density: 0.1 },
    ];

    println!(
        "codec   uplink-KiB/round   vs-raw   sim-s/round   final-acc"
    );
    let mut raw_uplink = 0u64;
    for codec in codecs {
        let mut scenario = base.clone();
        scenario.sim.codec = codec;
        let log = scenario.run().expect("runnable scenario");
        let rounds = log.rounds.len() as f64;
        let uplink: u64 = log.rounds.iter().map(|r| r.upload_bytes).sum();
        let sim_seconds: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
        if codec == CodecSpec::Raw {
            raw_uplink = uplink;
        }
        println!(
            "{:<7} {:>16.1} {:>7.2}x {:>13.2} {:>10.1}%",
            codec.name(),
            uplink as f64 / rounds / 1024.0,
            raw_uplink as f64 / uplink as f64,
            sim_seconds / rounds,
            100.0 * log.final_accuracy()
        );
        log.write_artifacts("target/examples", &format!("codec_comparison_{}", codec.name()))
            .expect("write artifacts");
    }
    println!("\nNote: sim-time includes transfer over the preset's smartphone links, so");
    println!("smaller wire formats also shorten the simulated round.");
    println!("artifacts: target/examples/codec_comparison_*.{{csv,json}}");
}
