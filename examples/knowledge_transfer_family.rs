//! The knowledge-transfer family side by side: what goes over the wire?
//!
//! Four algorithms free devices from sharing one architecture, and each
//! picks a different wire payload to pay for it: FedZKT distills through
//! a server-trained generator (devices ship weights, receive weights),
//! FedMD exchanges logits over a public corpus, Fed-ET ships whole device
//! models up for weighted-consensus distillation into one large server
//! model, and FedGKT splits every model in two — per-sample features and
//! logits go up, soft labels come down. This example runs all four on
//! *one* hetero workload (same data, partition, Models A–E zoo, seed) by
//! swapping only the algorithm via `standard_algorithm`, then prints the
//! accuracy/traffic trade-off — including the up/down asymmetry only
//! FedGKT has.
//!
//! ```sh
//! cargo run --release --example knowledge_transfer_family
//! ```

use fedzkt::data::{DataFamily, Partition};
use fedzkt::scenario::{standard_algorithm, Scenario, Tier};

fn main() {
    let base = Scenario::standard(
        DataFamily::Cifar10Like,
        Partition::QuantitySkew { classes_per_device: 5 },
        Tier::Quick,
        17,
    );

    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>10}",
        "algo", "final-acc", "uplink-KiB", "downlink-KiB", "up/down"
    );
    for name in ["fedzkt", "fedmd", "fedet", "fedgkt"] {
        let mut leg = base.clone();
        leg.algorithm = standard_algorithm(&leg, name).expect("known algorithm");
        leg.name = format!("ktf_{name}");
        let log = leg.run().expect("runnable scenario");
        let up: u64 = log.rounds.iter().map(|r| r.upload_bytes).sum();
        let down: u64 = log.rounds.iter().map(|r| r.download_bytes).sum();
        println!(
            "{name:<8} {:>9.1}% {:>14.1} {:>14.1} {:>9.1}x",
            100.0 * log.final_accuracy(),
            up as f64 / 1024.0,
            down as f64 / 1024.0,
            up as f64 / down as f64
        );
        log.write_artifacts("target/examples", &leg.name).expect("write artifacts");
    }
    println!("\neach leg shares the base workload; only the algorithm (at its");
    println!("standard config for this scale) is swapped — the same mapping");
    println!("`scenarios sweep <file> --algos ...` uses for its grid axis.");
    println!("artifacts: target/examples/ktf_*.{{csv,json}}");
}
