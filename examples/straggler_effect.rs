//! Straggler robustness (§IV-C3): run FedZKT with different participation
//! portions p and compare the learning curves — Figure 6 in miniature.
//!
//! The participation sampler lives in the `Simulation` driver, so the only
//! thing that changes between runs is `SimConfig::participation`. Device
//! resources are attached too: the per-round `sim_seconds` in the `RunLog`
//! shows that smaller active sets also shorten the simulated round time
//! (fewer chances to include the slowest device).
//!
//! ```sh
//! cargo run --release --example straggler_effect
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{DeviceResources, SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn main() {
    let devices = 5;
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid
        .split(train.labels(), train.num_classes(), devices, 5)
        .expect("partition");
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), devices);
    let cfg = FedZktConfig {
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::SmallCnn { base_channels: 8 },
        ..Default::default()
    };

    let portions = [0.2f32, 0.6, 1.0];
    let mut curves = Vec::new();
    let mut sim_times = Vec::new();
    for &p in &portions {
        let sim_cfg = SimConfig { rounds: 6, participation: p, seed: 5, ..Default::default() };
        let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
        let mut sim = Simulation::builder(fed, test.clone(), sim_cfg)
            .resources(DeviceResources::heterogeneous_population(devices, 5))
            .server_seconds(1.0)
            .build();
        let log = sim.run().clone();
        println!(
            "p = {p}: active per round = {:?}",
            log.rounds.iter().map(|r| r.active_devices.len()).collect::<Vec<_>>()
        );
        log.write_artifacts("target/examples", &format!("straggler_effect_p{p}"))
            .expect("write artifacts");
        // Simulated time comes from the RunLog, not a hand-driven clock.
        sim_times.push(log.rounds.iter().map(|r| r.sim_seconds).sum::<f64>());
        curves.push(log.accuracy_series());
    }

    println!("\nround  {}", portions.map(|p| format!("{:>8}", format!("p={p}"))).join(" "));
    for r in 0..curves[0].len() {
        print!("{:>5}", r + 1);
        for c in &curves {
            print!("  {:>6.1}%", 100.0 * c[r]);
        }
        println!();
    }
    println!("\nsimulated wall time per portion:");
    for (p, t) in portions.iter().zip(&sim_times) {
        println!("  p = {p}: {t:.0} s");
    }
    println!("\nAs in the paper: only very small p (0.2) noticeably slows learning.");
    println!("artifacts: target/examples/straggler_effect_p*.{{csv,json}}");
}
