//! Straggler robustness (§IV-C3): run FedZKT with different participation
//! portions p and compare the learning curves — Figure 6 in miniature.
//!
//! ```sh
//! cargo run --release --example straggler_effect
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn main() {
    let devices = 5;
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 5,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid
        .split(train.labels(), train.num_classes(), devices, 5)
        .expect("partition");
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), devices);
    let base = FedZktConfig {
        rounds: 6,
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::SmallCnn { base_channels: 8 },
        seed: 5,
        ..Default::default()
    };

    let portions = [0.2f32, 0.6, 1.0];
    let mut curves = Vec::new();
    for &p in &portions {
        let mut fed = FedZkt::new(
            &zoo,
            &train,
            &shards,
            test.clone(),
            FedZktConfig { participation: p, ..base },
        );
        let log = fed.run().clone();
        println!(
            "p = {p}: active per round = {:?}",
            log.rounds.iter().map(|r| r.active_devices.len()).collect::<Vec<_>>()
        );
        curves.push(log.accuracy_series());
    }

    println!("\nround  {}", portions.map(|p| format!("{:>8}", format!("p={p}"))).join(" "));
    for r in 0..curves[0].len() {
        print!("{:>5}", r + 1);
        for c in &curves {
            print!("  {:>6.1}%", 100.0 * c[r]);
        }
        println!();
    }
    println!("\nAs in the paper: only very small p (0.2) noticeably slows learning.");
}
