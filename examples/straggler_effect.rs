//! Straggler robustness (§IV-C3): run FedZKT with different participation
//! portions p and compare the learning curves — Figure 6 in miniature.
//!
//! The `straggler` registry preset fixes everything but the participation
//! portion; the three legs of this comparison differ in exactly one
//! `SimConfig` field. Device resources are attached too: the per-round
//! `sim_seconds` in the `RunLog` shows that smaller active sets also
//! shorten the simulated round time (fewer chances to include the slowest
//! device).
//!
//! ```sh
//! cargo run --release --example straggler_effect
//! ```

use fedzkt::scenario::preset;

fn main() {
    let base = preset("straggler").expect("registry preset");

    let portions = [0.2f32, 0.6, 1.0];
    let mut curves = Vec::new();
    let mut sim_times = Vec::new();
    for &p in &portions {
        let mut leg = base.clone();
        leg.sim.participation = p;
        let log = leg.run().expect("runnable scenario");
        println!(
            "p = {p}: active per round = {:?}",
            log.rounds.iter().map(|r| r.active_devices.len()).collect::<Vec<_>>()
        );
        log.write_artifacts("target/examples", &format!("straggler_effect_p{p}"))
            .expect("write artifacts");
        // Simulated time comes from the RunLog, not a hand-driven clock.
        sim_times.push(log.rounds.iter().map(|r| r.sim_seconds).sum::<f64>());
        curves.push(log.accuracy_series());
    }

    println!("\nround  {}", portions.map(|p| format!("{:>8}", format!("p={p}"))).join(" "));
    for r in 0..curves[0].len() {
        print!("{:>5}", r + 1);
        for c in &curves {
            print!("  {:>6.1}%", 100.0 * c[r]);
        }
        println!();
    }
    println!("\nsimulated wall time per portion:");
    for (p, t) in portions.iter().zip(&sim_times) {
        println!("  p = {p}: {t:.0} s");
    }
    println!("\nAs in the paper: only very small p (0.2) noticeably slows learning.");
    println!("artifacts: target/examples/straggler_effect_p*.{{csv,json}}");
}
