//! Mega-fleet: one million registered devices on one laptop.
//!
//! The cross-device regime FedZKT targets registers a huge population of
//! which only a tiny fraction is sampled per round. The `mega-fleet`
//! scenario (also checked in as `scenarios/mega-fleet.json`) registers
//! 1,000,000 devices and samples ~1,000 per round; with
//! `"materialization": "lazy"` the fleet exists as registry slots — a
//! device's model is built from its spec + per-device seed only while
//! sampled, and dropped back to a state summary after merge. This example
//! runs it and narrates the scale columns of the `RunLog`: the registered
//! population, the peak number of simultaneously materialized devices
//! (the memory bound), and the sampled set.
//!
//! ```sh
//! cargo run --release --example mega_fleet
//! ```

use fedzkt::scenario::preset;

fn main() {
    let scenario = preset("mega-fleet").expect("registry preset");
    println!(
        "scenario \"{}\": {} registered devices, {:.2}% sampled per round, {} fleet\n",
        scenario.name,
        scenario.devices(),
        100.0 * scenario.sim.participation,
        scenario.sim.materialization,
    );

    println!("round  registered  peak-resident  sampled  avg-acc");
    let log = scenario
        .run_with(&mut |m| {
            println!(
                "{:>5}  {:>10}  {:>13}  {:>7}  {:>6.1}%",
                m.round,
                m.registered_devices,
                m.peak_resident_devices,
                m.active_devices.len(),
                100.0 * m.avg_device_accuracy,
            );
        })
        .expect("runnable scenario");

    let peak = log.rounds.iter().map(|m| m.peak_resident_devices).max().unwrap_or(0);
    println!(
        "\npeak resident: {} of {} registered ({:.3}% of the fleet ever in memory at once)",
        peak,
        scenario.devices(),
        100.0 * peak as f64 / scenario.devices() as f64
    );
    println!("same run, eagerly (don't): the fleet would materialize all 10^6 models up front.");
    println!("same run from the CLI: cargo run -p fedzkt_scenario --bin scenarios -- run mega-fleet");
}
