//! Quickstart: the smallest complete FedZKT run.
//!
//! Five devices with five *different* architectures learn a shared task
//! from an MNIST-like synthetic dataset, with zero-shot knowledge transfer
//! at the server — no public data, no pre-trained generator. The round
//! loop is owned by the generic `Simulation` driver; FedZKT only supplies
//! its device/server phases.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};
use fedzkt::nn::param_count;

fn main() {
    // 1. A synthetic MNIST-like dataset (the offline stand-in; see
    //    DESIGN.md for the substitution rationale).
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 7,
        ..Default::default()
    }
    .generate();

    // 2. IID partition across five devices.
    let shards = Partition::Iid
        .split(train.labels(), train.num_classes(), 5, 7)
        .expect("partition");

    // 3. Every device picks its own architecture — the core premise.
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 5);
    for (i, spec) in zoo.iter().enumerate() {
        let params = param_count(spec.build(1, 10, 12, 0).as_ref());
        println!("device {i}: {:<18} ({params} parameters)", spec.name());
    }

    // 4. Run FedZKT under the generic driver.
    let sim_cfg = SimConfig { rounds: 8, seed: 7, ..Default::default() };
    let cfg = FedZktConfig {
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::SmallCnn { base_channels: 8 },
        ..Default::default()
    };
    let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    println!("\nround  avg-device-acc  global-acc  upload-KiB");
    sim.run_with(|m| {
        println!(
            "{:>5}  {:>14.1}%  {:>9.1}%  {:>10.1}",
            m.round,
            100.0 * m.avg_device_accuracy,
            100.0 * m.global_accuracy.unwrap_or(0.0),
            m.upload_bytes as f64 / 1024.0
        );
    });
    sim.log().write_artifacts("target/examples", "quickstart").expect("write artifacts");
    println!("\nartifacts: target/examples/quickstart.{{csv,json}}");
}
