//! Quickstart: the smallest complete FedZKT run, driven entirely by a
//! declarative scenario.
//!
//! Five devices with five *different* architectures learn a shared task
//! from an MNIST-like synthetic dataset, with zero-shot knowledge transfer
//! at the server — no public data, no pre-trained generator. The whole
//! experiment is the `quickstart` entry of the scenario registry (also
//! checked in as `scenarios/quickstart.json`); this example just runs it
//! and narrates.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedzkt::nn::param_count;
use fedzkt::scenario::preset;

fn main() {
    // The experiment is data: dataset, partition, zoo, algorithm, protocol.
    let scenario = preset("quickstart").expect("registry preset");
    println!(
        "scenario \"{}\": {} on {} ({} devices, {} rounds)\n",
        scenario.name,
        scenario.algorithm.name(),
        scenario.data.family.name(),
        scenario.devices(),
        scenario.sim.rounds
    );

    // Every device picks its own architecture — the core premise.
    let channels = scenario.data.family.channels();
    let classes = scenario.data.effective_classes();
    for (i, spec) in scenario.device_specs().iter().enumerate() {
        let params = param_count(spec.build(channels, classes, scenario.data.img, 0).as_ref());
        println!("device {i}: {:<18} ({params} parameters)", spec.name());
    }

    // Run it through the erased runner, observing every round.
    println!("\nround  avg-device-acc  global-acc  upload-KiB");
    let log = scenario
        .run_with(&mut |m| {
            println!(
                "{:>5}  {:>14.1}%  {:>9.1}%  {:>10.1}",
                m.round,
                100.0 * m.avg_device_accuracy,
                100.0 * m.global_accuracy.unwrap_or(0.0),
                m.upload_bytes as f64 / 1024.0
            );
        })
        .expect("runnable scenario");
    log.write_artifacts("target/examples", "quickstart").expect("write artifacts");
    println!("\nartifacts: target/examples/quickstart.{{csv,json}}");
    println!("same run from the CLI: cargo run -p fedzkt_scenario --bin scenarios -- run quickstart");
}
