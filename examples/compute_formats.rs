//! One federation, two compute formats.
//!
//! Runs the `tiny` preset (a seconds-scale FedZKT smoke federation) once
//! per inference compute format and prints what int8 does to accuracy
//! and wall time. The format only touches the tape-free forward passes —
//! driver evaluation and the distillation game's teacher scoring — so
//! every gradient step is still f32 and the run stays bit-identical
//! across thread counts either way. The accuracy column is a real
//! measurement: under int8 the teacher logits the students distill from
//! are genuinely quantized, not replayed.
//!
//! ```sh
//! cargo run --release --example compute_formats
//! ```

use fedzkt::fl::ComputeFormat;
use fedzkt::scenario::preset;
use std::time::Instant;

fn main() {
    let base = preset("tiny").expect("registry preset");

    println!("compute   final-acc   best-acc   wall-s");
    for compute in [ComputeFormat::F32, ComputeFormat::Int8] {
        let mut scenario = base.clone();
        scenario.sim.compute = compute;
        let start = Instant::now();
        let log = scenario.run().expect("runnable scenario");
        let wall = start.elapsed().as_secs_f64();
        println!(
            "{:<7}   {:>8.2}%   {:>7.2}%   {:>6.2}",
            compute.as_str(),
            100.0 * log.final_accuracy(),
            100.0 * log.best_accuracy(),
            wall
        );
    }
    println!("\ngradient steps always run f32; int8 covers only tape-free inference");
}
