//! The SL-loss story (§III-B2, Figure 2): track ‖∇ₓL‖ for the three
//! candidate disagreement losses during a FedZKT run and watch the
//! KL gradient vanish while the logit-ℓ1 gradient stays large.
//!
//! ```sh
//! cargo run --release --example loss_comparison
//! ```

use fedzkt::core::{FedZkt, FedZktConfig};
use fedzkt::data::{DataFamily, Partition, SynthConfig};
use fedzkt::fl::{SimConfig, Simulation};
use fedzkt::models::{GeneratorSpec, ModelSpec};

fn main() {
    let devices = 5;
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 12,
        train_n: 600,
        test_n: 300,
        seed: 9,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid
        .split(train.labels(), train.num_classes(), devices, 9)
        .expect("partition");
    let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), devices);
    let sim_cfg = SimConfig { rounds: 8, seed: 9, ..Default::default() };
    let cfg = FedZktConfig {
        local_epochs: 2,
        distill_iters: 16,
        transfer_iters: 16,
        device_lr: 0.05,
        probe_grad_norms: true,
        generator: GeneratorSpec { z_dim: 32, ngf: 8 },
        global_model: ModelSpec::SmallCnn { base_channels: 8 },
        ..Default::default()
    };
    let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
    let mut sim = Simulation::builder(fed, test, sim_cfg).build();
    sim.run();

    println!("round  ||grad_x KL||  ||grad_x l1||  ||grad_x SL||");
    for r in sim.algorithm().probe().records() {
        println!("{:>5}  {:>13.5}  {:>13.5}  {:>13.5}", r.round, r.kl, r.logit_l1, r.sl);
    }
    let last = sim.algorithm().probe().records().last().expect("records");
    println!(
        "\nlate-round ordering (Hypotheses 1-2):  KL {:.5} <= SL {:.5} <= l1 {:.5} : {}",
        last.kl,
        last.sl,
        last.logit_l1,
        if last.kl <= last.sl * 1.5 && last.sl <= last.logit_l1 * 1.5 { "holds" } else { "inspect" }
    );
    sim.log().write_artifacts("target/examples", "loss_comparison").expect("write artifacts");
    println!("\nartifacts: target/examples/loss_comparison.{{csv,json}}");
}
