//! The SL-loss story (§III-B2, Figure 2): track ‖∇ₓL‖ for the three
//! candidate disagreement losses during a FedZKT run and watch the
//! KL gradient vanish while the logit-ℓ1 gradient stays large.
//!
//! The run is a standard scenario with one switch flipped
//! (`probe_grad_norms`); the probe itself is FedZKT-specific state, reached
//! by downcasting the erased runner back to `Simulation<FedZkt>`.
//!
//! ```sh
//! cargo run --release --example loss_comparison
//! ```

use fedzkt::core::FedZkt;
use fedzkt::data::{DataFamily, Partition};
use fedzkt::fl::Simulation;
use fedzkt::scenario::{Scenario, Tier};

fn main() {
    let mut scenario = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 9);
    scenario.sim.rounds = 8;
    scenario.fedzkt_cfg_mut().expect("standard scenarios run fedzkt").probe_grad_norms = true;

    let mut sim = scenario.build().expect("buildable scenario");
    sim.run();
    // The erased runner keeps the typed simulation reachable underneath.
    let typed = sim
        .as_any()
        .downcast_ref::<Simulation<FedZkt>>()
        .expect("fedzkt scenario");

    println!("round  ||grad_x KL||  ||grad_x l1||  ||grad_x SL||");
    for r in typed.algorithm().probe().records() {
        println!("{:>5}  {:>13.5}  {:>13.5}  {:>13.5}", r.round, r.kl, r.logit_l1, r.sl);
    }
    let last = typed.algorithm().probe().records().last().expect("records");
    println!(
        "\nlate-round ordering (Hypotheses 1-2):  KL {:.5} <= SL {:.5} <= l1 {:.5} : {}",
        last.kl,
        last.sl,
        last.logit_l1,
        if last.kl <= last.sl * 1.5 && last.sl <= last.logit_l1 * 1.5 { "holds" } else { "inspect" }
    );
    typed.log().write_artifacts("target/examples", "loss_comparison").expect("write artifacts");
    println!("\nartifacts: target/examples/loss_comparison.{{csv,json}}");
}
