//! # fedzkt
//!
//! A from-scratch Rust reproduction of **FedZKT: Zero-Shot Knowledge
//! Transfer towards Resource-Constrained Federated Learning with
//! Heterogeneous On-Device Models** (Zhang, Wu & Yuan, ICDCS 2022,
//! arXiv:2109.03775).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense f32 NCHW tensors, GEMM, im2col, init, RNG;
//! * [`autograd`] — reverse-mode autodiff and the distillation losses
//!   (KL / logit-ℓ1 / **SL**);
//! * [`nn`] — layers, optimizers, schedules, state dicts;
//! * [`models`] — the heterogeneous on-device model zoo + generator;
//! * [`data`] — synthetic dataset families and non-IID partitioners;
//! * [`fl`] — the generic `Simulation` driver + `FederatedAlgorithm`
//!   trait, simulation substrate, FedAvg/FedProx;
//! * [`core`] — FedZKT itself (Algorithms 1–3), FedMD, bounds, probes.
//!
//! See `examples/` for runnable entry points and `crates/bench/src/bin/`
//! for the per-table/figure experiment harness.
//!
//! ```no_run
//! use fedzkt::core::{FedZkt, FedZktConfig};
//! use fedzkt::data::{DataFamily, Partition, SynthConfig};
//! use fedzkt::fl::{SimConfig, Simulation};
//! use fedzkt::models::ModelSpec;
//!
//! let (train, test) = SynthConfig { family: DataFamily::MnistLike, ..Default::default() }.generate();
//! let shards = Partition::Iid.split(train.labels(), train.num_classes(), 5, 1).unwrap();
//! let zoo = ModelSpec::assign_round_robin(&ModelSpec::paper_zoo_small(), 5);
//! let sim_cfg = SimConfig::default();
//! let fed = FedZkt::new(&zoo, &train, &shards, FedZktConfig::default(), &sim_cfg);
//! let mut sim = Simulation::builder(fed, test, sim_cfg).build();
//! println!("final accuracy: {:.3}", sim.run().final_accuracy());
//! ```

#![warn(missing_docs)]

pub use fedzkt_autograd as autograd;
pub use fedzkt_core as core;
pub use fedzkt_data as data;
pub use fedzkt_fl as fl;
pub use fedzkt_models as models;
pub use fedzkt_nn as nn;
pub use fedzkt_tensor as tensor;
