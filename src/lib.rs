//! # fedzkt
//!
//! A from-scratch Rust reproduction of **FedZKT: Zero-Shot Knowledge
//! Transfer towards Resource-Constrained Federated Learning with
//! Heterogeneous On-Device Models** (Zhang, Wu & Yuan, ICDCS 2022,
//! arXiv:2109.03775).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense f32 NCHW tensors, GEMM, im2col, init, RNG;
//! * [`autograd`] — reverse-mode autodiff and the distillation losses
//!   (KL / logit-ℓ1 / **SL**);
//! * [`nn`] — layers, optimizers, schedules, state dicts;
//! * [`models`] — the heterogeneous on-device model zoo + generator;
//! * [`data`] — synthetic dataset families and non-IID partitioners;
//! * [`fl`] — the generic `Simulation` driver + `FederatedAlgorithm`
//!   trait, simulation substrate, FedAvg/FedProx, and the
//!   knowledge-transfer additions Fed-ET and FedGKT;
//! * [`core`] — FedZKT itself (Algorithms 1–3), FedMD, bounds, probes;
//! * [`scenario`] — the declarative experiment layer: one serializable
//!   `Scenario` per experiment, a named preset registry, and the erased
//!   runner behind the `scenarios` CLI.
//!
//! See `examples/` for runnable entry points, `scenarios/*.json` for the
//! checked-in experiment descriptions, and `crates/bench/src/bin/` for the
//! per-table/figure experiment harness.
//!
//! ```no_run
//! use fedzkt::scenario::preset;
//!
//! let scenario = preset("quickstart").unwrap();
//! let log = scenario.run().unwrap();
//! println!("final accuracy: {:.3}", log.final_accuracy());
//! ```

#![warn(missing_docs)]

pub use fedzkt_autograd as autograd;
pub use fedzkt_core as core;
pub use fedzkt_data as data;
pub use fedzkt_fl as fl;
pub use fedzkt_models as models;
pub use fedzkt_nn as nn;
pub use fedzkt_scenario as scenario;
pub use fedzkt_tensor as tensor;
