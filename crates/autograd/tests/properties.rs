//! Property-based tests on autodiff invariants.

use fedzkt_autograd::loss::{cross_entropy, kl_div_probs, mean_vars};
use fedzkt_autograd::{DistillLoss, Var};
use fedzkt_tensor::{seeded_rng, Tensor};
use proptest::prelude::*;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape, &mut seeded_rng(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Linearity of the tape: d/dx [a·f + b·g] = a·f' + b·g'.
    #[test]
    fn backward_is_linear(seed in 0u64..300, a in -2.0f32..2.0, b in -2.0f32..2.0) {
        let x0 = randn(&[6], seed);
        let grad_of = |build: &dyn Fn(&Var) -> Var| -> Tensor {
            let x = Var::parameter(x0.clone());
            build(&x).backward();
            x.grad().unwrap()
        };
        let gf = grad_of(&|x| x.square().sum_all());
        let gg = grad_of(&|x| x.tanh().sum_all());
        let gsum = grad_of(&|x| {
            x.square().sum_all().scale(a).add(&x.tanh().sum_all().scale(b))
        });
        for i in 0..6 {
            let expected = a * gf.data()[i] + b * gg.data()[i];
            prop_assert!((gsum.data()[i] - expected).abs() < 1e-3,
                "{} vs {}", gsum.data()[i], expected);
        }
    }

    /// Gradient accumulation: running backward twice doubles leaf grads.
    #[test]
    fn double_backward_doubles_leaf_grads(seed in 0u64..300) {
        let x = Var::parameter(randn(&[5], seed));
        let y = x.square().sum_all();
        y.backward();
        let g1 = x.grad().unwrap();
        y.backward();
        let g2 = x.grad().unwrap();
        for i in 0..5 {
            prop_assert!((g2.data()[i] - 2.0 * g1.data()[i]).abs() < 1e-5);
        }
    }

    /// softmax output of any logits is a probability distribution, and the
    /// gradient of its sum is ~0 (it maps onto the simplex).
    #[test]
    fn softmax_simplex_invariant(seed in 0u64..300, n in 1usize..5, k in 2usize..8) {
        let x = Var::parameter(randn(&[n, k], seed));
        let s = x.softmax();
        let v = s.value_clone();
        for row in 0..n {
            let sum: f32 = v.data()[row * k..(row + 1) * k].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
        s.sum_all().backward();
        let g = x.grad().unwrap();
        prop_assert!(g.data().iter().all(|gi| gi.abs() < 1e-4));
    }

    /// Cross-entropy is minimised at the one-hot target: loss of extreme
    /// correct logits < loss of anything else on the same labels.
    #[test]
    fn cross_entropy_prefers_correct_logits(seed in 0u64..300, k in 2usize..6) {
        let labels = vec![seed as usize % k];
        let mut onehot = vec![-10.0f32; k];
        onehot[labels[0]] = 10.0;
        let good = Var::constant(Tensor::from_vec(onehot, &[1, k]).unwrap());
        let other = Var::constant(randn(&[1, k], seed));
        let lg = cross_entropy(&good, &labels).value().item();
        let lo = cross_entropy(&other, &labels).value().item();
        prop_assert!(lg <= lo + 1e-5, "{lg} vs {lo}");
    }

    /// KL(p ‖ p) = 0 and KL(p ‖ q) ≥ 0.
    #[test]
    fn kl_gibbs_inequality(seed in 0u64..300, k in 2usize..7) {
        let p = Var::constant(randn(&[2, k], seed)).softmax();
        let q = Var::constant(randn(&[2, k], seed + 1)).softmax();
        prop_assert!(kl_div_probs(&p, &p).value().item().abs() < 1e-4);
        prop_assert!(kl_div_probs(&p, &q).value().item() > -1e-4);
    }

    /// The SL loss is bounded by 2 (ℓ1 distance of two distributions) and
    /// symmetric under argument exchange.
    #[test]
    fn sl_loss_bounded_and_symmetric(seed in 0u64..300, n in 1usize..4, k in 2usize..6) {
        let a = Var::constant(randn(&[n, k], seed));
        let b = Var::constant(randn(&[n, k], seed + 7));
        let ab = DistillLoss::Sl.eval(&a, &[&b]).value().item();
        let ba = DistillLoss::Sl.eval(&b, &[&a]).value().item();
        prop_assert!((0.0..=2.0 + 1e-5).contains(&ab), "{ab}");
        prop_assert!((ab - ba).abs() < 1e-5);
    }

    /// mean_vars really is the arithmetic mean.
    #[test]
    fn mean_vars_matches_manual(seed in 0u64..300, k in 1usize..5) {
        let tensors: Vec<Tensor> = (0..k).map(|i| randn(&[4], seed + i as u64)).collect();
        let vars: Vec<Var> = tensors.iter().map(|t| Var::constant(t.clone())).collect();
        let refs: Vec<&Var> = vars.iter().collect();
        let mean = mean_vars(&refs).value_clone();
        for i in 0..4 {
            let manual: f32 =
                tensors.iter().map(|t| t.data()[i]).sum::<f32>() / k as f32;
            prop_assert!((mean.data()[i] - manual).abs() < 1e-5);
        }
    }

    /// detach() zeroes exactly the detached path's contribution.
    #[test]
    fn detach_partitions_gradient(seed in 0u64..300) {
        let x0 = randn(&[4], seed).map(|v| v + 3.0); // keep positive
        // y = x^2 + c*x with c = detach(x): grad = 2x + c = 3x.
        let x = Var::parameter(x0.clone());
        let y = x.square().add(&x.detach().mul(&x)).sum_all();
        y.backward();
        let g = x.grad().unwrap();
        for i in 0..4 {
            prop_assert!((g.data()[i] - 3.0 * x0.data()[i]).abs() < 1e-4);
        }
    }

    /// Every distillation loss is non-negative and zero against itself.
    #[test]
    fn distill_losses_are_divergences(seed in 0u64..300) {
        let logits = randn(&[3, 5], seed);
        for kind in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
            let s = Var::constant(logits.clone());
            let same = kind.eval(&s, &[&Var::constant(logits.clone())]).value().item();
            prop_assert!(same.abs() < 1e-4, "{kind}: self-distance {same}");
            let other = Var::constant(randn(&[3, 5], seed + 13));
            let cross = kind.eval(&s, &[&other]).value().item();
            prop_assert!(cross > -1e-5, "{kind}: negative divergence {cross}");
        }
    }
}
