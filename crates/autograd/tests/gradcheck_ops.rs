//! Finite-difference validation of every differentiable op against its
//! analytic backward pass. This is the correctness bedrock of the whole
//! reproduction: if these pass, training dynamics match the math in the
//! paper up to floating-point error.

use fedzkt_autograd::loss::{cross_entropy, kl_div_probs, l2_penalty, mse};
use fedzkt_autograd::{check_gradients, DistillLoss, Var};
use fedzkt_tensor::{seeded_rng, Tensor};

fn randn(shape: &[usize], seed: u64) -> Tensor {
    Tensor::randn(shape, &mut seeded_rng(seed))
}

#[test]
fn grad_add_sub_mul() {
    let x = randn(&[2, 3], 1);
    let other = randn(&[2, 3], 2);
    check_gradients(
        "add",
        |v| v.add(&Var::constant(other.clone())).sum_all(),
        &x,
        1e-2,
    );
    check_gradients(
        "sub",
        |v| Var::constant(other.clone()).sub(v).square().sum_all(),
        &x,
        1e-2,
    );
    check_gradients(
        "mul",
        |v| v.mul(&Var::constant(other.clone())).sum_all(),
        &x,
        1e-2,
    );
    check_gradients("mul_self", |v| v.mul(v).sum_all(), &x, 1e-2);
}

#[test]
fn grad_scale_abs_square_exp_ln() {
    // Keep |x| away from 0 so abs is differentiable at every probe point.
    let x = randn(&[7], 3).map(|v| v.signum() * (v.abs() + 0.5));
    check_gradients("scale", |v| v.scale(-2.5).sum_all(), &x, 1e-2);
    check_gradients("abs", |v| v.abs().sum_all(), &x, 1e-2);
    check_gradients("square", |v| v.square().sum_all(), &x, 1e-2);
    check_gradients("exp", |v| v.exp().sum_all(), &x, 1e-2);
    let pos = x.map(|v| v.abs() + 0.5);
    check_gradients("ln_eps", |v| v.ln_eps(1e-6).sum_all(), &pos, 1e-2);
}

#[test]
fn grad_activations() {
    // Offsets keep probe points away from the ReLU kinks.
    let x = randn(&[2, 5], 4).map(|v| v * 2.0 + 0.13);
    check_gradients("relu", |v| v.relu().square().sum_all(), &x, 1e-2);
    check_gradients("leaky_relu", |v| v.leaky_relu(0.2).square().sum_all(), &x, 1e-2);
    check_gradients("relu6", |v| v.relu6().square().sum_all(), &x, 1e-2);
    check_gradients("tanh", |v| v.tanh().sum_all(), &x, 1e-2);
    check_gradients("sigmoid", |v| v.sigmoid().sum_all(), &x, 1e-2);
}

#[test]
fn grad_softmax_and_log_softmax() {
    let x = randn(&[3, 4], 5);
    let w = randn(&[3, 4], 6);
    check_gradients(
        "softmax",
        |v| v.softmax().mul(&Var::constant(w.clone())).sum_all(),
        &x,
        1.5e-2,
    );
    check_gradients(
        "log_softmax",
        |v| v.log_softmax().mul(&Var::constant(w.clone())).sum_all(),
        &x,
        1.5e-2,
    );
}

#[test]
fn grad_matmul_and_linear() {
    let x = randn(&[3, 4], 7);
    let w = randn(&[2, 4], 8);
    let b = randn(&[2], 9);
    check_gradients(
        "matmul_lhs",
        |v| v.matmul(&Var::constant(w.clone().transpose2d().unwrap())).sum_all(),
        &x,
        1e-2,
    );
    check_gradients(
        "matmul_rhs",
        |v| Var::constant(x.clone()).matmul(&v.reshape(&[4, 2])).square().sum_all(),
        &randn(&[8], 10),
        1e-2,
    );
    check_gradients(
        "linear_weight",
        |v| {
            Var::constant(x.clone())
                .linear(&v.reshape(&[2, 4]), Some(&Var::constant(b.clone())))
                .square()
                .sum_all()
        },
        &randn(&[8], 11),
        1e-2,
    );
    check_gradients(
        "linear_bias",
        |v| {
            Var::constant(x.clone())
                .linear(&Var::constant(w.clone()), Some(v))
                .square()
                .sum_all()
        },
        &b,
        1e-2,
    );
}

#[test]
fn grad_conv2d_input_and_weight() {
    let x = randn(&[2, 2, 5, 5], 12);
    let w = randn(&[3, 2, 3, 3], 13).mul_scalar(0.5);
    check_gradients(
        "conv2d_input",
        |v| v.conv2d(&Var::constant(w.clone()), 1, 1, 1).square().sum_all(),
        &x,
        2e-2,
    );
    check_gradients(
        "conv2d_weight",
        |v| {
            Var::constant(x.clone())
                .conv2d(&v.reshape(&[3, 2, 3, 3]), 2, 1, 1)
                .square()
                .sum_all()
        },
        &w.reshape(&[54]).unwrap(),
        2e-2,
    );
}

#[test]
fn grad_conv2d_grouped_depthwise() {
    let x = randn(&[1, 4, 4, 4], 14);
    let wg = randn(&[4, 2, 3, 3], 15).mul_scalar(0.5);
    check_gradients(
        "grouped_conv_input",
        |v| v.conv2d(&Var::constant(wg.clone()), 1, 1, 2).square().sum_all(),
        &x,
        2e-2,
    );
    let wd = randn(&[4, 1, 3, 3], 16).mul_scalar(0.5);
    check_gradients(
        "depthwise_conv_weight",
        |v| {
            Var::constant(x.clone())
                .conv2d(&v.reshape(&[4, 1, 3, 3]), 1, 1, 4)
                .square()
                .sum_all()
        },
        &wd.reshape(&[36]).unwrap(),
        2e-2,
    );
}

#[test]
fn grad_channel_bias() {
    let x = randn(&[2, 3, 3, 3], 17);
    let b = randn(&[3], 18);
    check_gradients(
        "channel_bias_input",
        |v| v.add_channel_bias(&Var::constant(b.clone())).square().sum_all(),
        &x,
        1e-2,
    );
    check_gradients(
        "channel_bias_bias",
        |v| Var::constant(x.clone()).add_channel_bias(v).square().sum_all(),
        &b,
        1e-2,
    );
}

#[test]
fn grad_batch_norm_train() {
    let x = randn(&[3, 2, 3, 3], 19);
    let gamma = randn(&[2], 20).map(|v| v.abs() + 0.5);
    let beta = randn(&[2], 21);
    check_gradients(
        "bn_train_input",
        |v| {
            let (y, _, _) = v.batch_norm2d_train(
                &Var::constant(gamma.clone()),
                &Var::constant(beta.clone()),
                1e-3,
            );
            y.square().sum_all()
        },
        &x,
        3e-2,
    );
    check_gradients(
        "bn_train_gamma",
        |v| {
            let (y, _, _) =
                Var::constant(x.clone()).batch_norm2d_train(v, &Var::constant(beta.clone()), 1e-3);
            y.square().sum_all()
        },
        &gamma,
        3e-2,
    );
    check_gradients(
        "bn_train_beta",
        |v| {
            let (y, _, _) = Var::constant(x.clone()).batch_norm2d_train(
                &Var::constant(gamma.clone()),
                v,
                1e-3,
            );
            y.square().sum_all()
        },
        &beta,
        2e-2,
    );
}

#[test]
fn grad_batch_norm_eval() {
    let x = randn(&[2, 2, 3, 3], 22);
    let gamma = Tensor::ones(&[2]);
    let beta = Tensor::zeros(&[2]);
    let rm = randn(&[2], 23);
    let rv = randn(&[2], 24).map(|v| v.abs() + 0.5);
    check_gradients(
        "bn_eval_input",
        |v| {
            v.batch_norm2d_eval(
                &Var::constant(gamma.clone()),
                &Var::constant(beta.clone()),
                &rm,
                &rv,
                1e-3,
            )
            .square()
            .sum_all()
        },
        &x,
        2e-2,
    );
}

#[test]
fn grad_pooling_and_upsample() {
    let x = randn(&[2, 2, 4, 4], 25);
    check_gradients("avg_pool", |v| v.avg_pool2d(2, 2).square().sum_all(), &x, 1e-2);
    check_gradients("global_avg_pool", |v| v.global_avg_pool().square().sum_all(), &x, 1e-2);
    check_gradients("upsample", |v| v.upsample_nearest2d(2).square().sum_all(), &x, 1e-2);
    // Max pool: spread values so the argmax is stable under probing.
    let spread = Tensor::from_vec(
        (0..32).map(|i| (i as f32) * 0.7 - 9.0).collect(),
        &[1, 2, 4, 4],
    )
    .unwrap();
    check_gradients("max_pool", |v| v.max_pool2d(2, 2).square().sum_all(), &spread, 1e-2);
}

#[test]
fn grad_shape_ops() {
    let x = randn(&[2, 4, 2, 2], 26);
    check_gradients("reshape", |v| v.reshape(&[2, 16]).square().sum_all(), &x, 1e-2);
    check_gradients(
        "narrow_channels",
        |v| v.narrow_channels(1, 2).square().sum_all(),
        &x,
        1e-2,
    );
    check_gradients(
        "channel_shuffle",
        |v| v.channel_shuffle(2).square().mul(&Var::constant(randn(&[2, 4, 2, 2], 27))).sum_all(),
        &x,
        1e-2,
    );
    let other = randn(&[2, 2, 2, 2], 28);
    check_gradients(
        "concat_channels",
        |v| {
            Var::concat_channels(&[v, &Var::constant(other.clone())])
                .square()
                .sum_all()
        },
        &x,
        1e-2,
    );
}

#[test]
fn grad_losses() {
    let logits = randn(&[3, 4], 29);
    check_gradients(
        "cross_entropy",
        |v| cross_entropy(v, &[0, 2, 3]),
        &logits,
        1.5e-2,
    );
    let target = randn(&[3, 4], 30);
    check_gradients(
        "mse",
        |v| mse(v, &Var::constant(target.clone())),
        &logits,
        1e-2,
    );
    check_gradients(
        "kl_div_probs",
        |v| kl_div_probs(&v.softmax(), &Var::constant(target.clone()).softmax()),
        &logits,
        2e-2,
    );
    check_gradients(
        "l2_penalty",
        |v| l2_penalty(std::slice::from_ref(v), std::slice::from_ref(&target)),
        &logits,
        1e-2,
    );
}

#[test]
fn grad_distill_losses_wrt_student_and_teacher() {
    let student = randn(&[2, 5], 31);
    let teacher_a = randn(&[2, 5], 32);
    let teacher_b = randn(&[2, 5], 33);
    for kind in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
        check_gradients(
            &format!("{kind:?} wrt student"),
            |v| kind.eval(v, &[&Var::constant(teacher_a.clone()), &Var::constant(teacher_b.clone())]),
            &student,
            2e-2,
        );
        check_gradients(
            &format!("{kind:?} wrt teacher"),
            |v| kind.eval(&Var::constant(student.clone()), &[v, &Var::constant(teacher_b.clone())]),
            &teacher_a,
            2e-2,
        );
    }
}

/// The composite that actually runs in FedZKT's server update: gradient of
/// the disagreement loss with respect to the *input batch*, through both
/// the student and every teacher (this is `∇ₓ L`, the quantity plotted in
/// Figure 2 and maximised by the generator).
#[test]
fn grad_disagreement_wrt_input_through_two_networks() {
    let x = randn(&[2, 6], 34);
    let w_student = randn(&[4, 6], 35);
    let w_teacher = randn(&[4, 6], 36);
    for kind in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
        check_gradients(
            &format!("{kind:?} wrt input"),
            |v| {
                let s = v.linear(&Var::constant(w_student.clone()), None);
                let t = v.linear(&Var::constant(w_teacher.clone()), None);
                kind.eval(&s, &[&t])
            },
            &x,
            2e-2,
        );
    }
}
