//! # fedzkt-autograd
//!
//! Define-by-run reverse-mode automatic differentiation over
//! [`fedzkt_tensor::Tensor`].
//!
//! Every operation on a [`Var`] records a node on an implicit tape (an
//! `Rc`-linked DAG); [`Var::backward`] walks the DAG in reverse topological
//! order and accumulates gradients into every node that
//! [requires gradients](Var::requires_grad), including *input* variables —
//! a property the FedZKT reproduction depends on twice:
//!
//! 1. the server's adversarial generator update needs `∂L/∂θ` through the
//!    student **and** the teacher ensemble back into the synthetic batch
//!    `x = G(z)` (Eq. 2 of the paper), and
//! 2. the Figure-2 probe reports `‖∇ₓ L‖` for the three candidate
//!    disagreement losses (KL, logit-ℓ1, softmax-ℓ1).
//!
//! The op set is exactly what the paper's models need: dense and
//! convolutional layers (with groups/depthwise), batch normalisation,
//! pooling, nearest upsampling (generator), the usual activations, softmax,
//! and the distillation losses from §III-B2.
//!
//! ## Example
//!
//! ```
//! use fedzkt_autograd::Var;
//! use fedzkt_tensor::Tensor;
//!
//! let x = Var::parameter(Tensor::from_vec(vec![2.0], &[1, 1]).unwrap());
//! let y = x.mul(&x).sum_all(); // y = x^2
//! y.backward();
//! assert_eq!(x.grad().unwrap().data(), &[4.0]); // dy/dx = 2x = 4
//! ```

#![warn(missing_docs)]

mod gradcheck;
pub mod loss;
mod ops;
mod var;

pub use gradcheck::{check_gradients, finite_difference};
pub use loss::DistillLoss;
pub use var::{no_grad, Var};
