//! Finite-difference gradient checking.
//!
//! Exposed publicly (not just `#[cfg(test)]`) so downstream crates — layers
//! in `fedzkt-nn`, whole models in `fedzkt-models` — can validate their own
//! gradients in their test suites.

use crate::Var;
use fedzkt_tensor::Tensor;

/// Central finite-difference gradient of a scalar function at `x`.
///
/// Evaluates `f` twice per element, so keep `x` small (tests use ≤ a few
/// hundred elements).
pub fn finite_difference(mut f: impl FnMut(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x.shape());
    let mut probe = x.clone();
    for i in 0..x.len() {
        let orig = probe.data()[i];
        probe.data_mut()[i] = orig + eps;
        let plus = f(&probe);
        probe.data_mut()[i] = orig - eps;
        let minus = f(&probe);
        probe.data_mut()[i] = orig;
        grad.data_mut()[i] = (plus - minus) / (2.0 * eps);
    }
    grad
}

/// Check the analytic gradient of `build` (a scalar-valued graph of one
/// input) against central finite differences at `x`.
///
/// `build` is called many times and must be deterministic. The comparison
/// uses a mixed absolute/relative tolerance.
///
/// # Panics
/// Panics (with the offending index and values) when any component
/// disagrees — intended for use inside tests.
pub fn check_gradients(name: &str, build: impl Fn(&Var) -> Var, x: &Tensor, tol: f32) {
    let input = Var::parameter(x.clone());
    let out = build(&input);
    assert_eq!(out.shape(), Vec::<usize>::new(), "{name}: gradcheck output must be scalar");
    out.backward();
    let analytic = input
        .grad()
        .unwrap_or_else(|| panic!("{name}: no gradient reached the input"));

    let numeric = finite_difference(
        |probe| {
            let v = Var::parameter(probe.clone());
            build(&v).value().item()
        },
        x,
        1e-2,
    );

    for i in 0..x.len() {
        let (a, n) = (analytic.data()[i], numeric.data()[i]);
        let denom = 1.0f32.max(a.abs()).max(n.abs());
        assert!(
            (a - n).abs() / denom <= tol,
            "{name}: gradient mismatch at {i}: analytic {a} vs numeric {n}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_difference_of_quadratic() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        let g = finite_difference(|t| t.data().iter().map(|v| v * v).sum(), &x, 1e-3);
        for (gi, xi) in g.data().iter().zip(x.data()) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }

    #[test]
    fn check_gradients_accepts_correct_op() {
        let x = Tensor::from_vec(vec![0.5, -0.3, 1.2], &[3]).unwrap();
        check_gradients("square", |v| v.square().sum_all(), &x, 1e-2);
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn check_gradients_rejects_wrong_gradient() {
        // `detach` hides the true dependency, so the analytic grad is a
        // constant 1 while the numeric grad is 2x — must be caught.
        let x = Tensor::from_vec(vec![2.0], &[1]).unwrap();
        check_gradients("broken", |v| v.detach().mul(v).sum_all(), &x, 1e-3);
    }
}
