//! The [`Var`] type: a node in the autodiff DAG.

use fedzkt_tensor::Tensor;
use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static NO_GRAD_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Run `f` with gradient recording disabled on this thread.
///
/// Inside the closure every op produces constants: no tape nodes are
/// allocated, which makes evaluation passes (test-set accuracy, teacher
/// forward passes during the global-model update) cheap.
///
/// Nesting is supported; recording resumes when the outermost guard exits,
/// even if `f` panics.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            NO_GRAD_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    NO_GRAD_DEPTH.with(|d| d.set(d.get() + 1));
    let _guard = Guard;
    f()
}

fn grad_enabled() -> bool {
    NO_GRAD_DEPTH.with(|d| d.get()) == 0
}

/// Gradient function of a tape node: maps the node's output gradient to one
/// optional gradient per parent (in parent order). `None` marks parents whose
/// gradient the op did not compute (because they do not require it).
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Option<Tensor>>>;

pub(crate) struct VarInner {
    id: u64,
    value: RefCell<Tensor>,
    grad: RefCell<Option<Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward_fn: Option<BackwardFn>,
}

impl Drop for VarInner {
    /// Iterative teardown of the parent chain. A deep tape (tens of
    /// thousands of nodes) dropped naively would recurse through `Rc` drops
    /// and overflow the stack; instead we steal each uniquely-owned
    /// parent's list and drain a worklist.
    fn drop(&mut self) {
        let mut stack = std::mem::take(&mut self.parents);
        while let Some(var) = stack.pop() {
            let Var { inner } = var;
            if let Some(mut inner) = Rc::into_inner(inner) {
                stack.append(&mut inner.parents);
            }
        }
    }
}

/// A tensor-valued node in the reverse-mode autodiff DAG.
///
/// `Var` is a cheap handle (`Rc`); cloning shares the node. There are three
/// kinds of nodes:
///
/// * [`Var::constant`] — data that never receives a gradient (inputs,
///   labels, detached teacher outputs);
/// * [`Var::parameter`] — trainable leaves whose `.grad()` is filled in by
///   [`Var::backward`] and consumed by optimizers;
/// * op outputs — created by the methods in this crate, which record how to
///   route gradients back to their parents.
#[derive(Clone)]
pub struct Var {
    inner: Rc<VarInner>,
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.inner.id)
            .field("shape", &self.shape())
            .field("requires_grad", &self.inner.requires_grad)
            .finish()
    }
}

impl Var {
    /// A constant node: participates in computation but never accumulates a
    /// gradient and stops backward traversal.
    pub fn constant(value: Tensor) -> Var {
        Var::new(value, false, Vec::new(), None)
    }

    /// A trainable leaf. After [`Var::backward`], its gradient is available
    /// through [`Var::grad`].
    pub fn parameter(value: Tensor) -> Var {
        Var::new(value, true, Vec::new(), None)
    }

    pub(crate) fn new(
        value: Tensor,
        requires_grad: bool,
        parents: Vec<Var>,
        backward_fn: Option<BackwardFn>,
    ) -> Var {
        Var {
            inner: Rc::new(VarInner {
                id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
                value: RefCell::new(value),
                grad: RefCell::new(None),
                requires_grad,
                parents,
                backward_fn,
            }),
        }
    }

    /// Create an op-output node. Falls back to a constant when gradients are
    /// globally disabled ([`no_grad`]) or no parent requires them, so dead
    /// tape is never allocated.
    pub(crate) fn from_op(
        value: Tensor,
        parents: Vec<Var>,
        backward_fn: impl Fn(&Tensor) -> Vec<Option<Tensor>> + 'static,
    ) -> Var {
        if !grad_enabled() || !parents.iter().any(|p| p.inner.requires_grad) {
            return Var::constant(value);
        }
        Var::new(value, true, parents, Some(Box::new(backward_fn)))
    }

    /// Stable identity of this node (used as a key by optimizers).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Whether gradients flow into this node.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad
    }

    /// Borrow the node's value.
    ///
    /// # Panics
    /// Panics if the value is already mutably borrowed (only possible via
    /// [`Var::set_value`] re-entrancy, which no public API does).
    pub fn value(&self) -> Ref<'_, Tensor> {
        self.inner.value.borrow()
    }

    /// Clone the node's value out of the tape.
    pub fn value_clone(&self) -> Tensor {
        self.inner.value.borrow().clone()
    }

    /// Shape of the node's value.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.value.borrow().shape().to_vec()
    }

    /// Replace the value in place (optimizer step on a parameter).
    ///
    /// # Panics
    /// Panics when the new value's shape differs from the old one — a
    /// parameter's geometry is fixed at construction.
    pub fn set_value(&self, value: Tensor) {
        let mut slot = self.inner.value.borrow_mut();
        assert_eq!(
            slot.shape(),
            value.shape(),
            "set_value must preserve the parameter shape"
        );
        *slot = value;
    }

    /// The gradient accumulated by the last [`Var::backward`] call, if any.
    pub fn grad(&self) -> Option<Tensor> {
        self.inner.grad.borrow().clone()
    }

    /// Clear this node's accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// A constant copy of this node's value, cutting the tape.
    pub fn detach(&self) -> Var {
        Var::constant(self.value_clone())
    }

    /// Run reverse-mode differentiation from this node.
    ///
    /// Seeds the output gradient with ones (for the scalar losses used
    /// throughout the workspace this is the conventional `dL/dL = 1`) and
    /// accumulates gradients into every reachable node with
    /// `requires_grad == true`. Gradients *accumulate* across calls; use
    /// [`Var::zero_grad`] (or the optimizers' `zero_grad`) between steps.
    pub fn backward(&self) {
        let seed = Tensor::ones(&self.shape());
        self.backward_with(seed);
    }

    /// Run backward with an explicit output-gradient seed (used by tests and
    /// by probes that differentiate non-scalar outputs).
    ///
    /// # Panics
    /// Panics when `seed` does not match this node's shape.
    pub fn backward_with(&self, seed: Tensor) {
        assert_eq!(seed.shape(), self.shape().as_slice(), "backward seed shape mismatch");
        accumulate(&self.inner, seed);
        let order = topo_order(self);
        for var in order {
            let inner = &var.inner;
            let Some(backward_fn) = &inner.backward_fn else { continue };
            let grad = match inner.grad.borrow().clone() {
                Some(g) => g,
                None => continue,
            };
            let parent_grads = backward_fn(&grad);
            debug_assert_eq!(parent_grads.len(), inner.parents.len());
            for (parent, pg) in inner.parents.iter().zip(parent_grads) {
                if let Some(pg) = pg {
                    if parent.inner.requires_grad {
                        accumulate(&parent.inner, pg);
                    }
                }
            }
            // Intermediate gradients are consumed; only leaves accumulate
            // across backward calls (PyTorch semantics — optimizers read
            // leaf grads, probes read input-leaf grads).
            *inner.grad.borrow_mut() = None;
        }
    }
}

fn accumulate(inner: &VarInner, grad: Tensor) {
    let mut slot = inner.grad.borrow_mut();
    match slot.as_mut() {
        Some(existing) => {
            existing
                .add_scaled_inplace(&grad, 1.0)
                .expect("gradient shape mismatch during accumulation");
        }
        None => *slot = Some(grad),
    }
}

/// Reverse topological order (output first) over the grad-requiring subgraph.
fn topo_order(root: &Var) -> Vec<Var> {
    let mut order = Vec::new();
    let mut visited: HashSet<u64> = HashSet::new();
    // Iterative post-order DFS; deep nets would overflow a recursive walk.
    let mut stack: Vec<(Var, usize)> = vec![(root.clone(), 0)];
    while let Some((var, child_idx)) = stack.pop() {
        if child_idx == 0 {
            if visited.contains(&var.inner.id) {
                continue;
            }
            visited.insert(var.inner.id);
        }
        let parents = &var.inner.parents;
        if let Some(parent) = parents.get(child_idx) {
            let parent = parent.clone();
            stack.push((var, child_idx + 1));
            if !visited.contains(&parent.inner.id) && parent.inner.requires_grad {
                stack.push((parent, 0));
            }
        } else {
            order.push(var);
        }
    }
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::Tensor;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n]).unwrap()
    }

    #[test]
    fn constant_never_accumulates() {
        let c = Var::constant(t(vec![1.0, 2.0]));
        let p = Var::parameter(t(vec![3.0, 4.0]));
        let y = c.mul(&p).sum_all();
        y.backward();
        assert!(c.grad().is_none());
        assert_eq!(p.grad().unwrap().data(), &[1.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let p = Var::parameter(t(vec![1.0]));
        let y = p.scale(3.0).sum_all();
        y.backward();
        y.backward();
        assert_eq!(p.grad().unwrap().data(), &[6.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    fn diamond_graph_sums_paths() {
        // y = x*x + x*x: grad = 4x
        let x = Var::parameter(t(vec![3.0]));
        let a = x.mul(&x);
        let b = x.mul(&x);
        let y = a.add(&b).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[12.0]);
    }

    #[test]
    fn shared_subexpression_visits_once() {
        // y = (x+x) reused twice: s = x+x; y = s*s -> dy/dx = 2*s*2 = 8x
        let x = Var::parameter(t(vec![2.0]));
        let s = x.add(&x);
        let y = s.mul(&s).sum_all();
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[16.0]);
    }

    #[test]
    fn no_grad_builds_no_tape() {
        let p = Var::parameter(t(vec![1.0, 2.0]));
        let y = no_grad(|| p.scale(5.0));
        assert!(!y.requires_grad());
        // Backward on a constant is a no-op.
        y.sum_all().backward();
        assert!(p.grad().is_none());
    }

    #[test]
    fn no_grad_nests_and_restores() {
        let p = Var::parameter(t(vec![1.0]));
        no_grad(|| {
            no_grad(|| {
                assert!(!p.scale(1.0).requires_grad());
            });
            assert!(!p.scale(1.0).requires_grad());
        });
        assert!(p.scale(1.0).requires_grad());
    }

    #[test]
    fn detach_stops_gradient() {
        let x = Var::parameter(t(vec![2.0]));
        let y = x.mul(&x).detach().mul(&x).sum_all(); // treated as c*x with c=4
        y.backward();
        assert_eq!(x.grad().unwrap().data(), &[4.0]);
    }

    #[test]
    fn set_value_preserves_shape() {
        let p = Var::parameter(t(vec![1.0, 2.0]));
        p.set_value(t(vec![5.0, 6.0]));
        assert_eq!(p.value().data(), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_value_rejects_shape_change() {
        let p = Var::parameter(t(vec![1.0, 2.0]));
        p.set_value(Tensor::zeros(&[3]));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let x = Var::parameter(t(vec![1.0]));
        let mut y = x.clone();
        for _ in 0..20_000 {
            y = y.add_scalar(0.0);
        }
        let loss = y.sum_all();
        loss.backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0]);
    }
}
