//! Dense (fully connected) operations.

use crate::Var;
use fedzkt_tensor::typed::{self, Rows2D, RowsMut2D, View2D, ViewMut2D};
use fedzkt_tensor::Tensor;

impl Var {
    /// Matrix product `[M, K] x [K, N] -> [M, N]`.
    ///
    /// # Panics
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let value = a.matmul(&b).expect("matmul");
        let need = (self.requires_grad(), rhs.requires_grad());
        Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            // dA = g B^T, dB = A^T g.
            vec![
                need.0.then(|| g.matmul_nt(&b).expect("matmul backward dA")),
                need.1.then(|| a.matmul_tn(g).expect("matmul backward dB")),
            ]
        })
    }

    /// Affine layer `x W^T + b` with the PyTorch weight convention
    /// `W: [out_features, in_features]`, `x: [N, in_features]`.
    ///
    /// `bias` may be `None` for bias-free layers.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn linear(&self, weight: &Var, bias: Option<&Var>) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let value = x.matmul_nt(&w).expect("linear forward");
        let need = (self.requires_grad(), weight.requires_grad());
        let out = Var::from_op(value, vec![self.clone(), weight.clone()], move |g| {
            vec![
                // dX = g W
                need.0.then(|| g.matmul(&w).expect("linear backward dX")),
                // dW = g^T X
                need.1.then(|| g.matmul_tn(&x).expect("linear backward dW")),
            ]
        });
        match bias {
            Some(b) => out.add_bias(b),
            None => out,
        }
    }

    /// [`Var::linear`] with const-generic feature widths: `x: [batch, IN]`,
    /// `W: [OUT, IN]`. The batch stays a runtime value; the widths become
    /// part of the type, so a layer pairing whose widths disagree is a
    /// compile error and the three GEMMs (forward, `dX`, `dW`) enter the
    /// kernel dispatch below the runtime shape guards — operand lengths
    /// are proven by view construction at this boundary, once.
    ///
    /// Bit-identity contract: same kernels, same `(m, k, n)`, same
    /// accumulation order as [`Var::linear`] — results are byte-identical.
    ///
    /// # Panics
    /// If `x` is not `[batch, IN]` or `weight` is not `[OUT, IN]`
    /// (with an optional `[OUT]` bias), checked here instead of per GEMM.
    pub fn linear_typed<const IN: usize, const OUT: usize>(
        &self,
        weight: &Var,
        bias: Option<&Var>,
    ) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        assert!(
            x.shape().len() == 2 && x.shape()[1] == IN,
            "linear_typed: x shape {:?}, expected [batch, {IN}]",
            x.shape()
        );
        let batch = x.shape()[0];
        let wv = View2D::<OUT, IN>::new(w.data()); // proves W is [OUT, IN]
        let mut y = vec![0.0f32; batch * OUT];
        typed::gemm_nt_rows::<IN, OUT>(
            Rows2D::with_rows(x.data(), batch),
            wv,
            RowsMut2D::with_rows(&mut y, batch),
        );
        let value = Tensor::from_vec(y, &[batch, OUT]).expect("linear_typed forward");
        let need = (self.requires_grad(), weight.requires_grad());
        let out = Var::from_op(value, vec![self.clone(), weight.clone()], move |g| {
            let gr = Rows2D::<OUT>::with_rows(g.data(), batch);
            vec![
                // dX = g W
                need.0.then(|| {
                    let mut dx = vec![0.0f32; batch * IN];
                    typed::gemm_nn_rows::<OUT, IN>(
                        gr,
                        View2D::new(w.data()),
                        RowsMut2D::with_rows(&mut dx, batch),
                    );
                    Tensor::from_vec(dx, &[batch, IN]).expect("linear_typed backward dX")
                }),
                // dW = g^T X
                need.1.then(|| {
                    let mut dw = vec![0.0f32; OUT * IN];
                    typed::gemm_tn_rows::<OUT, IN>(
                        gr,
                        Rows2D::with_rows(x.data(), batch),
                        ViewMut2D::new(&mut dw),
                    );
                    Tensor::from_vec(dw, &[OUT, IN]).expect("linear_typed backward dW")
                }),
            ]
        });
        match bias {
            Some(b) => out.add_bias(b),
            None => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::{seeded_rng, Tensor};

    #[test]
    fn matmul_grads_match_manual() {
        // f = sum(A B); dA = 1 B^T, dB = A^T 1.
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        a.matmul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let mut rng = seeded_rng(3);
        let x = Var::constant(Tensor::randn(&[4, 3], &mut rng));
        let w = Var::parameter(Tensor::randn(&[2, 3], &mut rng));
        let b = Var::parameter(Tensor::randn(&[2], &mut rng));
        let y1 = x.linear(&w, Some(&b));
        let wt = Var::constant(w.value_clone().transpose2d().unwrap());
        let y2 = x.matmul(&wt).add_bias(&b);
        for (p, q) in y1.value().data().iter().zip(y2.value().data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    /// `linear_typed` must be byte-identical to `linear` — value and both
    /// gradients — since it shims onto the same kernels in the same order.
    #[test]
    fn linear_typed_bit_identical_to_dynamic() {
        let mut rng = seeded_rng(17);
        let xt = Tensor::randn(&[5, 3], &mut rng);
        let wt = Tensor::randn(&[2, 3], &mut rng);
        let bt = Tensor::randn(&[2], &mut rng);
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();

        let x1 = Var::parameter(xt.clone());
        let w1 = Var::parameter(wt.clone());
        let b1 = Var::parameter(bt.clone());
        let y1 = x1.linear(&w1, Some(&b1));
        y1.sum_all().backward();

        let x2 = Var::parameter(xt.clone());
        let w2 = Var::parameter(wt.clone());
        let b2 = Var::parameter(bt.clone());
        let y2 = x2.linear_typed::<3, 2>(&w2, Some(&b2));
        y2.sum_all().backward();

        assert_eq!(bits(&y1.value_clone()), bits(&y2.value_clone()));
        assert_eq!(bits(&x1.grad().unwrap()), bits(&x2.grad().unwrap()));
        assert_eq!(bits(&w1.grad().unwrap()), bits(&w2.grad().unwrap()));
        assert_eq!(bits(&b1.grad().unwrap()), bits(&b2.grad().unwrap()));
    }

    /// The `n = 0` FedGKT bundle shape: an empty batch must flow through
    /// the typed linear forward/backward as a well-defined no-op.
    #[test]
    fn linear_typed_empty_batch() {
        let x = Var::parameter(Tensor::zeros(&[0, 3]));
        let w = Var::parameter(Tensor::zeros(&[2, 3]));
        let y = x.linear_typed::<3, 2>(&w, None);
        assert_eq!(y.shape(), vec![0, 2]);
        y.sum_all().backward();
        assert_eq!(w.grad().unwrap().data(), &[0.0; 6]);
    }

    #[test]
    #[should_panic(expected = "View2D<2, 3>")]
    fn linear_typed_rejects_mis_sized_weight() {
        // Boundary check fires at view construction, naming the shape.
        let x = Var::constant(Tensor::zeros(&[4, 3]));
        let w = Var::constant(Tensor::zeros(&[2, 4])); // should be [2, 3]
        let _ = x.linear_typed::<3, 2>(&w, None);
    }

    #[test]
    fn linear_bias_grad_is_batch_sum() {
        let x = Var::constant(Tensor::ones(&[5, 3]));
        let w = Var::parameter(Tensor::zeros(&[2, 3]));
        let b = Var::parameter(Tensor::zeros(&[2]));
        x.linear(&w, Some(&b)).sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[5.0, 5.0]);
        // dW = g^T X = ones[5,2]^T ones[5,3] = 5s
        assert_eq!(w.grad().unwrap().data(), &[5.0; 6]);
    }
}
