//! Dense (fully connected) operations.

use crate::Var;

impl Var {
    /// Matrix product `[M, K] x [K, N] -> [M, N]`.
    ///
    /// # Panics
    /// Panics on rank or inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let value = a.matmul(&b).expect("matmul");
        let need = (self.requires_grad(), rhs.requires_grad());
        Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            // dA = g B^T, dB = A^T g.
            vec![
                need.0.then(|| g.matmul_nt(&b).expect("matmul backward dA")),
                need.1.then(|| a.matmul_tn(g).expect("matmul backward dB")),
            ]
        })
    }

    /// Affine layer `x W^T + b` with the PyTorch weight convention
    /// `W: [out_features, in_features]`, `x: [N, in_features]`.
    ///
    /// `bias` may be `None` for bias-free layers.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn linear(&self, weight: &Var, bias: Option<&Var>) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let value = x.matmul_nt(&w).expect("linear forward");
        let need = (self.requires_grad(), weight.requires_grad());
        let out = Var::from_op(value, vec![self.clone(), weight.clone()], move |g| {
            vec![
                // dX = g W
                need.0.then(|| g.matmul(&w).expect("linear backward dX")),
                // dW = g^T X
                need.1.then(|| g.matmul_tn(&x).expect("linear backward dW")),
            ]
        });
        match bias {
            Some(b) => out.add_bias(b),
            None => out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::{seeded_rng, Tensor};

    #[test]
    fn matmul_grads_match_manual() {
        // f = sum(A B); dA = 1 B^T, dB = A^T 1.
        let a = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Var::parameter(Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        a.matmul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn linear_matches_matmul_plus_bias() {
        let mut rng = seeded_rng(3);
        let x = Var::constant(Tensor::randn(&[4, 3], &mut rng));
        let w = Var::parameter(Tensor::randn(&[2, 3], &mut rng));
        let b = Var::parameter(Tensor::randn(&[2], &mut rng));
        let y1 = x.linear(&w, Some(&b));
        let wt = Var::constant(w.value_clone().transpose2d().unwrap());
        let y2 = x.matmul(&wt).add_bias(&b);
        for (p, q) in y1.value().data().iter().zip(y2.value().data()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn linear_bias_grad_is_batch_sum() {
        let x = Var::constant(Tensor::ones(&[5, 3]));
        let w = Var::parameter(Tensor::zeros(&[2, 3]));
        let b = Var::parameter(Tensor::zeros(&[2]));
        x.linear(&w, Some(&b)).sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[5.0, 5.0]);
        // dW = g^T X = ones[5,2]^T ones[5,3] = 5s
        assert_eq!(w.grad().unwrap().data(), &[5.0; 6]);
    }
}
