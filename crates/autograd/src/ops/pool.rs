//! Spatial pooling and nearest-neighbour upsampling.

use crate::Var;
use fedzkt_tensor::ops::Conv2dGeometry;
use fedzkt_tensor::Tensor;

impl Var {
    /// Average pooling with a square `k`×`k` window.
    ///
    /// # Panics
    /// Panics when `self` is not NCHW or the window does not fit.
    pub fn avg_pool2d(&self, k: usize, stride: usize) -> Var {
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "avg_pool2d input must be NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let geom = Conv2dGeometry::new(1, h, w, k, k, stride, 0).expect("avg_pool2d geometry");
        let (oh, ow) = (geom.out_h, geom.out_w);
        let inv = 1.0 / (k * k) as f32;
        let mut out = vec![0.0f32; n * c * oh * ow];
        for smp in 0..n {
            for ch in 0..c {
                let plane = &x.data()[(smp * c + ch) * h * w..(smp * c + ch + 1) * h * w];
                let dst = &mut out[(smp * c + ch) * oh * ow..(smp * c + ch + 1) * oh * ow];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += plane[(oy * stride + ky) * w + ox * stride + kx];
                            }
                        }
                        dst[oy * ow + ox] = acc * inv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &[n, c, oh, ow]).expect("avg_pool2d out");
        Var::from_op(value, vec![self.clone()], move |g| {
            let mut dx = vec![0.0f32; n * c * h * w];
            for smp in 0..n {
                for ch in 0..c {
                    let gsrc = &g.data()[(smp * c + ch) * oh * ow..(smp * c + ch + 1) * oh * ow];
                    let dst = &mut dx[(smp * c + ch) * h * w..(smp * c + ch + 1) * h * w];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = gsrc[oy * ow + ox] * inv;
                            for ky in 0..k {
                                for kx in 0..k {
                                    dst[(oy * stride + ky) * w + ox * stride + kx] += gv;
                                }
                            }
                        }
                    }
                }
            }
            vec![Some(Tensor::from_vec(dx, &[n, c, h, w]).expect("avg_pool2d dX"))]
        })
    }

    /// Max pooling with a square `k`×`k` window.
    ///
    /// # Panics
    /// Panics when `self` is not NCHW or the window does not fit.
    pub fn max_pool2d(&self, k: usize, stride: usize) -> Var {
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "max_pool2d input must be NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let geom = Conv2dGeometry::new(1, h, w, k, k, stride, 0).expect("max_pool2d geometry");
        let (oh, ow) = (geom.out_h, geom.out_w);
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for smp in 0..n {
            for ch in 0..c {
                let plane = &x.data()[(smp * c + ch) * h * w..(smp * c + ch + 1) * h * w];
                let base = (smp * c + ch) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = (oy * stride + ky) * w + ox * stride + kx;
                                if plane[idx] > best {
                                    best = plane[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        out[base + oy * ow + ox] = best;
                        argmax[base + oy * ow + ox] = best_idx;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &[n, c, oh, ow]).expect("max_pool2d out");
        Var::from_op(value, vec![self.clone()], move |g| {
            let mut dx = vec![0.0f32; n * c * h * w];
            for smp in 0..n {
                for ch in 0..c {
                    let base = (smp * c + ch) * oh * ow;
                    let dst = &mut dx[(smp * c + ch) * h * w..(smp * c + ch + 1) * h * w];
                    for i in 0..oh * ow {
                        dst[argmax[base + i]] += g.data()[base + i];
                    }
                }
            }
            vec![Some(Tensor::from_vec(dx, &[n, c, h, w]).expect("max_pool2d dX"))]
        })
    }

    /// Global average pooling: `[N, C, H, W] -> [N, C]`.
    ///
    /// # Panics
    /// Panics when `self` is not NCHW.
    pub fn global_avg_pool(&self) -> Var {
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "global_avg_pool input must be NCHW");
        let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
        let inv = 1.0 / hw as f32;
        let mut out = vec![0.0f32; n * c];
        for (i, o) in out.iter_mut().enumerate() {
            *o = x.data()[i * hw..(i + 1) * hw].iter().sum::<f32>() * inv;
        }
        let value = Tensor::from_vec(out, &[n, c]).expect("gap out");
        Var::from_op(value, vec![self.clone()], move |g| {
            let mut dx = vec![0.0f32; n * c * hw];
            for i in 0..n * c {
                let gv = g.data()[i] * inv;
                for d in &mut dx[i * hw..(i + 1) * hw] {
                    *d = gv;
                }
            }
            vec![Some(Tensor::from_vec(dx, &s).expect("gap dX"))]
        })
    }

    /// Nearest-neighbour upsampling by an integer `factor` (generator
    /// upscaling blocks).
    ///
    /// # Panics
    /// Panics when `self` is not NCHW or `factor == 0`.
    pub fn upsample_nearest2d(&self, factor: usize) -> Var {
        assert!(factor > 0, "upsample factor must be positive");
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "upsample input must be NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let (oh, ow) = (h * factor, w * factor);
        let mut out = vec![0.0f32; n * c * oh * ow];
        for plane in 0..n * c {
            let src = &x.data()[plane * h * w..(plane + 1) * h * w];
            let dst = &mut out[plane * oh * ow..(plane + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    dst[oy * ow + ox] = src[(oy / factor) * w + ox / factor];
                }
            }
        }
        let value = Tensor::from_vec(out, &[n, c, oh, ow]).expect("upsample out");
        Var::from_op(value, vec![self.clone()], move |g| {
            let mut dx = vec![0.0f32; n * c * h * w];
            for plane in 0..n * c {
                let gsrc = &g.data()[plane * oh * ow..(plane + 1) * oh * ow];
                let dst = &mut dx[plane * h * w..(plane + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        dst[(oy / factor) * w + ox / factor] += gsrc[oy * ow + ox];
                    }
                }
            }
            vec![Some(Tensor::from_vec(dx, &[n, c, h, w]).expect("upsample dX"))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::parameter(Tensor::from_vec(data, shape).unwrap())
    }

    #[test]
    fn avg_pool_values_and_grad() {
        let x = img(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = x.avg_pool2d(2, 2);
        assert_eq!(y.value().data(), &[2.5]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let x = img(vec![1.0, 5.0, 3.0, 2.0], &[1, 1, 2, 2]);
        let y = x.max_pool2d(2, 2);
        assert_eq!(y.value().data(), &[5.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn max_pool_stride_one_overlapping() {
        let x = img(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0], &[1, 1, 3, 3]);
        let y = x.max_pool2d(2, 1);
        assert_eq!(y.value().data(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn global_avg_pool_shape_and_grad() {
        let x = img((1..=8).map(|v| v as f32).collect(), &[2, 2, 1, 2]);
        let y = x.global_avg_pool();
        assert_eq!(y.shape(), vec![2, 2]);
        assert_eq!(y.value().data(), &[1.5, 3.5, 5.5, 7.5]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.5; 8]);
    }

    #[test]
    fn upsample_repeats_and_grad_sums() {
        let x = img(vec![1.0, 2.0], &[1, 1, 1, 2]);
        let y = x.upsample_nearest2d(2);
        assert_eq!(y.shape(), vec![1, 1, 2, 4]);
        assert_eq!(y.value().data(), &[1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 2.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[4.0, 4.0]);
    }
}
