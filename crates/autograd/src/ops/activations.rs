//! Activation functions and (log-)softmax.

use crate::Var;
use fedzkt_tensor::Tensor;

impl Var {
    /// Rectified linear unit `max(x, 0)`.
    pub fn relu(&self) -> Var {
        let x = self.value_clone();
        let value = x.map(|v| v.max(0.0));
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&x, |gi, xi| if xi > 0.0 { gi } else { 0.0 }).expect("relu backward"),
            )]
        })
    }

    /// Leaky ReLU with negative slope `slope` (generator default 0.2).
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let x = self.value_clone();
        let value = x.map(|v| if v > 0.0 { v } else { slope * v });
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&x, |gi, xi| if xi > 0.0 { gi } else { slope * gi })
                    .expect("leaky_relu backward"),
            )]
        })
    }

    /// ReLU6 `min(max(x, 0), 6)` — the MobileNetV2 activation.
    pub fn relu6(&self) -> Var {
        let x = self.value_clone();
        let value = x.map(|v| v.clamp(0.0, 6.0));
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&x, |gi, xi| if xi > 0.0 && xi < 6.0 { gi } else { 0.0 })
                    .expect("relu6 backward"),
            )]
        })
    }

    /// Hyperbolic tangent (generator output squashing).
    pub fn tanh(&self) -> Var {
        let value = self.value().map(f32::tanh);
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(g.zip_map(&y, |gi, yi| gi * (1.0 - yi * yi)).expect("tanh backward"))]
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&y, |gi, yi| gi * yi * (1.0 - yi)).expect("sigmoid backward"),
            )]
        })
    }

    /// Row-wise softmax of a `[N, K]` node (class probabilities).
    ///
    /// # Panics
    /// Panics when the node is not 2-D.
    pub fn softmax(&self) -> Var {
        let value = self.value().softmax_rows().expect("softmax requires [N, K]");
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            let (n, k) = (y.shape()[0], y.shape()[1]);
            let mut out = vec![0.0f32; n * k];
            for i in 0..n {
                let yr = &y.data()[i * k..(i + 1) * k];
                let gr = &g.data()[i * k..(i + 1) * k];
                let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                for j in 0..k {
                    out[i * k + j] = yr[j] * (gr[j] - dot);
                }
            }
            vec![Some(Tensor::from_vec(out, &[n, k]).expect("softmax backward"))]
        })
    }

    /// Row-wise log-softmax of a `[N, K]` node.
    ///
    /// # Panics
    /// Panics when the node is not 2-D.
    pub fn log_softmax(&self) -> Var {
        let probs = self.value().softmax_rows().expect("log_softmax requires [N, K]");
        let value = probs.map(|p| p.max(1e-30).ln());
        let p = probs;
        Var::from_op(value, vec![self.clone()], move |g| {
            let (n, k) = (p.shape()[0], p.shape()[1]);
            let mut out = vec![0.0f32; n * k];
            for i in 0..n {
                let pr = &p.data()[i * k..(i + 1) * k];
                let gr = &g.data()[i * k..(i + 1) * k];
                let gsum: f32 = gr.iter().sum();
                for j in 0..k {
                    out[i * k + j] = gr[j] - pr[j] * gsum;
                }
            }
            vec![Some(Tensor::from_vec(out, &[n, k]).expect("log_softmax backward"))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v2(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::parameter(Tensor::from_vec(data, shape).unwrap())
    }

    #[test]
    fn relu_masks_negative() {
        let x = v2(vec![-1.0, 2.0], &[2]);
        let y = x.relu();
        assert_eq!(y.value().data(), &[0.0, 2.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn relu6_saturates() {
        let x = v2(vec![-1.0, 3.0, 7.0], &[3]);
        let y = x.relu6();
        assert_eq!(y.value().data(), &[0.0, 3.0, 6.0]);
        y.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn leaky_relu_passes_scaled_negative() {
        let x = v2(vec![-2.0, 2.0], &[2]);
        let y = x.leaky_relu(0.1);
        assert!((y.value().data()[0] + 0.2).abs() < 1e-6);
        y.sum_all().backward();
        let g = x.grad().unwrap();
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert!((g.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_grad_matches_identity() {
        let x = v2(vec![0.3], &[1]);
        x.tanh().sum_all().backward();
        let y = 0.3f32.tanh();
        let expected = 1.0 - y * y;
        assert!((x.grad().unwrap().data()[0] - expected).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_at_zero() {
        let x = v2(vec![0.0], &[1]);
        let y = x.sigmoid();
        assert!((y.value().item() - 0.5).abs() < 1e-6);
        y.sum_all().backward();
        assert!((x.grad().unwrap().data()[0] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_grad_sums_to_zero() {
        let x = v2(vec![1.0, 2.0, 3.0, 1.0, 1.0, 1.0], &[2, 3]);
        let y = x.softmax();
        let rows = y.value_clone();
        for i in 0..2 {
            let s: f32 = rows.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // Uniform output grad: softmax gradient must vanish per row.
        y.sum_all().backward();
        let g = x.grad().unwrap();
        for i in 0..2 {
            let s: f32 = g.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = v2(vec![0.5, -1.0, 2.0], &[1, 3]);
        let a = x.log_softmax().value_clone();
        let b = x.softmax().value_clone().map(|p| p.ln());
        for (u, w) in a.data().iter().zip(b.data()) {
            assert!((u - w).abs() < 1e-5);
        }
    }
}
