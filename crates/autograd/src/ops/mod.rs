//! Differentiable operations on [`Var`](crate::Var), grouped by theme.
//!
//! All ops follow the same conventions:
//!
//! * shapes are validated eagerly; a mismatch is a model-construction bug
//!   and **panics** (the underlying [`fedzkt_tensor`] error message is
//!   preserved in the panic payload);
//! * the returned node's backward closure only computes gradients for
//!   parents that require them;
//! * image tensors are NCHW.

mod activations;
mod arith;
mod conv;
mod dropout;
mod linear;
mod norm;
mod pool;
mod reduce;
mod shape_ops;
