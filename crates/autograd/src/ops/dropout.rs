//! Inverted dropout.

use crate::Var;
use fedzkt_tensor::{Prng, Tensor};
use rand::RngExt;

impl Var {
    /// Inverted dropout: zero each element with probability `p` and scale
    /// survivors by `1 / (1 - p)` so the expectation is unchanged. Call only
    /// during training; evaluation passes should skip the op entirely.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn dropout(&self, p: f32, rng: &mut Prng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1), got {p}");
        if p == 0.0 {
            return self.clone();
        }
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let mask: Vec<f32> = (0..self.value().len())
            .map(|_| if rng.random::<f32>() < keep { scale } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, &self.shape()).expect("dropout mask");
        let value = self.value().mul(&mask).expect("dropout forward");
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(g.mul(&mask).expect("dropout backward"))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    #[test]
    fn zero_probability_is_identity() {
        let mut rng = seeded_rng(1);
        let x = Var::parameter(Tensor::ones(&[4]));
        let y = x.dropout(0.0, &mut rng);
        assert_eq!(y.value().data(), &[1.0; 4]);
    }

    #[test]
    fn preserves_expectation() {
        let mut rng = seeded_rng(2);
        let x = Var::constant(Tensor::ones(&[10_000]));
        let y = x.dropout(0.3, &mut rng);
        let mean = y.value().mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = seeded_rng(3);
        let x = Var::parameter(Tensor::ones(&[64]));
        let y = x.dropout(0.5, &mut rng);
        let fwd = y.value_clone();
        y.sum_all().backward();
        let g = x.grad().unwrap();
        // Gradient nonzero exactly where forward survived.
        for (f, gi) in fwd.data().iter().zip(g.data()) {
            assert_eq!(*f == 0.0, *gi == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_p_one() {
        let mut rng = seeded_rng(4);
        let x = Var::constant(Tensor::ones(&[2]));
        let _ = x.dropout(1.0, &mut rng);
    }
}
