//! Shape-manipulating ops: reshape, flatten, channel concat/narrow/shuffle.

use crate::Var;
use fedzkt_tensor::Tensor;

impl Var {
    /// Reinterpret the node with a new shape of equal volume.
    ///
    /// # Panics
    /// Panics when the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Var {
        let old = self.shape();
        let value = self.value().reshape(shape).expect("reshape");
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(g.reshape(&old).expect("reshape backward"))]
        })
    }

    /// Flatten everything but the batch dimension: `[N, ...] -> [N, rest]`.
    ///
    /// # Panics
    /// Panics on scalars.
    pub fn flatten_batch(&self) -> Var {
        let s = self.shape();
        assert!(!s.is_empty(), "flatten_batch on scalar");
        let rest: usize = s[1..].iter().product();
        self.reshape(&[s[0], rest])
    }

    /// Concatenate NCHW nodes along the channel dimension.
    ///
    /// # Panics
    /// Panics when the list is empty or batch/spatial dims disagree.
    pub fn concat_channels(parts: &[&Var]) -> Var {
        assert!(!parts.is_empty(), "concat_channels of zero tensors");
        let s0 = parts[0].shape();
        assert_eq!(s0.len(), 4, "concat_channels expects NCHW");
        let (n, h, w) = (s0[0], s0[2], s0[3]);
        let channels: Vec<usize> = parts
            .iter()
            .map(|p| {
                let s = p.shape();
                assert_eq!(
                    (s[0], s[2], s[3]),
                    (n, h, w),
                    "concat_channels batch/spatial mismatch"
                );
                s[1]
            })
            .collect();
        let c_total: usize = channels.iter().sum();
        let hw = h * w;
        let mut out = vec![0.0f32; n * c_total * hw];
        for smp in 0..n {
            let mut ch_off = 0usize;
            for (p, &c) in parts.iter().zip(&channels) {
                let v = p.value();
                let src = &v.data()[smp * c * hw..(smp + 1) * c * hw];
                let dst_base = smp * c_total * hw + ch_off * hw;
                out[dst_base..dst_base + c * hw].copy_from_slice(src);
                ch_off += c;
            }
        }
        let value = Tensor::from_vec(out, &[n, c_total, h, w]).expect("concat out");
        let parents: Vec<Var> = parts.iter().map(|p| (*p).clone()).collect();
        let chans = channels.clone();
        Var::from_op(value, parents, move |g| {
            let mut grads = Vec::with_capacity(chans.len());
            let mut ch_off = 0usize;
            for &c in &chans {
                let mut dx = vec![0.0f32; n * c * hw];
                for smp in 0..n {
                    let src_base = smp * c_total * hw + ch_off * hw;
                    dx[smp * c * hw..(smp + 1) * c * hw]
                        .copy_from_slice(&g.data()[src_base..src_base + c * hw]);
                }
                grads.push(Some(Tensor::from_vec(dx, &[n, c, h, w]).expect("concat dX")));
                ch_off += c;
            }
            grads
        })
    }

    /// Take channels `start..start + len` of an NCHW node (the ShuffleNetV2
    /// channel split is two `narrow_channels` calls).
    ///
    /// # Panics
    /// Panics when the range exceeds the channel count.
    pub fn narrow_channels(&self, start: usize, len: usize) -> Var {
        let s = self.shape();
        assert_eq!(s.len(), 4, "narrow_channels expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(start + len <= c, "narrow {start}..{} exceeds C={c}", start + len);
        let hw = h * w;
        let mut out = vec![0.0f32; n * len * hw];
        {
            let v = self.value();
            for smp in 0..n {
                let src_base = smp * c * hw + start * hw;
                out[smp * len * hw..(smp + 1) * len * hw]
                    .copy_from_slice(&v.data()[src_base..src_base + len * hw]);
            }
        }
        let value = Tensor::from_vec(out, &[n, len, h, w]).expect("narrow out");
        Var::from_op(value, vec![self.clone()], move |g| {
            let mut dx = vec![0.0f32; n * c * hw];
            for smp in 0..n {
                let dst_base = smp * c * hw + start * hw;
                dx[dst_base..dst_base + len * hw]
                    .copy_from_slice(&g.data()[smp * len * hw..(smp + 1) * len * hw]);
            }
            vec![Some(Tensor::from_vec(dx, &[n, c, h, w]).expect("narrow dX"))]
        })
    }

    /// ShuffleNet channel shuffle: reshape `[N, g, C/g, H, W]`, transpose the
    /// two channel axes, flatten back.
    ///
    /// # Panics
    /// Panics when `groups` does not divide the channel count.
    pub fn channel_shuffle(&self, groups: usize) -> Var {
        let s = self.shape();
        assert_eq!(s.len(), 4, "channel_shuffle expects NCHW");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(groups > 0 && c.is_multiple_of(groups), "groups {groups} must divide C={c}");
        let per = c / groups;
        let hw = h * w;
        // Forward permutation: output channel j = (j % groups) * per + j / groups
        // reads input channel ... derive: out[b, j] = in[b, perm(j)] where
        // perm maps output index (i2, g2) -> input (g2, i2).
        let mut out = vec![0.0f32; n * c * hw];
        {
            let v = self.value();
            for smp in 0..n {
                for g in 0..groups {
                    for i in 0..per {
                        let src = smp * c * hw + (g * per + i) * hw;
                        let dst = smp * c * hw + (i * groups + g) * hw;
                        out[dst..dst + hw].copy_from_slice(&v.data()[src..src + hw]);
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &s).expect("shuffle out");
        let shape = s.clone();
        Var::from_op(value, vec![self.clone()], move |gr| {
            let mut dx = vec![0.0f32; n * c * hw];
            for smp in 0..n {
                for g in 0..groups {
                    for i in 0..per {
                        let src = smp * c * hw + (g * per + i) * hw;
                        let dst = smp * c * hw + (i * groups + g) * hw;
                        dx[src..src + hw].copy_from_slice(&gr.data()[dst..dst + hw]);
                    }
                }
            }
            vec![Some(Tensor::from_vec(dx, &shape).expect("shuffle dX"))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_roundtrip_gradient() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        x.reshape(&[4]).reshape(&[1, 4]).sum_all().backward();
        assert_eq!(x.grad().unwrap().shape(), &[2, 2]);
        assert_eq!(x.grad().unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn flatten_batch_keeps_first_dim() {
        let x = Var::constant(Tensor::zeros(&[3, 2, 4, 4]));
        assert_eq!(x.flatten_batch().shape(), vec![3, 32]);
    }

    #[test]
    fn concat_then_narrow_roundtrips() {
        let a = Var::parameter(Tensor::full(&[1, 2, 2, 2], 1.0));
        let b = Var::parameter(Tensor::full(&[1, 3, 2, 2], 2.0));
        let cat = Var::concat_channels(&[&a, &b]);
        assert_eq!(cat.shape(), vec![1, 5, 2, 2]);
        let back_a = cat.narrow_channels(0, 2);
        let back_b = cat.narrow_channels(2, 3);
        assert_eq!(back_a.value().data(), a.value().data());
        assert_eq!(back_b.value().data(), b.value().data());
        // Gradients split correctly.
        cat.narrow_channels(0, 2).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 8]);
        assert!(b.grad().is_none() || b.grad().unwrap().data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn channel_shuffle_is_a_permutation() {
        // C=4, groups=2: channels [0 1 2 3] -> [0 2 1 3].
        let data: Vec<f32> = (0..4).map(|c| c as f32).collect();
        let mut full = Vec::new();
        for c in &data {
            full.extend([*c; 4]); // 2x2 plane per channel
        }
        let x = Var::parameter(Tensor::from_vec(full, &[1, 4, 2, 2]).unwrap());
        let y = x.channel_shuffle(2);
        let v = y.value_clone();
        let chan = |i: usize| v.data()[i * 4];
        assert_eq!([chan(0), chan(1), chan(2), chan(3)], [0.0, 2.0, 1.0, 3.0]);
        // Backward is the inverse permutation: weighted sum recovers order.
        let w = Var::constant(
            Tensor::from_vec(
                (0..16).map(|i| (i / 4) as f32).collect(),
                &[1, 4, 2, 2],
            )
            .unwrap(),
        );
        y.mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        let gch = |i: usize| g.data()[i * 4];
        // Output channel weights [0,1,2,3] land on input channels [0,2,1,3].
        assert_eq!([gch(0), gch(1), gch(2), gch(3)], [0.0, 2.0, 1.0, 3.0]);
    }

    #[test]
    fn shuffle_then_inverse_shuffle_is_identity() {
        let x = Var::constant(
            Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[1, 6, 2, 2]).unwrap(),
        );
        // shuffle with g then with C/g inverts the permutation.
        let y = x.channel_shuffle(2).channel_shuffle(3);
        assert_eq!(y.value().data(), x.value().data());
    }
}
