//! Batch normalisation over NCHW batches.

use crate::Var;
use fedzkt_tensor::Tensor;

/// Per-channel mean over an NCHW batch (`N·H·W` samples per channel).
fn channel_mean(x: &Tensor) -> Vec<f32> {
    let s = x.shape();
    let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
    let m = (n * hw) as f32;
    let mut out = vec![0.0f32; c];
    for smp in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let base = smp * c * hw + ch * hw;
            *o += x.data()[base..base + hw].iter().sum::<f32>();
        }
    }
    for v in &mut out {
        *v /= m;
    }
    out
}

/// Per-channel biased variance over an NCHW batch.
fn channel_var(x: &Tensor, mean: &[f32]) -> Vec<f32> {
    let s = x.shape();
    let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
    let m = (n * hw) as f32;
    let mut out = vec![0.0f32; c];
    for smp in 0..n {
        for ch in 0..c {
            let base = smp * c * hw + ch * hw;
            let mu = mean[ch];
            out[ch] += x.data()[base..base + hw].iter().map(|v| (v - mu) * (v - mu)).sum::<f32>();
        }
    }
    for v in &mut out {
        *v /= m;
    }
    out
}

impl Var {
    /// Training-mode batch normalisation.
    ///
    /// Normalises each channel with the **batch** statistics and returns
    /// `(output, batch_mean, batch_var)` so the owning layer can update its
    /// running estimates. Gradients flow to the input, `gamma` and `beta`,
    /// correctly accounting for the dependence of μ and σ² on the input.
    ///
    /// # Panics
    /// Panics when `self` is not NCHW or `gamma`/`beta` are not `[C]`.
    pub fn batch_norm2d_train(
        &self,
        gamma: &Var,
        beta: &Var,
        eps: f32,
    ) -> (Var, Tensor, Tensor) {
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "batch_norm2d input must be NCHW");
        let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
        assert_eq!(gamma.shape(), vec![c], "gamma must be [C]");
        assert_eq!(beta.shape(), vec![c], "beta must be [C]");
        let mean = channel_mean(&x);
        let var = channel_var(&x, &mean);
        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();

        // xhat and output.
        let mut xhat = vec![0.0f32; x.len()];
        let mut out = vec![0.0f32; x.len()];
        {
            let gm = gamma.value();
            let bt = beta.value();
            for smp in 0..n {
                for ch in 0..c {
                    let base = smp * c * hw + ch * hw;
                    let (mu, is) = (mean[ch], inv_std[ch]);
                    let (gv, bv) = (gm.data()[ch], bt.data()[ch]);
                    for i in 0..hw {
                        let xh = (x.data()[base + i] - mu) * is;
                        xhat[base + i] = xh;
                        out[base + i] = gv * xh + bv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &s).expect("bn output");
        let batch_mean = Tensor::from_vec(mean, &[c]).expect("bn mean");
        let batch_var = Tensor::from_vec(var.clone(), &[c]).expect("bn var");

        let gamma_val = gamma.value_clone();
        let xhat_t = xhat;
        let shape = s.clone();
        let need = (self.requires_grad(), gamma.requires_grad(), beta.requires_grad());
        let node = Var::from_op(
            value,
            vec![self.clone(), gamma.clone(), beta.clone()],
            move |g| {
                let m = (n * hw) as f32;
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                for smp in 0..n {
                    for ch in 0..c {
                        let base = smp * c * hw + ch * hw;
                        for i in 0..hw {
                            let gi = g.data()[base + i];
                            dgamma[ch] += gi * xhat_t[base + i];
                            dbeta[ch] += gi;
                        }
                    }
                }
                let dx = need.0.then(|| {
                    // dx = (gamma * inv_std / m) * (m*g - dbeta - xhat * dgamma)
                    let mut dx = vec![0.0f32; g.len()];
                    for smp in 0..n {
                        for ch in 0..c {
                            let base = smp * c * hw + ch * hw;
                            let k = gamma_val.data()[ch] * inv_std[ch] / m;
                            for i in 0..hw {
                                dx[base + i] = k
                                    * (m * g.data()[base + i]
                                        - dbeta[ch]
                                        - xhat_t[base + i] * dgamma[ch]);
                            }
                        }
                    }
                    Tensor::from_vec(dx, &shape).expect("bn dX")
                });
                vec![
                    dx,
                    need.1.then(|| Tensor::from_vec(dgamma, &[c]).expect("bn dgamma")),
                    need.2.then(|| Tensor::from_vec(dbeta, &[c]).expect("bn dbeta")),
                ]
            },
        );
        (node, batch_mean, batch_var)
    }

    /// Evaluation-mode batch normalisation using fixed running statistics.
    ///
    /// # Panics
    /// Panics when shapes are inconsistent (see
    /// [`Var::batch_norm2d_train`]).
    pub fn batch_norm2d_eval(
        &self,
        gamma: &Var,
        beta: &Var,
        running_mean: &Tensor,
        running_var: &Tensor,
        eps: f32,
    ) -> Var {
        let x = self.value_clone();
        let s = x.shape().to_vec();
        assert_eq!(s.len(), 4, "batch_norm2d input must be NCHW");
        let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
        assert_eq!(running_mean.len(), c, "running_mean must be [C]");
        assert_eq!(running_var.len(), c, "running_var must be [C]");
        let inv_std: Vec<f32> =
            running_var.data().iter().map(|v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = vec![0.0f32; x.len()];
        let mut out = vec![0.0f32; x.len()];
        {
            let gm = gamma.value();
            let bt = beta.value();
            for smp in 0..n {
                for (ch, &is) in inv_std.iter().enumerate() {
                    let base = smp * c * hw + ch * hw;
                    let mu = running_mean.data()[ch];
                    let (gv, bv) = (gm.data()[ch], bt.data()[ch]);
                    for i in 0..hw {
                        let xh = (x.data()[base + i] - mu) * is;
                        xhat[base + i] = xh;
                        out[base + i] = gv * xh + bv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &s).expect("bn eval output");
        let gamma_val = gamma.value_clone();
        let shape = s.clone();
        let need = (self.requires_grad(), gamma.requires_grad(), beta.requires_grad());
        Var::from_op(
            value,
            vec![self.clone(), gamma.clone(), beta.clone()],
            move |g| {
                let dx = need.0.then(|| {
                    let mut dx = vec![0.0f32; g.len()];
                    for smp in 0..n {
                        for (ch, &is) in inv_std.iter().enumerate() {
                            let base = smp * c * hw + ch * hw;
                            let k = gamma_val.data()[ch] * is;
                            for i in 0..hw {
                                dx[base + i] = k * g.data()[base + i];
                            }
                        }
                    }
                    Tensor::from_vec(dx, &shape).expect("bn eval dX")
                });
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                for smp in 0..n {
                    for ch in 0..c {
                        let base = smp * c * hw + ch * hw;
                        for i in 0..hw {
                            dgamma[ch] += g.data()[base + i] * xhat[base + i];
                            dbeta[ch] += g.data()[base + i];
                        }
                    }
                }
                vec![
                    dx,
                    need.1.then(|| Tensor::from_vec(dgamma, &[c]).expect("dgamma")),
                    need.2.then(|| Tensor::from_vec(dbeta, &[c]).expect("dbeta")),
                ]
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    #[test]
    fn train_mode_normalises_channels() {
        let mut rng = seeded_rng(31);
        let x = Var::constant(Tensor::randn(&[4, 3, 5, 5], &mut rng).mul_scalar(3.0).add_scalar(2.0));
        let gamma = Var::constant(Tensor::ones(&[3]));
        let beta = Var::constant(Tensor::zeros(&[3]));
        let (y, mean, var) = x.batch_norm2d_train(&gamma, &beta, 1e-5);
        // Output channels have ~zero mean, ~unit variance.
        let out = y.value_clone();
        let m = channel_mean(&out);
        let v = channel_var(&out, &m);
        for ch in 0..3 {
            assert!(m[ch].abs() < 1e-4, "mean {}", m[ch]);
            assert!((v[ch] - 1.0).abs() < 1e-2, "var {}", v[ch]);
        }
        // Batch stats reflect the input distribution (loose statistical
        // bounds: 100 samples per channel).
        assert!(mean.data().iter().all(|&x| (x - 2.0).abs() < 1.0), "{:?}", mean.data());
        assert!(var.data().iter().all(|&x| (x - 9.0).abs() < 4.0), "{:?}", var.data());
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let x = Var::constant(Tensor::full(&[1, 2, 1, 1], 4.0));
        let gamma = Var::constant(Tensor::ones(&[2]));
        let beta = Var::constant(Tensor::zeros(&[2]));
        let rm = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        let rv = Tensor::from_vec(vec![4.0, 1.0], &[2]).unwrap();
        let y = x.batch_norm2d_eval(&gamma, &beta, &rm, &rv, 0.0);
        let d = y.value_clone();
        assert!((d.data()[0] - 1.0).abs() < 1e-5); // (4-2)/2
        assert!(d.data()[1].abs() < 1e-5); // (4-4)/1
    }

    #[test]
    fn train_mode_grad_sums_to_zero_per_channel() {
        // BN output is invariant to adding a constant to a channel, so the
        // input gradient must sum to zero per channel.
        let mut rng = seeded_rng(33);
        let x = Var::parameter(Tensor::randn(&[3, 2, 4, 4], &mut rng));
        let gamma = Var::parameter(Tensor::ones(&[2]));
        let beta = Var::parameter(Tensor::zeros(&[2]));
        let (y, _, _) = x.batch_norm2d_train(&gamma, &beta, 1e-5);
        // Non-uniform downstream gradient.
        let w = Var::constant(Tensor::randn(&[3, 2, 4, 4], &mut rng));
        y.mul(&w).sum_all().backward();
        let g = x.grad().unwrap();
        for ch in 0..2 {
            let mut sum = 0.0f32;
            for s in 0..3 {
                for i in 0..16 {
                    sum += g.data()[s * 32 + ch * 16 + i];
                }
            }
            assert!(sum.abs() < 1e-3, "channel {ch} grad sum {sum}");
        }
        assert!(gamma.grad().is_some());
        assert!(beta.grad().is_some());
    }
}
