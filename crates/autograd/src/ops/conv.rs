//! 2-D convolution (with groups/depthwise support) via im2col lowering.

use crate::Var;
use fedzkt_tensor::ops::{col2im, im2col, Conv2dGeometry};
use fedzkt_tensor::Tensor;

impl Var {
    /// 2-D convolution over an NCHW batch.
    ///
    /// * `self`: input `[N, C, H, W]`
    /// * `weight`: kernels `[OC, C / groups, KH, KW]`
    /// * `stride`, `pad`: applied to both spatial dims
    /// * `groups`: channel groups; `groups == C` with `OC == C` gives a
    ///   depthwise convolution (MobileNetV2/ShuffleNetV2 building block)
    ///
    /// # Panics
    /// Panics when shapes are inconsistent, `groups` does not divide both
    /// `C` and `OC`, or the kernel does not fit the padded input.
    pub fn conv2d(&self, weight: &Var, stride: usize, pad: usize, groups: usize) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let xs = x.shape().to_vec();
        let ws = w.shape().to_vec();
        assert_eq!(xs.len(), 4, "conv2d input must be [N, C, H, W], got {xs:?}");
        assert_eq!(ws.len(), 4, "conv2d weight must be [OC, C/g, KH, KW], got {ws:?}");
        let (n, c, h, width) = (xs[0], xs[1], xs[2], xs[3]);
        let (oc, c_per_g, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert!(groups > 0 && c.is_multiple_of(groups) && oc.is_multiple_of(groups), "groups {groups} must divide C={c} and OC={oc}");
        assert_eq!(c / groups, c_per_g, "weight in-channels {c_per_g} != C/groups {}", c / groups);

        let geom = Conv2dGeometry::new(c_per_g, h, width, kh, kw, stride, pad)
            .expect("conv2d geometry");
        let (oh, ow) = (geom.out_h, geom.out_w);
        let oc_per_g = oc / groups;
        let group_in = c_per_g * h * width;
        let group_out = oc_per_g * oh * ow;
        let kvol = c_per_g * kh * kw;

        // Forward: per sample, per group: out = W_g [OCg, kvol] x col [kvol, OHOW].
        let mut out = vec![0.0f32; n * oc * oh * ow];
        let mut cols: Vec<Vec<f32>> = Vec::with_capacity(n * groups);
        for s in 0..n {
            let sample = &x.data()[s * c * h * width..(s + 1) * c * h * width];
            for g in 0..groups {
                let col = im2col(&sample[g * group_in..(g + 1) * group_in], &geom);
                let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                let dst = &mut out[s * oc * oh * ow + g * group_out
                    ..s * oc * oh * ow + (g + 1) * group_out];
                gemm_into(wg, &col, dst, oc_per_g, kvol, oh * ow);
                cols.push(col);
            }
        }
        let value = Tensor::from_vec(out, &[n, oc, oh, ow]).expect("conv2d output");

        let need = (self.requires_grad(), weight.requires_grad());
        Var::from_op(value, vec![self.clone(), weight.clone()], move |grad| {
            let mut gx = need.0.then(|| vec![0.0f32; n * c * h * width]);
            let mut gw = need.1.then(|| vec![0.0f32; oc * kvol]);
            for s in 0..n {
                for g in 0..groups {
                    let go = &grad.data()[s * oc * oh * ow + g * group_out
                        ..s * oc * oh * ow + (g + 1) * group_out];
                    let col = &cols[s * groups + g];
                    if let Some(gw) = gw.as_mut() {
                        // dW_g += go [OCg, OHOW] x col^T [OHOW, kvol]
                        let dst = &mut gw[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                        gemm_nt_into(go, col, dst, oc_per_g, oh * ow, kvol);
                    }
                    if let Some(gx) = gx.as_mut() {
                        // dcol = W_g^T [kvol, OCg] x go [OCg, OHOW]
                        let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                        let mut dcol = vec![0.0f32; kvol * oh * ow];
                        gemm_tn_into(wg, go, &mut dcol, oc_per_g, kvol, oh * ow);
                        let gslice = col2im(&dcol, &geom);
                        let dst = &mut gx[s * c * h * width + g * group_in
                            ..s * c * h * width + (g + 1) * group_in];
                        for (d, v) in dst.iter_mut().zip(gslice) {
                            *d += v;
                        }
                    }
                }
            }
            vec![
                gx.map(|v| Tensor::from_vec(v, &[n, c, h, width]).expect("conv2d dX")),
                gw.map(|v| Tensor::from_vec(v, &[oc, c_per_g, kh, kw]).expect("conv2d dW")),
            ]
        })
    }

    /// Add a per-channel bias `[C]` over an NCHW batch.
    ///
    /// # Panics
    /// Panics when `self` is not 4-D or `bias` is not `[C]`.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let xs = self.shape();
        assert_eq!(xs.len(), 4, "add_channel_bias input must be NCHW");
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        assert_eq!(bias.shape(), vec![c], "bias must be [C]");
        let hw = h * w;
        let mut out = self.value_clone().into_vec();
        {
            let b = bias.value();
            for s in 0..n {
                for ch in 0..c {
                    let base = s * c * hw + ch * hw;
                    let bv = b.data()[ch];
                    for px in &mut out[base..base + hw] {
                        *px += bv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &xs).expect("add_channel_bias");
        let need = (self.requires_grad(), bias.requires_grad());
        Var::from_op(value, vec![self.clone(), bias.clone()], move |g| {
            let gb = need.1.then(|| {
                let mut acc = vec![0.0f32; c];
                for s in 0..n {
                    for (ch, a) in acc.iter_mut().enumerate() {
                        let base = s * c * hw + ch * hw;
                        *a += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                Tensor::from_vec(acc, &[c]).expect("channel bias grad")
            });
            vec![need.0.then(|| g.clone()), gb]
        })
    }
}

/// `out = a[m,k] x b[k,n]` (row-major, out pre-zeroed).
fn gemm_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * n..(i + 1) * n];
        for (t, &av) in ar.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let br = &b[t * n..(t + 1) * n];
            for (o, &bv) in or.iter_mut().zip(br) {
                *o += av * bv;
            }
        }
    }
}

/// `out += a[m,k] x b[n,k]^T` (accumulating).
fn gemm_nt_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * n..(i + 1) * n];
        for (j, o) in or.iter_mut().enumerate() {
            let br = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for t in 0..k {
                acc += ar[t] * br[t];
            }
            *o += acc;
        }
    }
}

/// `out += a[k,m]^T x b[k,n]` (accumulating).
fn gemm_tn_into(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    for t in 0..k {
        let ar = &a[t * m..(t + 1) * m];
        let br = &b[t * n..(t + 1) * n];
        for i in 0..m {
            let av = ar[i];
            if av == 0.0 {
                continue;
            }
            let or = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in or.iter_mut().zip(br) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    /// Direct (definition-level) convolution for cross-checking.
    fn conv_naive(
        x: &Tensor,
        w: &Tensor,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Tensor {
        let (n, _c, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oc, cpg, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (wid + 2 * pad - kw) / stride + 1;
        let ocpg = oc / groups;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                let g = o / ocpg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..cpg {
                            let cin = g * cpg + ci;
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                        continue;
                                    }
                                    acc += x.at(&[s, cin, iy as usize, ix as usize]).unwrap()
                                        * w.at(&[o, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive_dense() {
        let mut rng = seeded_rng(21);
        let x = Tensor::randn(&[2, 3, 6, 5], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let out = Var::constant(x.clone())
                .conv2d(&Var::constant(w.clone()), stride, pad, 1);
            let expected = conv_naive(&x, &w, stride, pad, 1);
            assert_eq!(out.shape(), expected.shape().to_vec());
            for (a, b) in out.value().data().iter().zip(expected.data()) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b} (stride {stride} pad {pad})");
            }
        }
    }

    #[test]
    fn conv2d_matches_naive_grouped_and_depthwise() {
        let mut rng = seeded_rng(22);
        let x = Tensor::randn(&[1, 4, 5, 5], &mut rng);
        // Grouped: groups=2.
        let wg = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wg.clone()), 1, 1, 2);
        let expected = conv_naive(&x, &wg, 1, 1, 2);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
        // Depthwise: groups=C=4, OC=4.
        let wd = Tensor::randn(&[4, 1, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wd.clone()), 1, 1, 4);
        let expected = conv_naive(&x, &wd, 1, 1, 4);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn conv2d_1x1_is_channel_mixing() {
        let mut rng = seeded_rng(23);
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2, 1, 1], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 0, 1);
        let expected = conv_naive(&x, &w, 1, 0, 1);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn channel_bias_grad() {
        let x = Var::parameter(Tensor::zeros(&[2, 3, 2, 2]));
        let b = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = x.add_channel_bias(&b);
        assert_eq!(y.value().at(&[0, 1, 0, 0]).unwrap(), 2.0);
        y.sum_all().backward();
        // Each channel has N * H * W = 2*2*2 = 8 contributing pixels.
        assert_eq!(b.grad().unwrap().data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn conv2d_rejects_bad_groups() {
        let x = Var::constant(Tensor::zeros(&[1, 3, 4, 4]));
        let w = Var::constant(Tensor::zeros(&[4, 1, 3, 3]));
        let _ = x.conv2d(&w, 1, 1, 2); // 2 does not divide C=3
    }
}
