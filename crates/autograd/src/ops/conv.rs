//! 2-D convolution (with groups/depthwise support) via batched im2col
//! lowering.
//!
//! The whole batch is lowered into one `[kvol, N·OH·OW]` column matrix per
//! channel group ([`im2col_batch`]) and convolved with a single GEMM per
//! group — forward and backward both dispatch to the workspace's unified
//! kernel layer [`fedzkt_tensor::ops::gemm`], so large batches engage its
//! row-partitioned multi-threading automatically.

use crate::Var;
use fedzkt_tensor::ops::{col2im, gemm, im2col_batch, Conv2dGeometry};
use fedzkt_tensor::{par, Tensor};

impl Var {
    /// 2-D convolution over an NCHW batch.
    ///
    /// * `self`: input `[N, C, H, W]`
    /// * `weight`: kernels `[OC, C / groups, KH, KW]`
    /// * `stride`, `pad`: applied to both spatial dims
    /// * `groups`: channel groups; `groups == C` with `OC == C` gives a
    ///   depthwise convolution (MobileNetV2/ShuffleNetV2 building block)
    ///
    /// # Panics
    /// Panics when shapes are inconsistent, `groups` does not divide both
    /// `C` and `OC`, or the kernel does not fit the padded input.
    pub fn conv2d(&self, weight: &Var, stride: usize, pad: usize, groups: usize) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let xs = x.shape().to_vec();
        let ws = w.shape().to_vec();
        assert_eq!(xs.len(), 4, "conv2d input must be [N, C, H, W], got {xs:?}");
        assert_eq!(ws.len(), 4, "conv2d weight must be [OC, C/g, KH, KW], got {ws:?}");
        let (n, c, h, width) = (xs[0], xs[1], xs[2], xs[3]);
        let (oc, c_per_g, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert!(groups > 0 && c.is_multiple_of(groups) && oc.is_multiple_of(groups), "groups {groups} must divide C={c} and OC={oc}");
        assert_eq!(c / groups, c_per_g, "weight in-channels {c_per_g} != C/groups {}", c / groups);

        let geom = Conv2dGeometry::new(c_per_g, h, width, kh, kw, stride, pad)
            .expect("conv2d geometry");
        let (oh, ow) = (geom.out_h, geom.out_w);
        let oc_per_g = oc / groups;
        let group_in = c_per_g * h * width;
        let kvol = c_per_g * kh * kw;

        // Forward: per group, ONE GEMM over the whole batch:
        //   out_g [OCg, N·OHOW] = W_g [OCg, kvol] x col_g [kvol, N·OHOW],
        // where col_g's columns are sample-major (im2col_batch). The lowered
        // matrices are kept for the backward pass.
        let hw_out = oh * ow;
        let ncols = n * hw_out;
        let sample_stride = c * h * width;
        let mut out = vec![0.0f32; n * oc * hw_out];
        let cols: Vec<Vec<f32>> = (0..groups)
            .map(|g| im2col_batch(x.data(), g * group_in, sample_stride, n, &geom))
            .collect();
        for (g, col) in cols.iter().enumerate() {
            let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
            let mut og = vec![0.0f32; oc_per_g * ncols];
            gemm::gemm_nn(wg, col, &mut og, oc_per_g, kvol, ncols);
            // Scatter [OCg, N·OHOW] (sample-major columns) into NCHW layout.
            for s in 0..n {
                for ol in 0..oc_per_g {
                    let src = &og[ol * ncols + s * hw_out..][..hw_out];
                    out[s * oc * hw_out + (g * oc_per_g + ol) * hw_out..][..hw_out]
                        .copy_from_slice(src);
                }
            }
        }
        let value = Tensor::from_vec(out, &[n, oc, oh, ow]).expect("conv2d output");

        let need = (self.requires_grad(), weight.requires_grad());
        Var::from_op(value, vec![self.clone(), weight.clone()], move |grad| {
            let mut gx = need.0.then(|| vec![0.0f32; n * sample_stride]);
            let mut gw = need.1.then(|| vec![0.0f32; oc * kvol]);
            // dcol_g is needed per group before the sample-parallel col2im
            // scatter, so groups are processed in two phases.
            let mut dcols: Vec<Vec<f32>> = Vec::with_capacity(if need.0 { groups } else { 0 });
            for (g, col) in cols.iter().enumerate() {
                // Gather grad group g into [OCg, N·OHOW] sample-major columns.
                let mut go = vec![0.0f32; oc_per_g * ncols];
                for s in 0..n {
                    for ol in 0..oc_per_g {
                        let src = &grad.data()
                            [s * oc * hw_out + (g * oc_per_g + ol) * hw_out..][..hw_out];
                        go[ol * ncols + s * hw_out..][..hw_out].copy_from_slice(src);
                    }
                }
                if let Some(gw) = gw.as_mut() {
                    // dW_g += go [OCg, N·OHOW] x col_g^T [N·OHOW, kvol]
                    let dst = &mut gw[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                    gemm::gemm_nt(&go, col, dst, oc_per_g, ncols, kvol);
                }
                if need.0 {
                    // dcol_g = W_g^T [kvol, OCg] x go [OCg, N·OHOW]
                    let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                    let mut dcol = vec![0.0f32; kvol * ncols];
                    gemm::gemm_tn(wg, &go, &mut dcol, oc_per_g, kvol, ncols);
                    dcols.push(dcol);
                }
            }
            if let Some(gx) = gx.as_mut() {
                // col2im is independent per sample; samples own disjoint
                // contiguous [C, H, W] gradient slices, so they scatter in
                // parallel (bit-identical for any thread count).
                let threads = if n * groups * kvol * hw_out >= par::PAR_MIN_ELEMS {
                    par::max_threads()
                } else {
                    1
                };
                par::for_each_chunk_mut(gx, sample_stride, threads, |s0, chunk| {
                    let mut dcol_s = vec![0.0f32; kvol * hw_out];
                    for (ds, slice) in chunk.chunks_mut(sample_stride).enumerate() {
                        let s = s0 + ds;
                        for (g, dcol) in dcols.iter().enumerate() {
                            for r in 0..kvol {
                                dcol_s[r * hw_out..(r + 1) * hw_out].copy_from_slice(
                                    &dcol[r * ncols + s * hw_out..][..hw_out],
                                );
                            }
                            let gslice = col2im(&dcol_s, &geom);
                            let dst = &mut slice[g * group_in..(g + 1) * group_in];
                            for (d, v) in dst.iter_mut().zip(gslice) {
                                *d += v;
                            }
                        }
                    }
                });
            }
            vec![
                gx.map(|v| Tensor::from_vec(v, &[n, c, h, width]).expect("conv2d dX")),
                gw.map(|v| Tensor::from_vec(v, &[oc, c_per_g, kh, kw]).expect("conv2d dW")),
            ]
        })
    }

    /// Add a per-channel bias `[C]` over an NCHW batch.
    ///
    /// # Panics
    /// Panics when `self` is not 4-D or `bias` is not `[C]`.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let xs = self.shape();
        assert_eq!(xs.len(), 4, "add_channel_bias input must be NCHW");
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        assert_eq!(bias.shape(), vec![c], "bias must be [C]");
        let hw = h * w;
        let mut out = self.value_clone().into_vec();
        {
            let b = bias.value();
            for s in 0..n {
                for ch in 0..c {
                    let base = s * c * hw + ch * hw;
                    let bv = b.data()[ch];
                    for px in &mut out[base..base + hw] {
                        *px += bv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &xs).expect("add_channel_bias");
        let need = (self.requires_grad(), bias.requires_grad());
        Var::from_op(value, vec![self.clone(), bias.clone()], move |g| {
            let gb = need.1.then(|| {
                let mut acc = vec![0.0f32; c];
                for s in 0..n {
                    for (ch, a) in acc.iter_mut().enumerate() {
                        let base = s * c * hw + ch * hw;
                        *a += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                Tensor::from_vec(acc, &[c]).expect("channel bias grad")
            });
            vec![need.0.then(|| g.clone()), gb]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    /// Direct (definition-level) convolution for cross-checking.
    fn conv_naive(
        x: &Tensor,
        w: &Tensor,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Tensor {
        let (n, _c, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oc, cpg, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (wid + 2 * pad - kw) / stride + 1;
        let ocpg = oc / groups;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                let g = o / ocpg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..cpg {
                            let cin = g * cpg + ci;
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                        continue;
                                    }
                                    acc += x.at(&[s, cin, iy as usize, ix as usize]).unwrap()
                                        * w.at(&[o, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive_dense() {
        let mut rng = seeded_rng(21);
        let x = Tensor::randn(&[2, 3, 6, 5], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let out = Var::constant(x.clone())
                .conv2d(&Var::constant(w.clone()), stride, pad, 1);
            let expected = conv_naive(&x, &w, stride, pad, 1);
            assert_eq!(out.shape(), expected.shape().to_vec());
            for (a, b) in out.value().data().iter().zip(expected.data()) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b} (stride {stride} pad {pad})");
            }
        }
    }

    #[test]
    fn conv2d_matches_naive_grouped_and_depthwise() {
        let mut rng = seeded_rng(22);
        let x = Tensor::randn(&[1, 4, 5, 5], &mut rng);
        // Grouped: groups=2.
        let wg = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wg.clone()), 1, 1, 2);
        let expected = conv_naive(&x, &wg, 1, 1, 2);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
        // Depthwise: groups=C=4, OC=4.
        let wd = Tensor::randn(&[4, 1, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wd.clone()), 1, 1, 4);
        let expected = conv_naive(&x, &wd, 1, 1, 4);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn conv2d_1x1_is_channel_mixing() {
        let mut rng = seeded_rng(23);
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2, 1, 1], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 0, 1);
        let expected = conv_naive(&x, &w, 1, 0, 1);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn channel_bias_grad() {
        let x = Var::parameter(Tensor::zeros(&[2, 3, 2, 2]));
        let b = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = x.add_channel_bias(&b);
        assert_eq!(y.value().at(&[0, 1, 0, 0]).unwrap(), 2.0);
        y.sum_all().backward();
        // Each channel has N * H * W = 2*2*2 = 8 contributing pixels.
        assert_eq!(b.grad().unwrap().data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn conv2d_rejects_bad_groups() {
        let x = Var::constant(Tensor::zeros(&[1, 3, 4, 4]));
        let w = Var::constant(Tensor::zeros(&[4, 1, 3, 3]));
        let _ = x.conv2d(&w, 1, 1, 2); // 2 does not divide C=3
    }
}
