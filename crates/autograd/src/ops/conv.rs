//! 2-D convolution (with groups/depthwise support) via **fused** im2col +
//! GEMM lowering.
//!
//! The forward pass never materialises the full `[kvol, N·OH·OW]` column
//! matrix: it lowers and consumes the batch **panel by panel**
//! ([`im2col_panel`] builds [`FUSE_PANEL`] columns at a time, one GEMM per
//! panel against the group's weight matrix), so peak lowering memory is
//! `O(kvol · FUSE_PANEL)` per worker instead of `O(kvol · N·OH·OW)` — a
//! `KH·KW`-fold saving over the input itself, which matters most in the
//! inference-heavy phases (eval, the distillation game) where the old
//! implementation also *retained* the column matrices for a backward pass
//! that never came. Panels are the unit of parallelism (`par::map_indexed`,
//! one panel per worker at a time) and every panel is computed by the same
//! float sequence regardless of thread assignment, so results stay
//! bit-identical for every thread count — and, because a GEMM's per-element
//! accumulation order is independent of how the N dimension is split, the
//! fused forward is bit-identical to the unfused whole-batch GEMM it
//! replaced.
//!
//! The backward pass still wants whole-batch column matrices (`dW += go ×
//! colᵀ` is one big `nt` GEMM), so it **recomputes** `im2col_batch` from
//! the saved input instead of retaining it from the forward — trading one
//! extra lowering per backward for not holding a `KH·KW`-times-input-sized
//! buffer across the whole forward/backward gap. The recomputed matrix is
//! bitwise the one the old code retained, so gradients are unchanged.
//!
//! The forward GEMMs run in the caller's [`fedzkt_tensor::ComputeFormat`]
//! scope, resolved once at entry (worker threads don't inherit the
//! thread-local scope — see the `compute` module docs); the backward GEMMs
//! always run in f32, since int8 is an inference-only format.

use crate::Var;
use fedzkt_tensor::compute::{current_format, ComputeFormat};
use fedzkt_tensor::ops::{col2im, gemm, im2col_batch, im2col_panel, Conv2dGeometry};
use fedzkt_tensor::typed;
use fedzkt_tensor::{par, Tensor};

/// Columns lowered and consumed per fused-forward panel. 256 output pixels
/// keeps a worker's column panel (`kvol × 256` floats, ≤ 1.2 MiB for the
/// zoo's widest `kvol = 1152`) L2-resident next to the weight matrix while
/// still amortising the per-panel GEMM setup.
const FUSE_PANEL: usize = 256;

impl Var {
    /// 2-D convolution over an NCHW batch.
    ///
    /// * `self`: input `[N, C, H, W]`
    /// * `weight`: kernels `[OC, C / groups, KH, KW]`
    /// * `stride`, `pad`: applied to both spatial dims
    /// * `groups`: channel groups; `groups == C` with `OC == C` gives a
    ///   depthwise convolution (MobileNetV2/ShuffleNetV2 building block)
    ///
    /// # Panics
    /// Panics when shapes are inconsistent, `groups` does not divide both
    /// `C` and `OC`, or the kernel does not fit the padded input.
    pub fn conv2d(&self, weight: &Var, stride: usize, pad: usize, groups: usize) -> Var {
        let x = self.value_clone();
        let w = weight.value_clone();
        let xs = x.shape().to_vec();
        let ws = w.shape().to_vec();
        assert_eq!(xs.len(), 4, "conv2d input must be [N, C, H, W], got {xs:?}");
        assert_eq!(ws.len(), 4, "conv2d weight must be [OC, C/g, KH, KW], got {ws:?}");
        let (n, c, h, width) = (xs[0], xs[1], xs[2], xs[3]);
        let (oc, c_per_g, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
        assert!(groups > 0 && c.is_multiple_of(groups) && oc.is_multiple_of(groups), "groups {groups} must divide C={c} and OC={oc}");
        assert_eq!(c / groups, c_per_g, "weight in-channels {c_per_g} != C/groups {}", c / groups);

        let geom = Conv2dGeometry::new(c_per_g, h, width, kh, kw, stride, pad)
            .expect("conv2d geometry");
        let (oh, ow) = (geom.out_h, geom.out_w);
        let oc_per_g = oc / groups;
        let group_in = c_per_g * h * width;
        let kvol = c_per_g * kh * kw;

        // Forward: fused lowering. Per group, the column matrix is built
        // and consumed FUSE_PANEL columns at a time:
        //   out_g[:, c0..c0+pw] = W_g [OCg, kvol] x col_g[:, c0..c0+pw],
        // with col_g's columns sample-major (im2col_panel). Panels are
        // independent, so they run one-per-worker; splitting N this way
        // leaves each output element's k-accumulation order untouched, so
        // the result is bit-identical to the unfused whole-batch GEMM.
        let hw_out = oh * ow;
        let ncols = n * hw_out;
        let sample_stride = c * h * width;
        let format = current_format();
        let mut out = vec![0.0f32; n * oc * hw_out];
        let panels = ncols.div_ceil(FUSE_PANEL.max(1));
        let threads =
            if oc * kvol * ncols >= gemm::PAR_MIN_MACS { par::max_threads() } else { 1 };
        for g in 0..groups {
            let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
            let panel_outs: Vec<Vec<f32>> = par::map_indexed(panels, threads, |p| {
                let c0 = p * FUSE_PANEL;
                let pw = FUSE_PANEL.min(ncols - c0);
                let mut col = vec![0.0f32; kvol * pw];
                im2col_panel(x.data(), g * group_in, sample_stride, n, &geom, c0, &mut col);
                let mut og = vec![0.0f32; oc_per_g * pw];
                // Explicit-format calls: workers don't inherit the caller's
                // thread-local compute scope. Full panels have a
                // compile-time width, so the typed wrapper proves the
                // column/output lengths by construction and enters below
                // the shape guards; the last (narrower) panel keeps the
                // dynamic entry. Same kernels, same order — bit-identical.
                if pw == FUSE_PANEL && typed::enabled() {
                    typed::gemm_nn_cols_with::<FUSE_PANEL>(
                        format,
                        wg,
                        typed::Rows2D::with_rows(&col, kvol),
                        typed::RowsMut2D::with_rows(&mut og, oc_per_g),
                    );
                } else {
                    gemm::gemm_nn_with(format, wg, &col, &mut og, oc_per_g, kvol, pw);
                }
                og
            });
            // Scatter [OCg, panel] blocks (sample-major columns) into NCHW.
            for (p, og) in panel_outs.iter().enumerate() {
                let c0 = p * FUSE_PANEL;
                let pw = FUSE_PANEL.min(ncols - c0);
                for ol in 0..oc_per_g {
                    let src_row = &og[ol * pw..(ol + 1) * pw];
                    let mut j = 0usize;
                    while j < pw {
                        let s = (c0 + j) / hw_out;
                        let px = (c0 + j) % hw_out;
                        let run = (hw_out - px).min(pw - j);
                        out[s * oc * hw_out + (g * oc_per_g + ol) * hw_out + px..][..run]
                            .copy_from_slice(&src_row[j..j + run]);
                        j += run;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &[n, oc, oh, ow]).expect("conv2d output");

        let need = (self.requires_grad(), weight.requires_grad());
        Var::from_op(value, vec![self.clone(), weight.clone()], move |grad| {
            let mut gx = need.0.then(|| vec![0.0f32; n * sample_stride]);
            let mut gw = need.1.then(|| vec![0.0f32; oc * kvol]);
            // dcol_g is needed per group before the sample-parallel col2im
            // scatter, so groups are processed in two phases.
            let mut dcols: Vec<Vec<f32>> = Vec::with_capacity(if need.0 { groups } else { 0 });
            for g in 0..groups {
                // Recompute this group's whole-batch column matrix from the
                // saved input — the forward consumed it panel by panel and
                // deliberately retained nothing (see module docs). Bitwise
                // the matrix the pre-fusion code kept alive.
                let col = im2col_batch(x.data(), g * group_in, sample_stride, n, &geom);
                let col = &col;
                // Gather grad group g into [OCg, N·OHOW] sample-major columns.
                let mut go = vec![0.0f32; oc_per_g * ncols];
                for s in 0..n {
                    for ol in 0..oc_per_g {
                        let src = &grad.data()
                            [s * oc * hw_out + (g * oc_per_g + ol) * hw_out..][..hw_out];
                        go[ol * ncols + s * hw_out..][..hw_out].copy_from_slice(src);
                    }
                }
                if let Some(gw) = gw.as_mut() {
                    // dW_g += go [OCg, N·OHOW] x col_g^T [N·OHOW, kvol].
                    // Explicit f32: gradients must never take the lossy
                    // int8 path, whatever scope the caller left active.
                    let dst = &mut gw[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                    gemm::gemm_nt_with(ComputeFormat::F32, &go, col, dst, oc_per_g, ncols, kvol);
                }
                if need.0 {
                    // dcol_g = W_g^T [kvol, OCg] x go [OCg, N·OHOW]
                    let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                    let mut dcol = vec![0.0f32; kvol * ncols];
                    gemm::gemm_tn_with(
                        ComputeFormat::F32,
                        wg,
                        &go,
                        &mut dcol,
                        oc_per_g,
                        kvol,
                        ncols,
                    );
                    dcols.push(dcol);
                }
            }
            if let Some(gx) = gx.as_mut() {
                // col2im is independent per sample; samples own disjoint
                // contiguous [C, H, W] gradient slices, so they scatter in
                // parallel (bit-identical for any thread count).
                let threads = if n * groups * kvol * hw_out >= par::PAR_MIN_ELEMS {
                    par::max_threads()
                } else {
                    1
                };
                par::for_each_chunk_mut(gx, sample_stride, threads, |s0, chunk| {
                    let mut dcol_s = vec![0.0f32; kvol * hw_out];
                    for (ds, slice) in chunk.chunks_mut(sample_stride).enumerate() {
                        let s = s0 + ds;
                        for (g, dcol) in dcols.iter().enumerate() {
                            for r in 0..kvol {
                                dcol_s[r * hw_out..(r + 1) * hw_out].copy_from_slice(
                                    &dcol[r * ncols + s * hw_out..][..hw_out],
                                );
                            }
                            let gslice = col2im(&dcol_s, &geom);
                            let dst = &mut slice[g * group_in..(g + 1) * group_in];
                            for (d, v) in dst.iter_mut().zip(gslice) {
                                *d += v;
                            }
                        }
                    }
                });
            }
            vec![
                gx.map(|v| Tensor::from_vec(v, &[n, c, h, width]).expect("conv2d dX")),
                gw.map(|v| Tensor::from_vec(v, &[oc, c_per_g, kh, kw]).expect("conv2d dW")),
            ]
        })
    }

    /// Add a per-channel bias `[C]` over an NCHW batch.
    ///
    /// # Panics
    /// Panics when `self` is not 4-D or `bias` is not `[C]`.
    pub fn add_channel_bias(&self, bias: &Var) -> Var {
        let xs = self.shape();
        assert_eq!(xs.len(), 4, "add_channel_bias input must be NCHW");
        let (n, c, h, w) = (xs[0], xs[1], xs[2], xs[3]);
        assert_eq!(bias.shape(), vec![c], "bias must be [C]");
        let hw = h * w;
        let mut out = self.value_clone().into_vec();
        {
            let b = bias.value();
            for s in 0..n {
                for ch in 0..c {
                    let base = s * c * hw + ch * hw;
                    let bv = b.data()[ch];
                    for px in &mut out[base..base + hw] {
                        *px += bv;
                    }
                }
            }
        }
        let value = Tensor::from_vec(out, &xs).expect("add_channel_bias");
        let need = (self.requires_grad(), bias.requires_grad());
        Var::from_op(value, vec![self.clone(), bias.clone()], move |g| {
            let gb = need.1.then(|| {
                let mut acc = vec![0.0f32; c];
                for s in 0..n {
                    for (ch, a) in acc.iter_mut().enumerate() {
                        let base = s * c * hw + ch * hw;
                        *a += g.data()[base..base + hw].iter().sum::<f32>();
                    }
                }
                Tensor::from_vec(acc, &[c]).expect("channel bias grad")
            });
            vec![need.0.then(|| g.clone()), gb]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    /// Direct (definition-level) convolution for cross-checking.
    fn conv_naive(
        x: &Tensor,
        w: &Tensor,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Tensor {
        let (n, _c, h, wid) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oc, cpg, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
        let oh = (h + 2 * pad - kh) / stride + 1;
        let ow = (wid + 2 * pad - kw) / stride + 1;
        let ocpg = oc / groups;
        let mut out = Tensor::zeros(&[n, oc, oh, ow]);
        for s in 0..n {
            for o in 0..oc {
                let g = o / ocpg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for ci in 0..cpg {
                            let cin = g * cpg + ci;
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = (oy * stride + ky) as isize - pad as isize;
                                    let ix = (ox * stride + kx) as isize - pad as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                        continue;
                                    }
                                    acc += x.at(&[s, cin, iy as usize, ix as usize]).unwrap()
                                        * w.at(&[o, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, o, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn conv2d_matches_naive_dense() {
        let mut rng = seeded_rng(21);
        let x = Tensor::randn(&[2, 3, 6, 5], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let out = Var::constant(x.clone())
                .conv2d(&Var::constant(w.clone()), stride, pad, 1);
            let expected = conv_naive(&x, &w, stride, pad, 1);
            assert_eq!(out.shape(), expected.shape().to_vec());
            for (a, b) in out.value().data().iter().zip(expected.data()) {
                assert!((a - b).abs() < 1e-3, "{a} vs {b} (stride {stride} pad {pad})");
            }
        }
    }

    #[test]
    fn conv2d_matches_naive_grouped_and_depthwise() {
        let mut rng = seeded_rng(22);
        let x = Tensor::randn(&[1, 4, 5, 5], &mut rng);
        // Grouped: groups=2.
        let wg = Tensor::randn(&[6, 2, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wg.clone()), 1, 1, 2);
        let expected = conv_naive(&x, &wg, 1, 1, 2);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
        // Depthwise: groups=C=4, OC=4.
        let wd = Tensor::randn(&[4, 1, 3, 3], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(wd.clone()), 1, 1, 4);
        let expected = conv_naive(&x, &wd, 1, 1, 4);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn conv2d_1x1_is_channel_mixing() {
        let mut rng = seeded_rng(23);
        let x = Tensor::randn(&[1, 2, 3, 3], &mut rng);
        let w = Tensor::randn(&[3, 2, 1, 1], &mut rng);
        let out = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 0, 1);
        let expected = conv_naive(&x, &w, 1, 0, 1);
        for (a, b) in out.value().data().iter().zip(expected.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    /// The fused panel-by-panel forward must reproduce the unfused
    /// whole-batch lowering bit for bit (column splitting never touches an
    /// output element's k-accumulation order). Built here by hand the way
    /// the pre-fusion code did it: one im2col_batch + one GEMM per group.
    #[test]
    fn fused_forward_bit_identical_to_unfused_reference() {
        let mut rng = seeded_rng(31);
        // 2 groups; ncols = 2·6·6 = 72 per... sized so ncols spans several
        // panels only when FUSE_PANEL is small — also run a big case that
        // genuinely straddles panel boundaries (ncols = 4·144 = 576).
        for (xs, ws, groups) in [
            ([2usize, 4, 6, 6], [6usize, 2, 3, 3], 2usize),
            ([4, 3, 12, 12], [8, 3, 3, 3], 1),
        ] {
            let x = Tensor::randn(&xs, &mut rng);
            let w = Tensor::randn(&ws, &mut rng);
            let fused = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 1, groups);
            let (n, c, h, wid) = (xs[0], xs[1], xs[2], xs[3]);
            let (oc, cpg, kh, kw) = (ws[0], ws[1], ws[2], ws[3]);
            let geom = Conv2dGeometry::new(cpg, h, wid, kh, kw, 1, 1).unwrap();
            let (oh, ow) = (geom.out_h, geom.out_w);
            let (hw_out, kvol) = (oh * ow, cpg * kh * kw);
            let (ncols, oc_per_g) = (n * hw_out, oc / groups);
            let mut expected = vec![0.0f32; n * oc * hw_out];
            for g in 0..groups {
                let col =
                    im2col_batch(x.data(), g * cpg * h * wid, c * h * wid, n, &geom);
                let wg = &w.data()[g * oc_per_g * kvol..(g + 1) * oc_per_g * kvol];
                let mut og = vec![0.0f32; oc_per_g * ncols];
                gemm::gemm_nn(wg, &col, &mut og, oc_per_g, kvol, ncols);
                for s in 0..n {
                    for ol in 0..oc_per_g {
                        expected[s * oc * hw_out + (g * oc_per_g + ol) * hw_out..][..hw_out]
                            .copy_from_slice(&og[ol * ncols + s * hw_out..][..hw_out]);
                    }
                }
            }
            for (a, b) in fused.value().data().iter().zip(&expected) {
                assert_eq!(a.to_bits(), b.to_bits(), "{xs:?} x {ws:?}");
            }
        }
    }

    /// The typed full-panel path must be bit-identical to the dynamic
    /// panel GEMM it shims (it enters the same dispatch below the shape
    /// guards). ncols = 576 exercises two full `FUSE_PANEL` panels *and* a
    /// narrower last panel, which stays on the dynamic entry.
    #[test]
    fn typed_panel_path_bit_identical_to_dynamic() {
        let mut rng = seeded_rng(33);
        let x = Tensor::randn(&[4, 3, 12, 12], &mut rng);
        let w = Tensor::randn(&[8, 3, 3, 3], &mut rng);
        assert!(typed::enabled(), "typed paths default on");
        let on = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 1, 1);
        typed::set_enabled(false);
        let off = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 1, 1);
        typed::set_enabled(true);
        for (a, b) in on.value().data().iter().zip(off.value().data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A conv forward inside an int8 compute scope stays close to the f32
    /// result (the scope must reach the per-panel GEMMs through the
    /// explicit-format plumbing, workers notwithstanding).
    #[test]
    fn conv2d_int8_scope_approximates_f32() {
        let mut rng = seeded_rng(32);
        let x = Tensor::randn(&[2, 3, 8, 8], &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], &mut rng);
        let f32_out = Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 1, 1);
        let q_out = fedzkt_tensor::compute::with_format(ComputeFormat::Int8, || {
            Var::constant(x.clone()).conv2d(&Var::constant(w.clone()), 1, 1, 1)
        });
        let mut max_err = 0.0f32;
        let mut distinct = false;
        for (a, b) in q_out.value().data().iter().zip(f32_out.value().data()) {
            max_err = max_err.max((a - b).abs());
            distinct |= a.to_bits() != b.to_bits();
        }
        // kvol = 27 taps; the codec scale/2 bound accumulates well under
        // 0.5 for unit-normal data — and the path must actually quantize.
        assert!(max_err < 0.5, "int8 conv drifted: {max_err}");
        assert!(distinct, "int8 scope did not reach the conv GEMMs");
    }

    #[test]
    fn channel_bias_grad() {
        let x = Var::parameter(Tensor::zeros(&[2, 3, 2, 2]));
        let b = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = x.add_channel_bias(&b);
        assert_eq!(y.value().at(&[0, 1, 0, 0]).unwrap(), 2.0);
        y.sum_all().backward();
        // Each channel has N * H * W = 2*2*2 = 8 contributing pixels.
        assert_eq!(b.grad().unwrap().data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "groups")]
    fn conv2d_rejects_bad_groups() {
        let x = Var::constant(Tensor::zeros(&[1, 3, 4, 4]));
        let w = Var::constant(Tensor::zeros(&[4, 1, 3, 3]));
        let _ = x.conv2d(&w, 1, 1, 2); // 2 does not divide C=3
    }
}
