//! Elementwise arithmetic ops.

use crate::Var;
use fedzkt_tensor::Tensor;

impl Var {
    /// Elementwise sum of two same-shaped nodes.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Var) -> Var {
        let value = self.value().add(&rhs.value()).expect("add");
        let need = (self.requires_grad(), rhs.requires_grad());
        Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            vec![
                need.0.then(|| g.clone()),
                need.1.then(|| g.clone()),
            ]
        })
    }

    /// Elementwise difference of two same-shaped nodes.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, rhs: &Var) -> Var {
        let value = self.value().sub(&rhs.value()).expect("sub");
        let need = (self.requires_grad(), rhs.requires_grad());
        Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            vec![
                need.0.then(|| g.clone()),
                need.1.then(|| g.mul_scalar(-1.0)),
            ]
        })
    }

    /// Elementwise (Hadamard) product of two same-shaped nodes.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn mul(&self, rhs: &Var) -> Var {
        let a = self.value_clone();
        let b = rhs.value_clone();
        let value = a.mul(&b).expect("mul");
        let need = (self.requires_grad(), rhs.requires_grad());
        Var::from_op(value, vec![self.clone(), rhs.clone()], move |g| {
            vec![
                need.0.then(|| g.mul(&b).expect("mul backward")),
                need.1.then(|| g.mul(&a).expect("mul backward")),
            ]
        })
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Var {
        let value = self.value().mul_scalar(s);
        Var::from_op(value, vec![self.clone()], move |g| vec![Some(g.mul_scalar(s))])
    }

    /// Negate every element.
    pub fn neg(&self) -> Var {
        self.scale(-1.0)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Var {
        let value = self.value().add_scalar(s);
        Var::from_op(value, vec![self.clone()], |g| vec![Some(g.clone())])
    }

    /// Elementwise absolute value. The subgradient at zero is taken as 0.
    pub fn abs(&self) -> Var {
        let x = self.value_clone();
        let value = x.map(f32::abs);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&x, |gi, xi| gi * xi.signum() * f32::from(xi != 0.0))
                    .expect("abs backward"),
            )]
        })
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let x = self.value_clone();
        let value = x.map(|v| v * v);
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(g.zip_map(&x, |gi, xi| gi * 2.0 * xi).expect("square backward"))]
        })
    }

    /// Elementwise natural logarithm of `x + eps` (clamped below at `eps`
    /// for numerical safety — used by the KL distillation loss on softmax
    /// probabilities).
    pub fn ln_eps(&self, eps: f32) -> Var {
        let x = self.value_clone();
        let value = x.map(|v| (v.max(0.0) + eps).ln());
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(
                g.zip_map(&x, |gi, xi| gi / (xi.max(0.0) + eps)).expect("ln backward"),
            )]
        })
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Var {
        let value = self.value().map(f32::exp);
        let y = value.clone();
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(g.mul(&y).expect("exp backward"))]
        })
    }

    /// Add a bias vector over the last dimension: `[.., D] + [D]`.
    ///
    /// # Panics
    /// Panics when `bias` is not `[D]`.
    pub fn add_bias(&self, bias: &Var) -> Var {
        let value = self.value().add_bias(&bias.value()).expect("add_bias");
        let d = bias.value().len();
        let need = (self.requires_grad(), bias.requires_grad());
        Var::from_op(value, vec![self.clone(), bias.clone()], move |g| {
            let gb = need.1.then(|| {
                let mut acc = vec![0.0f32; d];
                for (i, &gi) in g.data().iter().enumerate() {
                    acc[i % d] += gi;
                }
                Tensor::from_vec(acc, &[d]).expect("bias grad")
            });
            vec![need.0.then(|| g.clone()), gb]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: Vec<f32>) -> Var {
        let n = data.len();
        Var::parameter(Tensor::from_vec(data, &[n]).unwrap())
    }

    #[test]
    fn add_sub_grads() {
        let a = v(vec![1.0, 2.0]);
        let b = v(vec![3.0, 4.0]);
        a.add(&b).sub(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[0.0, 0.0]);
    }

    #[test]
    fn mul_grads_are_cross_values() {
        let a = v(vec![2.0, 3.0]);
        let b = v(vec![5.0, 7.0]);
        a.mul(&b).sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[5.0, 7.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn abs_subgradient() {
        let a = v(vec![-2.0, 0.0, 3.0]);
        a.abs().sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn square_grad() {
        let a = v(vec![3.0]);
        a.square().sum_all().backward();
        assert_eq!(a.grad().unwrap().data(), &[6.0]);
    }

    #[test]
    fn exp_ln_inverse_grad() {
        let a = v(vec![0.5]);
        let y = a.exp().ln_eps(0.0).sum_all();
        y.backward();
        let g = a.grad().unwrap().data()[0];
        assert!((g - 1.0).abs() < 1e-4, "{g}");
    }

    #[test]
    fn add_bias_reduces_over_batch() {
        let x = Var::parameter(Tensor::zeros(&[3, 2]));
        let b = v(vec![1.0, 2.0]);
        x.add_bias(&b).sum_all().backward();
        assert_eq!(b.grad().unwrap().data(), &[3.0, 3.0]);
        assert_eq!(x.grad().unwrap().shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "add")]
    fn add_panics_on_shape_mismatch() {
        let a = v(vec![1.0, 2.0]);
        let b = v(vec![1.0, 2.0, 3.0]);
        let _ = a.add(&b);
    }
}
