//! Reductions to scalars.

use crate::Var;
use fedzkt_tensor::Tensor;

impl Var {
    /// Sum of all elements, as a scalar node.
    pub fn sum_all(&self) -> Var {
        let shape = self.shape();
        let value = Tensor::scalar(self.value().sum());
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(Tensor::full(&shape, g.item()))]
        })
    }

    /// Mean of all elements, as a scalar node.
    ///
    /// # Panics
    /// Panics on empty tensors (division by zero element count).
    pub fn mean_all(&self) -> Var {
        let shape = self.shape();
        let n = self.value().len();
        assert!(n > 0, "mean_all on empty tensor");
        let value = Tensor::scalar(self.value().mean());
        Var::from_op(value, vec![self.clone()], move |g| {
            vec![Some(Tensor::full(&shape, g.item() / n as f32))]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_all_backward_is_ones() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        x.sum_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_all_backward_is_uniform() {
        let x = Var::parameter(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        x.mean_all().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn sum_all_value() {
        let x = Var::constant(Tensor::from_vec(vec![1.5, 2.5], &[2]).unwrap());
        assert_eq!(x.sum_all().value().item(), 4.0);
    }
}
