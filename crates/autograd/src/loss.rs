//! Loss functions, including the three distillation losses compared in
//! §III-B2 of the FedZKT paper (Eqs. 3–5).
//!
//! All losses are **means over the batch** of per-sample values, matching
//! the paper's expectation formulation. They are built so gradients flow
//! into *every* `Var` argument — student, teacher(s) and, transitively, the
//! generated input batch — which the adversarial generator update (Eq. 2)
//! requires.

use crate::Var;
use fedzkt_tensor::Tensor;

/// Numerical floor inside logarithms of probabilities.
const LN_EPS: f32 = 1e-8;

/// Elementwise mean of several same-shaped nodes, e.g. the on-device
/// ensemble `f_ens(x) = (1/|K|) Σ_k f_k(x)`.
///
/// # Panics
/// Panics when `vars` is empty or shapes disagree.
pub fn mean_vars(vars: &[&Var]) -> Var {
    assert!(!vars.is_empty(), "mean_vars of zero nodes");
    let mut acc = vars[0].clone();
    for v in &vars[1..] {
        acc = acc.add(v);
    }
    acc.scale(1.0 / vars.len() as f32)
}

/// Mean cross-entropy between `logits` (`[N, K]`) and integer labels.
///
/// Fused, numerically stable forward (log-sum-exp) and backward
/// (`softmax − onehot`). This is `L_CE` in Algorithm 2 of the paper.
///
/// # Panics
/// Panics when shapes disagree or a label is out of range.
pub fn cross_entropy(logits: &Var, labels: &[usize]) -> Var {
    let values = logits.value_clone();
    assert_eq!(values.ndim(), 2, "cross_entropy expects [N, K] logits");
    let (n, k) = (values.shape()[0], values.shape()[1]);
    assert_eq!(labels.len(), n, "labels/batch size mismatch");
    assert!(labels.iter().all(|&l| l < k), "label out of range");

    let probs = values.softmax_rows().expect("softmax");
    let mut total = 0.0f32;
    for (i, &label) in labels.iter().enumerate() {
        total -= probs.data()[i * k + label].max(1e-30).ln();
    }
    let value = Tensor::scalar(total / n as f32);
    let labels = labels.to_vec();
    Var::from_op(value, vec![logits.clone()], move |g| {
        let scale = g.item() / n as f32;
        let mut dx = probs.data().to_vec();
        for (i, &label) in labels.iter().enumerate() {
            dx[i * k + label] -= 1.0;
        }
        for v in &mut dx {
            *v *= scale;
        }
        vec![Some(Tensor::from_vec(dx, &[n, k]).expect("ce backward"))]
    })
}

/// Mean squared error between two same-shaped nodes.
///
/// # Panics
/// Panics on shape mismatch.
pub fn mse(a: &Var, b: &Var) -> Var {
    a.sub(b).square().mean_all()
}

/// KL divergence `KL(p ‖ q)` between two probability nodes (post-softmax),
/// summed over classes and averaged over the batch.
///
/// With `p` the global model's probabilities and `q` the device ensemble's,
/// this is exactly Eq. 3 of the paper. Gradients flow into both `p` and `q`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn kl_div_probs(p: &Var, q: &Var) -> Var {
    let batch = p.shape()[0].max(1) as f32;
    p.mul(&p.ln_eps(LN_EPS).sub(&q.ln_eps(LN_EPS))).sum_all().scale(1.0 / batch)
}

/// Proximal penalty `‖w − w_ref‖²` of Eq. 9, summed over a parameter list.
///
/// Used by the FedZKT device update to damp drift under non-IID data.
/// `references` are the parameter values received from the server at the
/// previous round.
///
/// # Panics
/// Panics when the lists have different lengths or shapes disagree.
pub fn l2_penalty(params: &[Var], references: &[Tensor]) -> Var {
    assert_eq!(params.len(), references.len(), "params/references length mismatch");
    let mut total: Option<Var> = None;
    for (w, r) in params.iter().zip(references) {
        let term = w.sub(&Var::constant(r.clone())).square().sum_all();
        total = Some(match total {
            Some(t) => t.add(&term),
            None => term,
        });
    }
    total.expect("l2_penalty over empty parameter list")
}

/// The disagreement loss `L` of the zero-shot distillation game (Eq. 2),
/// selecting between the paper's three candidates (§III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DistillLoss {
    /// KL divergence on softmax outputs (Eq. 3) — suffers gradient
    /// vanishing as the student converges to the teacher.
    Kl,
    /// ℓ1 distance on raw logits (Eq. 4) — large, unstable gradients when
    /// averaging heterogeneous on-device logits.
    LogitL1,
    /// **Softmax-ℓ1 (SL) loss** (Eq. 5) — the paper's proposal: ℓ1 distance
    /// on softmax outputs; bounded gradients that do not vanish.
    Sl,
}

impl std::fmt::Display for DistillLoss {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistillLoss::Kl => write!(f, "KL-divergence"),
            DistillLoss::LogitL1 => write!(f, "l1-norm"),
            DistillLoss::Sl => write!(f, "SL"),
        }
    }
}

impl DistillLoss {
    /// Evaluate the disagreement between student logits `u` (`[N, K]`) and
    /// the per-device teacher logits `v_k`, averaged per the paper:
    ///
    /// * `Kl`, `Sl` — the teacher signal is the mean of the device
    ///   **softmax** outputs;
    /// * `LogitL1` — the teacher signal is the mean of the device
    ///   **logits** (Eq. 4).
    ///
    /// Gradients flow into the student and every teacher (and through them
    /// into a generated input batch, when one is on the tape).
    ///
    /// # Panics
    /// Panics when `teacher_logits` is empty or shapes disagree.
    pub fn eval(&self, student_logits: &Var, teacher_logits: &[&Var]) -> Var {
        assert!(!teacher_logits.is_empty(), "distill loss needs at least one teacher");
        let batch = student_logits.shape()[0].max(1) as f32;
        match self {
            DistillLoss::Kl => {
                let u = student_logits.softmax();
                let probs: Vec<Var> = teacher_logits.iter().map(|t| t.softmax()).collect();
                let refs: Vec<&Var> = probs.iter().collect();
                let v_bar = mean_vars(&refs);
                kl_div_probs(&u, &v_bar)
            }
            DistillLoss::LogitL1 => {
                let v_bar = mean_vars(teacher_logits);
                student_logits.sub(&v_bar).abs().sum_all().scale(1.0 / batch)
            }
            DistillLoss::Sl => {
                let u = student_logits.softmax();
                let probs: Vec<Var> = teacher_logits.iter().map(|t| t.softmax()).collect();
                let refs: Vec<&Var> = probs.iter().collect();
                let v_bar = mean_vars(&refs);
                u.sub(&v_bar).abs().sum_all().scale(1.0 / batch)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::seeded_rng;

    fn logits(data: Vec<f32>, n: usize, k: usize) -> Var {
        Var::parameter(Tensor::from_vec(data, &[n, k]).unwrap())
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let l = logits(vec![10.0, -10.0, -10.0, 10.0], 2, 2);
        let loss = cross_entropy(&l, &[0, 1]);
        assert!(loss.value().item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_ln_k() {
        let l = logits(vec![0.0; 6], 2, 3);
        let loss = cross_entropy(&l, &[0, 2]);
        assert!((loss.value().item() - 3.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let l = logits(vec![0.0, 0.0], 1, 2);
        let loss = cross_entropy(&l, &[0]);
        loss.backward();
        let g = l.grad().unwrap();
        assert!((g.data()[0] - (0.5 - 1.0)).abs() < 1e-5);
        assert!((g.data()[1] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let a = logits(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], 2, 3);
        let pa = a.softmax();
        let loss = kl_div_probs(&pa, &pa.detach());
        assert!(loss.value().item().abs() < 1e-5);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let a = logits(vec![2.0, 0.0], 1, 2).softmax();
        let b = logits(vec![0.0, 2.0], 1, 2).softmax();
        assert!(kl_div_probs(&a, &b).value().item() > 0.1);
    }

    #[test]
    fn sl_loss_zero_iff_equal_softmax() {
        let s = logits(vec![1.0, 2.0], 1, 2);
        // Teacher with shifted logits has the same softmax.
        let t = logits(vec![2.0, 3.0], 1, 2);
        let loss = DistillLoss::Sl.eval(&s, &[&t]);
        assert!(loss.value().item() < 1e-5);
        // But logit-l1 sees the shift.
        let loss = DistillLoss::LogitL1.eval(&s, &[&t]);
        assert!((loss.value().item() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn distill_losses_flow_gradients_to_teachers() {
        let mut rng = seeded_rng(5);
        for loss_kind in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
            let s = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
            let t1 = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
            let t2 = Var::parameter(Tensor::randn(&[3, 4], &mut rng));
            let loss = loss_kind.eval(&s, &[&t1, &t2]);
            loss.backward();
            assert!(s.grad().is_some(), "{loss_kind}: no student grad");
            assert!(t1.grad().is_some(), "{loss_kind}: no teacher grad");
            assert!(t2.grad().is_some(), "{loss_kind}: no teacher grad");
        }
    }

    #[test]
    fn l2_penalty_matches_manual() {
        let w = Var::parameter(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let r = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let p = l2_penalty(std::slice::from_ref(&w), &[r]);
        assert!((p.value().item() - 5.0).abs() < 1e-6);
        p.backward();
        assert_eq!(w.grad().unwrap().data(), &[2.0, 4.0]);
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = logits(vec![1.0, 2.0], 1, 2);
        assert_eq!(mse(&a, &a.detach()).value().item(), 0.0);
    }

    #[test]
    fn mean_vars_averages() {
        let a = Var::constant(Tensor::full(&[2], 1.0));
        let b = Var::constant(Tensor::full(&[2], 3.0));
        assert_eq!(mean_vars(&[&a, &b]).value().data(), &[2.0, 2.0]);
    }
}
