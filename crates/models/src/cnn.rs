//! Simple architectures: a small CNN, a fully connected network and the
//! LeNet-like family.

use fedzkt_autograd::Var;
use fedzkt_nn::{BatchNorm2d, Buffer, Conv2d, Conv2dConfig, Linear, MaxPool2d, Module};
use fedzkt_tensor::{seeded_rng, Prng};

fn conv(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    rng: &mut Prng,
) -> Conv2d {
    Conv2d::new(
        Conv2dConfig {
            in_channels: in_c,
            out_channels: out_c,
            kernel,
            stride,
            pad,
            groups: 1,
            bias: true,
        },
        rng,
    )
}

/// A compact two-block CNN (conv-BN-ReLU-pool ×2 plus a dense head), the
/// "CNN model" of the paper's small-dataset zoo.
pub struct SmallCnn {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    pool: MaxPool2d,
    head: Linear,
}

impl SmallCnn {
    /// Build for `in_channels`×`img`×`img` inputs and `num_classes` outputs.
    /// `base_channels` scales the width.
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4 (two 2× poolings).
    pub fn new(
        in_channels: usize,
        num_classes: usize,
        img: usize,
        base_channels: usize,
        seed: u64,
    ) -> Self {
        assert_eq!(img % 4, 0, "SmallCnn needs img divisible by 4, got {img}");
        let mut rng = seeded_rng(seed);
        let c1 = base_channels;
        let c2 = base_channels * 2;
        let feat = c2 * (img / 4) * (img / 4);
        SmallCnn {
            conv1: conv(in_channels, c1, 3, 1, 1, &mut rng),
            bn1: BatchNorm2d::new(c1),
            conv2: conv(c1, c2, 3, 1, 1, &mut rng),
            bn2: BatchNorm2d::new(c2),
            pool: MaxPool2d { kernel: 2, stride: 2 },
            head: Linear::new(feat, num_classes, true, &mut rng),
        }
    }
}

impl Module for SmallCnn {
    fn forward(&self, x: &Var) -> Var {
        let h = self.pool.forward(&self.bn1.forward(&self.conv1.forward(x)).relu());
        let h = self.pool.forward(&self.bn2.forward(&self.conv2.forward(&h)).relu());
        self.head.forward(&h.flatten_batch())
    }

    fn params(&self) -> Vec<Var> {
        [
            self.conv1.params(),
            self.bn1.params(),
            self.conv2.params(),
            self.bn2.params(),
            self.head.params(),
        ]
        .concat()
    }

    fn buffers(&self) -> Vec<Buffer> {
        [self.bn1.buffers(), self.bn2.buffers()].concat()
    }

    fn set_training(&self, training: bool) {
        self.bn1.set_training(training);
        self.bn2.set_training(training);
    }
}

/// A fully connected network (flatten → hidden ReLU layers → logits), the
/// "Fully-Connected Model" of the paper's small-dataset zoo.
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
    head: Linear,
}

impl Mlp {
    /// Build with hidden widths `hidden` and `hidden / 2`.
    pub fn new(
        in_channels: usize,
        num_classes: usize,
        img: usize,
        hidden: usize,
        seed: u64,
    ) -> Self {
        let mut rng = seeded_rng(seed);
        let input = in_channels * img * img;
        Mlp {
            fc1: Linear::new(input, hidden, true, &mut rng),
            fc2: Linear::new(hidden, (hidden / 2).max(1), true, &mut rng),
            head: Linear::new((hidden / 2).max(1), num_classes, true, &mut rng),
        }
    }
}

impl Module for Mlp {
    fn forward(&self, x: &Var) -> Var {
        let h = self.fc1.forward(&x.flatten_batch()).relu();
        let h = self.fc2.forward(&h).relu();
        self.head.forward(&h)
    }

    fn params(&self) -> Vec<Var> {
        [self.fc1.params(), self.fc2.params(), self.head.params()].concat()
    }
}

/// LeNet-like model: two 5×5 convolutions with pooling and a dense head,
/// with a width multiplier (`scale`) and an optional extra dense layer —
/// the three "LeNet-like models with different channel sizes and numbers
/// of layers" of §IV-A2, and Model E of Table V.
pub struct LeNet {
    conv1: Conv2d,
    conv2: Conv2d,
    pool: MaxPool2d,
    fc1: Linear,
    fc2: Option<Linear>,
    head: Linear,
}

impl LeNet {
    /// Build with channel widths `6·scale` / `16·scale` (minimum 2) and,
    /// when `deep`, an extra 84-unit dense layer (the classic LeNet-5
    /// head).
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4.
    pub fn new(
        in_channels: usize,
        num_classes: usize,
        img: usize,
        scale: f32,
        deep: bool,
        seed: u64,
    ) -> Self {
        assert_eq!(img % 4, 0, "LeNet needs img divisible by 4, got {img}");
        let mut rng = seeded_rng(seed);
        let c1 = ((6.0 * scale) as usize).max(2);
        let c2 = ((16.0 * scale) as usize).max(2);
        let f1 = ((120.0 * scale) as usize).max(8);
        let f2 = ((84.0 * scale) as usize).max(8);
        let feat = c2 * (img / 4) * (img / 4);
        LeNet {
            conv1: conv(in_channels, c1, 5, 1, 2, &mut rng),
            conv2: conv(c1, c2, 5, 1, 2, &mut rng),
            pool: MaxPool2d { kernel: 2, stride: 2 },
            fc1: Linear::new(feat, f1, true, &mut rng),
            fc2: deep.then(|| Linear::new(f1, f2, true, &mut rng)),
            head: Linear::new(if deep { f2 } else { f1 }, num_classes, true, &mut rng),
        }
    }
}

impl Module for LeNet {
    fn forward(&self, x: &Var) -> Var {
        let h = self.pool.forward(&self.conv1.forward(x).relu());
        let h = self.pool.forward(&self.conv2.forward(&h).relu());
        let mut h = self.fc1.forward(&h.flatten_batch()).relu();
        if let Some(fc2) = &self.fc2 {
            h = fc2.forward(&h).relu();
        }
        self.head.forward(&h)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = [self.conv1.params(), self.conv2.params(), self.fc1.params()].concat();
        if let Some(fc2) = &self.fc2 {
            p.extend(fc2.params());
        }
        p.extend(self.head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_autograd::loss::cross_entropy;
    use fedzkt_nn::{param_count, Optimizer, Sgd, SgdConfig};
    use fedzkt_tensor::Tensor;

    #[test]
    fn small_cnn_forward_shape() {
        let m = SmallCnn::new(1, 10, 16, 4, 1);
        let y = m.forward(&Var::constant(Tensor::zeros(&[3, 1, 16, 16])));
        assert_eq!(y.shape(), vec![3, 10]);
    }

    #[test]
    fn mlp_forward_shape() {
        let m = Mlp::new(1, 10, 12, 32, 2);
        let y = m.forward(&Var::constant(Tensor::zeros(&[2, 1, 12, 12])));
        assert_eq!(y.shape(), vec![2, 10]);
    }

    #[test]
    fn lenet_depth_and_width_vary_param_count() {
        let shallow_small = LeNet::new(1, 10, 16, 0.5, false, 3);
        let shallow_big = LeNet::new(1, 10, 16, 1.0, false, 3);
        let deep_big = LeNet::new(1, 10, 16, 1.0, true, 3);
        let a = param_count(&shallow_small);
        let b = param_count(&shallow_big);
        let c = param_count(&deep_big);
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn lenet_forward_rgb() {
        let m = LeNet::new(3, 10, 16, 1.0, true, 4);
        let y = m.forward(&Var::constant(Tensor::zeros(&[2, 3, 16, 16])));
        assert_eq!(y.shape(), vec![2, 10]);
    }

    #[test]
    fn small_cnn_overfits_two_points() {
        // The smoke test of the whole stack: a tiny CNN must be able to
        // memorise two labelled images.
        let m = SmallCnn::new(1, 2, 8, 3, 5);
        let mut rng = seeded_rng(6);
        let x = Tensor::randn(&[2, 1, 8, 8], &mut rng);
        let labels = [0usize, 1];
        let opt = Sgd::new(m.params(), SgdConfig { lr: 0.1, momentum: 0.9, ..Default::default() });
        let mut last = f32::INFINITY;
        for _ in 0..60 {
            opt.zero_grad();
            let loss = cross_entropy(&m.forward(&Var::constant(x.clone())), &labels);
            last = loss.value().item();
            loss.backward();
            opt.step();
        }
        assert!(last < 0.1, "did not overfit: loss {last}");
    }

    #[test]
    fn set_training_propagates_to_bn() {
        let m = SmallCnn::new(1, 2, 8, 2, 7);
        let x = Var::constant(Tensor::randn(&[4, 1, 8, 8], &mut seeded_rng(8)));
        m.set_training(false);
        let before = m.buffers()[0].get();
        let _ = m.forward(&x);
        assert_eq!(before, m.buffers()[0].get(), "eval mode must not touch stats");
        m.set_training(true);
        let _ = m.forward(&x);
        assert_ne!(before, m.buffers()[0].get(), "train mode must update stats");
    }
}
