//! Miniaturized ShuffleNetV2 with net-size multiplier (Models A/B of
//! Table V).
//!
//! Keeps the defining mechanisms — channel split, depthwise convolutions,
//! 1×1 pointwise convolutions, channel concat + shuffle, and the two-branch
//! downsampling unit — with a reduced stage plan for CPU-scale images.

use fedzkt_autograd::Var;
use fedzkt_nn::{BatchNorm2d, Buffer, Conv2d, Conv2dConfig, Linear, Module};
use fedzkt_tensor::{seeded_rng, Prng};

fn conv_bn(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    rng: &mut Prng,
) -> (Conv2d, BatchNorm2d) {
    let conv = Conv2d::new(
        Conv2dConfig {
            in_channels: in_c,
            out_channels: out_c,
            kernel,
            stride,
            pad,
            groups,
            bias: false,
        },
        rng,
    );
    (conv, BatchNorm2d::new(out_c))
}

/// One ShuffleNetV2 unit. Stride 1 splits channels and processes half;
/// stride 2 processes the full input in two branches, doubling channels.
struct ShuffleUnit {
    stride: usize,
    // Right branch: 1x1 -> DW 3x3 -> 1x1.
    r1: (Conv2d, BatchNorm2d),
    rdw: (Conv2d, BatchNorm2d),
    r2: (Conv2d, BatchNorm2d),
    // Left branch, only for stride 2: DW 3x3 -> 1x1.
    left: Option<((Conv2d, BatchNorm2d), (Conv2d, BatchNorm2d))>,
}

impl ShuffleUnit {
    fn stride1(channels: usize, rng: &mut Prng) -> Self {
        assert!(channels.is_multiple_of(2), "stride-1 shuffle unit needs even channels");
        let half = channels / 2;
        ShuffleUnit {
            stride: 1,
            r1: conv_bn(half, half, 1, 1, 0, 1, rng),
            rdw: conv_bn(half, half, 3, 1, 1, half, rng),
            r2: conv_bn(half, half, 1, 1, 0, 1, rng),
            left: None,
        }
    }

    fn stride2(in_c: usize, out_c: usize, rng: &mut Prng) -> Self {
        assert!(out_c.is_multiple_of(2), "stride-2 shuffle unit needs even out channels");
        let half = out_c / 2;
        ShuffleUnit {
            stride: 2,
            r1: conv_bn(in_c, half, 1, 1, 0, 1, rng),
            rdw: conv_bn(half, half, 3, 2, 1, half, rng),
            r2: conv_bn(half, half, 1, 1, 0, 1, rng),
            left: Some((conv_bn(in_c, in_c, 3, 2, 1, in_c, rng), conv_bn(in_c, half, 1, 1, 0, 1, rng))),
        }
    }

    fn right_branch(&self, x: &Var) -> Var {
        let h = self.r1.1.forward(&self.r1.0.forward(x)).relu();
        let h = self.rdw.1.forward(&self.rdw.0.forward(&h));
        self.r2.1.forward(&self.r2.0.forward(&h)).relu()
    }
}

impl Module for ShuffleUnit {
    fn forward(&self, x: &Var) -> Var {
        let out = if self.stride == 1 {
            let c = x.shape()[1];
            let keep = x.narrow_channels(0, c / 2);
            let process = x.narrow_channels(c / 2, c - c / 2);
            let right = self.right_branch(&process);
            Var::concat_channels(&[&keep, &right])
        } else {
            let ((ldw, ldw_bn), (l1, l1_bn)) = self.left.as_ref().expect("stride-2 unit");
            let left = l1_bn.forward(&l1.forward(&ldw_bn.forward(&ldw.forward(x)))).relu();
            let right = self.right_branch(x);
            Var::concat_channels(&[&left, &right])
        };
        out.channel_shuffle(2)
    }

    fn params(&self) -> Vec<Var> {
        let mut p = Vec::new();
        for (c, bn) in [&self.r1, &self.rdw, &self.r2] {
            p.extend(c.params());
            p.extend(bn.params());
        }
        if let Some(((ldw, ldw_bn), (l1, l1_bn))) = &self.left {
            p.extend(ldw.params());
            p.extend(ldw_bn.params());
            p.extend(l1.params());
            p.extend(l1_bn.params());
        }
        p
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut b = Vec::new();
        for (_, bn) in [&self.r1, &self.rdw, &self.r2] {
            b.extend(bn.buffers());
        }
        if let Some(((_, ldw_bn), (_, l1_bn))) = &self.left {
            b.extend(ldw_bn.buffers());
            b.extend(l1_bn.buffers());
        }
        b
    }

    fn set_training(&self, training: bool) {
        for (_, bn) in [&self.r1, &self.rdw, &self.r2] {
            bn.set_training(training);
        }
        if let Some(((_, ldw_bn), (_, l1_bn))) = &self.left {
            ldw_bn.set_training(training);
            l1_bn.set_training(training);
        }
    }
}

/// Miniaturized ShuffleNetV2 image classifier.
pub struct ShuffleNetV2 {
    stem: (Conv2d, BatchNorm2d),
    units: Vec<ShuffleUnit>,
    head_conv: (Conv2d, BatchNorm2d),
    classifier: Linear,
}

impl ShuffleNetV2 {
    /// Build with the given net-`size` multiplier (paper variants: 0.5 and
    /// 1.0).
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4 (two stride-2 stages).
    pub fn new(in_channels: usize, num_classes: usize, img: usize, size: f32, seed: u64) -> Self {
        assert_eq!(img % 4, 0, "ShuffleNetV2 needs img divisible by 4, got {img}");
        let mut rng = seeded_rng(seed);
        let ch = |c: usize| -> usize {
            let v = ((c as f32 * size).round() as usize).max(4);
            v + (v % 2) // keep even for channel split
        };
        let (c0, c1, c2, c_head) = (ch(12), ch(24), ch(48), ch(64));
        let stem = conv_bn(in_channels, c0, 3, 1, 1, 1, &mut rng);
        let units = vec![
            ShuffleUnit::stride2(c0, c1, &mut rng),
            ShuffleUnit::stride1(c1, &mut rng),
            ShuffleUnit::stride2(c1, c2, &mut rng),
            ShuffleUnit::stride1(c2, &mut rng),
        ];
        let head_conv = conv_bn(c2, c_head, 1, 1, 0, 1, &mut rng);
        let classifier = Linear::new(c_head, num_classes, true, &mut rng);
        ShuffleNetV2 { stem, units, head_conv, classifier }
    }
}

impl Module for ShuffleNetV2 {
    fn forward(&self, x: &Var) -> Var {
        let mut h = self.stem.1.forward(&self.stem.0.forward(x)).relu();
        for u in &self.units {
            h = u.forward(&h);
        }
        h = self.head_conv.1.forward(&self.head_conv.0.forward(&h)).relu();
        self.classifier.forward(&h.global_avg_pool())
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.0.params();
        p.extend(self.stem.1.params());
        for u in &self.units {
            p.extend(u.params());
        }
        p.extend(self.head_conv.0.params());
        p.extend(self.head_conv.1.params());
        p.extend(self.classifier.params());
        p
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut b = self.stem.1.buffers();
        for u in &self.units {
            b.extend(u.buffers());
        }
        b.extend(self.head_conv.1.buffers());
        b
    }

    fn set_training(&self, training: bool) {
        self.stem.1.set_training(training);
        for u in &self.units {
            u.set_training(training);
        }
        self.head_conv.1.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_nn::param_count;
    use fedzkt_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let m = ShuffleNetV2::new(3, 10, 16, 1.0, 1);
        let y = m.forward(&Var::constant(Tensor::zeros(&[2, 3, 16, 16])));
        assert_eq!(y.shape(), vec![2, 10]);
    }

    #[test]
    fn net_size_orders_param_counts() {
        let small = ShuffleNetV2::new(3, 10, 16, 0.5, 1);
        let big = ShuffleNetV2::new(3, 10, 16, 1.0, 1);
        assert!(param_count(&small) < param_count(&big));
    }

    #[test]
    fn works_on_img8_grayscale() {
        let m = ShuffleNetV2::new(1, 10, 8, 0.5, 2);
        let y = m.forward(&Var::constant(Tensor::zeros(&[1, 1, 8, 8])));
        assert_eq!(y.shape(), vec![1, 10]);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let m = ShuffleNetV2::new(3, 4, 8, 0.5, 3);
        let x = Var::constant(Tensor::randn(&[2, 3, 8, 8], &mut seeded_rng(4)));
        m.forward(&x).square().sum_all().backward();
        for (i, p) in m.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} received no gradient");
        }
    }
}
