//! Statically-wired model builders: layer pairing as a compile-time fact.
//!
//! The dynamic zoo ([`crate::ModelSpec`]) is runtime-dimensioned by
//! design — specs arrive from scenario JSON. But a builder whose widths
//! *are* architecture constants can wire its dense stack through
//! `fedzkt_nn::typed` so that a mismatched layer pairing **does not
//! compile**, instead of panicking inside a GEMM at round N. [`TypedMlp`]
//! is the paper zoo's fully connected model in that form; its forward and
//! its parameter initialisation are bit-identical to [`crate::Mlp`] under
//! the same seed (same RNG consumption order, same kernels).
//!
//! Mis-wiring two layers is rejected by the type system:
//!
//! ```compile_fail
//! use fedzkt_nn::typed::{Feat, TypedLinear};
//!
//! struct MisWired {
//!     fc1: TypedLinear<64, 64>,
//!     fc2: TypedLinear<32, 16>, // fc1 produces Feat<64>, fc2 wants Feat<32>
//! }
//!
//! impl MisWired {
//!     fn forward(&self, x: &Feat<64>) -> Feat<16> {
//!         self.fc2.forward_typed(&self.fc1.forward_typed(x)) // does not compile
//!     }
//! }
//! ```

use fedzkt_autograd::Var;
use fedzkt_nn::typed::{Feat, TypedLinear};
use fedzkt_nn::Module;
use fedzkt_tensor::seeded_rng;

/// [`crate::Mlp`] with const-generic widths: flatten → `IN → H1` ReLU →
/// `H1 → H2` ReLU → `H2 → OUT` logits. The inter-layer widths appear in
/// two field types each, so the stack only compiles when it is wired
/// consistently.
///
/// Weight-identical to `Mlp::new(in_channels, num_classes, img, hidden,
/// seed)` when `IN == in_channels · img²`, `H1 == hidden`,
/// `H2 == max(hidden / 2, 1)`, `OUT == num_classes` — the constructor
/// consumes its RNG in the same order.
pub struct TypedMlp<const IN: usize, const H1: usize, const H2: usize, const OUT: usize> {
    fc1: TypedLinear<IN, H1>,
    fc2: TypedLinear<H1, H2>,
    head: TypedLinear<H2, OUT>,
}

impl<const IN: usize, const H1: usize, const H2: usize, const OUT: usize>
    TypedMlp<IN, H1, H2, OUT>
{
    /// Build with Glorot-uniform weights from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        TypedMlp {
            fc1: TypedLinear::new(true, &mut rng),
            fc2: TypedLinear::new(true, &mut rng),
            head: TypedLinear::new(true, &mut rng),
        }
    }

    /// Forward over an already-flattened `[batch, IN]` activation, fully
    /// inside the typed world — no shape exists here that the compiler
    /// has not checked.
    pub fn forward_typed(&self, x: &Feat<IN>) -> Feat<OUT> {
        let h = self.fc1.forward_typed(x).relu();
        let h = self.fc2.forward_typed(&h).relu();
        self.head.forward_typed(&h)
    }
}

impl<const IN: usize, const H1: usize, const H2: usize, const OUT: usize> Module
    for TypedMlp<IN, H1, H2, OUT>
{
    fn forward(&self, x: &Var) -> Var {
        self.forward_typed(&Feat::new(x.flatten_batch())).into_var()
    }

    fn params(&self) -> Vec<Var> {
        [self.fc1.params(), self.fc2.params(), self.head.params()].concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mlp;
    use fedzkt_tensor::{seeded_rng, Tensor};

    fn bits(v: &Var) -> Vec<u32> {
        v.value().data().iter().map(|x| x.to_bits()).collect()
    }

    /// The typed builder must be indistinguishable from the dynamic one:
    /// same seed → same parameters, same input → bit-identical logits.
    #[test]
    fn typed_mlp_bit_identical_to_dynamic_mlp() {
        // Mlp::new(1, 4, 8, 64, seed): IN = 1·8² = 64, H1 = 64, H2 = 32,
        // OUT = 4 — the tiny preset's Mlp at miniaturized size.
        let dynamic = Mlp::new(1, 4, 8, 64, 99);
        let typed = TypedMlp::<64, 64, 32, 4>::new(99);
        for (a, b) in dynamic.params().iter().zip(typed.params().iter()) {
            assert_eq!(bits(a), bits(b), "parameter mismatch");
        }
        let x = Var::constant(Tensor::randn(&[5, 1, 8, 8], &mut seeded_rng(123)));
        assert_eq!(bits(&dynamic.forward(&x)), bits(&typed.forward(&x)));
    }

    #[test]
    fn typed_mlp_trains_an_empty_batch() {
        // The n = 0 degenerate batch flows through typed forward/backward.
        let m = TypedMlp::<16, 8, 4, 10>::new(1);
        let y = m.forward(&Var::constant(Tensor::zeros(&[0, 1, 4, 4])));
        assert_eq!(y.shape(), vec![0, 10]);
    }
}
