//! The server-side generator for zero-shot knowledge distillation.
//!
//! FedZKT's server learns a generative model `G(z; θ)` adversarially against
//! the global model (Eq. 2) to synthesize the inputs on which knowledge is
//! transferred, replacing the public dataset / pre-trained generator of
//! prior work. The architecture follows the data-free distillation
//! literature the paper cites ([33], [34]): a dense projection from the
//! noise vector, then upsample–conv–BN–LeakyReLU blocks, with a `tanh`
//! output so images live in `[-1, 1]` (the range of the synthetic
//! datasets).

use fedzkt_autograd::Var;
use fedzkt_nn::{BatchNorm2d, Buffer, Conv2d, Conv2dConfig, Linear, Module};
use fedzkt_tensor::{seeded_rng, Prng, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration for [`Generator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSpec {
    /// Dimension of the Gaussian noise input `z`.
    pub z_dim: usize,
    /// Base feature-map width.
    pub ngf: usize,
}

impl Default for GeneratorSpec {
    fn default() -> Self {
        GeneratorSpec { z_dim: 64, ngf: 16 }
    }
}

impl GeneratorSpec {
    /// Build a generator producing `[N, out_channels, img, img]` images.
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4 (two 2× upsampling stages).
    pub fn build(&self, out_channels: usize, img: usize, seed: u64) -> Generator {
        Generator::new(*self, out_channels, img, seed)
    }
}

/// Noise-to-image generator `G(z; θ)`.
pub struct Generator {
    fc: Linear,
    bn0: BatchNorm2d,
    conv1: Conv2d,
    bn1: BatchNorm2d,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    conv3: Conv2d,
    z_dim: usize,
    c0: usize,
    h0: usize,
}

impl Generator {
    /// Build a generator; see [`GeneratorSpec::build`].
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4.
    pub fn new(spec: GeneratorSpec, out_channels: usize, img: usize, seed: u64) -> Self {
        assert_eq!(img % 4, 0, "generator needs img divisible by 4, got {img}");
        let mut rng: Prng = seeded_rng(seed);
        let h0 = img / 4;
        let c0 = spec.ngf * 2;
        let conv = |in_c: usize, out_c: usize, rng: &mut Prng| {
            Conv2d::new(
                Conv2dConfig {
                    in_channels: in_c,
                    out_channels: out_c,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                    groups: 1,
                    bias: true,
                },
                rng,
            )
        };
        Generator {
            fc: Linear::new(spec.z_dim, c0 * h0 * h0, true, &mut rng),
            bn0: BatchNorm2d::new(c0),
            conv1: conv(c0, spec.ngf * 2, &mut rng),
            bn1: BatchNorm2d::new(spec.ngf * 2),
            conv2: conv(spec.ngf * 2, spec.ngf, &mut rng),
            bn2: BatchNorm2d::new(spec.ngf),
            conv3: conv(spec.ngf, out_channels, &mut rng),
            z_dim: spec.z_dim,
            c0,
            h0,
        }
    }

    /// Noise dimension this generator expects.
    pub fn z_dim(&self) -> usize {
        self.z_dim
    }

    /// Sample a `[n, z_dim]` standard-normal noise batch (Alg. 3, line 4).
    pub fn sample_z(&self, n: usize, rng: &mut Prng) -> Tensor {
        Tensor::randn(&[n, self.z_dim], rng)
    }
}

impl Module for Generator {
    /// Map a noise batch `[N, z_dim]` to images `[N, C, img, img]` in
    /// `[-1, 1]`.
    fn forward(&self, z: &Var) -> Var {
        let n = z.shape()[0];
        let h = self.fc.forward(z).reshape(&[n, self.c0, self.h0, self.h0]);
        let h = self.bn0.forward(&h).leaky_relu(0.2);
        let h = h.upsample_nearest2d(2);
        let h = self.bn1.forward(&self.conv1.forward(&h)).leaky_relu(0.2);
        let h = h.upsample_nearest2d(2);
        let h = self.bn2.forward(&self.conv2.forward(&h)).leaky_relu(0.2);
        self.conv3.forward(&h).tanh()
    }

    fn params(&self) -> Vec<Var> {
        [
            self.fc.params(),
            self.bn0.params(),
            self.conv1.params(),
            self.bn1.params(),
            self.conv2.params(),
            self.bn2.params(),
            self.conv3.params(),
        ]
        .concat()
    }

    fn buffers(&self) -> Vec<Buffer> {
        [self.bn0.buffers(), self.bn1.buffers(), self.bn2.buffers()].concat()
    }

    fn set_training(&self, training: bool) {
        self.bn0.set_training(training);
        self.bn1.set_training(training);
        self.bn2.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_images_in_tanh_range() {
        let g = GeneratorSpec::default().build(3, 16, 1);
        let mut rng = seeded_rng(2);
        let z = Var::constant(g.sample_z(4, &mut rng));
        let imgs = g.forward(&z);
        assert_eq!(imgs.shape(), vec![4, 3, 16, 16]);
        assert!(imgs.value().data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn grayscale_small_image() {
        let g = GeneratorSpec { z_dim: 16, ngf: 8 }.build(1, 8, 3);
        let mut rng = seeded_rng(4);
        let z = Var::constant(g.sample_z(2, &mut rng));
        assert_eq!(g.forward(&z).shape(), vec![2, 1, 8, 8]);
    }

    #[test]
    fn gradients_flow_from_output_to_noise_and_params() {
        let g = GeneratorSpec { z_dim: 8, ngf: 4 }.build(1, 8, 5);
        let mut rng = seeded_rng(6);
        let z = Var::parameter(g.sample_z(2, &mut rng));
        g.forward(&z).square().sum_all().backward();
        assert!(z.grad().is_some(), "no gradient into the noise");
        for (i, p) in g.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} received no gradient");
        }
    }

    #[test]
    fn different_noise_gives_different_images() {
        let g = GeneratorSpec::default().build(1, 12, 7);
        let mut rng = seeded_rng(8);
        let a = g.forward(&Var::constant(g.sample_z(1, &mut rng))).value_clone();
        let b = g.forward(&Var::constant(g.sample_z(1, &mut rng))).value_clone();
        assert_ne!(a.data(), b.data());
    }
}
