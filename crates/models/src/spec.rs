//! Declarative model specifications (serializable) and the paper's zoos.

use crate::{LeNet, Mlp, MobileNetV2, ShuffleNetV2, SmallCnn};
use fedzkt_nn::Module;
use serde::{Deserialize, Serialize};

/// A declarative description of an on-device architecture, sufficient to
/// construct the model. Devices in the simulation pick a `ModelSpec`
/// independently — the paper's core premise is that these need not agree
/// across devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// Compact two-block CNN with the given base width.
    SmallCnn {
        /// First-stage channel count (second stage doubles it).
        base_channels: usize,
    },
    /// Fully connected network with the given first hidden width.
    Mlp {
        /// First hidden width (second hidden layer halves it).
        hidden: usize,
    },
    /// LeNet-like model with a width multiplier and optional extra dense
    /// layer.
    LeNet {
        /// Channel/width multiplier relative to classic LeNet-5.
        scale: f32,
        /// Add the second 84-unit dense layer.
        deep: bool,
    },
    /// Miniaturized MobileNetV2 with width multiplier (paper: 0.8 / 0.6).
    MobileNetV2 {
        /// Width multiplier.
        width: f32,
    },
    /// Miniaturized ShuffleNetV2 with net-size multiplier (paper: 0.5 / 1.0).
    ShuffleNetV2 {
        /// Net-size multiplier.
        size: f32,
    },
}

impl ModelSpec {
    /// Instantiate the model for the given input geometry.
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4 (all zoo members downsample
    /// twice).
    pub fn build(
        &self,
        in_channels: usize,
        num_classes: usize,
        img: usize,
        seed: u64,
    ) -> Box<dyn Module> {
        match *self {
            ModelSpec::SmallCnn { base_channels } => {
                Box::new(SmallCnn::new(in_channels, num_classes, img, base_channels, seed))
            }
            ModelSpec::Mlp { hidden } => {
                Box::new(Mlp::new(in_channels, num_classes, img, hidden, seed))
            }
            ModelSpec::LeNet { scale, deep } => {
                Box::new(LeNet::new(in_channels, num_classes, img, scale, deep, seed))
            }
            ModelSpec::MobileNetV2 { width } => {
                Box::new(MobileNetV2::new(in_channels, num_classes, img, width, seed))
            }
            ModelSpec::ShuffleNetV2 { size } => {
                Box::new(ShuffleNetV2::new(in_channels, num_classes, img, size, seed))
            }
        }
    }

    /// Short human-readable name (used in experiment tables).
    pub fn name(&self) -> String {
        match self {
            ModelSpec::SmallCnn { base_channels } => format!("CNN(c{base_channels})"),
            ModelSpec::Mlp { hidden } => format!("FC(h{hidden})"),
            ModelSpec::LeNet { scale, deep } => {
                format!("LeNet(x{scale}{})", if *deep { ",deep" } else { "" })
            }
            ModelSpec::MobileNetV2 { width } => format!("MobileNetV2(w{width})"),
            ModelSpec::ShuffleNetV2 { size } => format!("ShuffleNetV2(s{size})"),
        }
    }

    /// The five-architecture zoo for the small datasets (§IV-A2: a CNN, a
    /// fully connected model, and three LeNet-like variants).
    pub fn paper_zoo_small() -> Vec<ModelSpec> {
        vec![
            ModelSpec::SmallCnn { base_channels: 6 },
            ModelSpec::Mlp { hidden: 64 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
            ModelSpec::LeNet { scale: 1.0, deep: false },
            ModelSpec::LeNet { scale: 1.0, deep: true },
        ]
    }

    /// The five-architecture zoo for CIFAR-10 (Table V: ShuffleNetV2 0.5 /
    /// 1.0, MobileNetV2 0.8 / 0.6, LeNet) — Models A–E.
    pub fn paper_zoo_cifar() -> Vec<ModelSpec> {
        vec![
            ModelSpec::ShuffleNetV2 { size: 0.5 },  // Model A
            ModelSpec::ShuffleNetV2 { size: 1.0 },  // Model B
            ModelSpec::MobileNetV2 { width: 0.8 },  // Model C
            ModelSpec::MobileNetV2 { width: 0.6 },  // Model D
            ModelSpec::LeNet { scale: 1.0, deep: true }, // Model E
        ]
    }

    /// Assign a zoo across `k` devices round-robin, as in §IV-C2 where ten
    /// devices cycle through Models A–E.
    pub fn assign_round_robin(zoo: &[ModelSpec], k: usize) -> Vec<ModelSpec> {
        assert!(!zoo.is_empty(), "empty model zoo");
        (0..k).map(|i| zoo[i % zoo.len()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_autograd::Var;
    use fedzkt_nn::param_count;
    use fedzkt_tensor::Tensor;

    #[test]
    fn every_zoo_member_builds_and_runs() {
        for (zoo, channels) in [
            (ModelSpec::paper_zoo_small(), 1usize),
            (ModelSpec::paper_zoo_cifar(), 3usize),
        ] {
            for spec in zoo {
                let m = spec.build(channels, 10, 16, 1);
                let x = Var::constant(Tensor::zeros(&[2, channels, 16, 16]));
                let y = m.forward(&x);
                assert_eq!(y.shape(), vec![2, 10], "{}", spec.name());
                assert!(param_count(m.as_ref()) > 100, "{}", spec.name());
            }
        }
    }

    #[test]
    fn cifar_zoo_has_heterogeneous_sizes() {
        let sizes: Vec<usize> = ModelSpec::paper_zoo_cifar()
            .iter()
            .map(|s| param_count(s.build(3, 10, 16, 1).as_ref()))
            .collect();
        // All five architectures have distinct parameter counts.
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5, "{sizes:?}");
        // ShuffleNetV2 1.0 (B) is bigger than 0.5 (A); MobileNetV2 0.8 (C)
        // bigger than 0.6 (D).
        assert!(sizes[1] > sizes[0]);
        assert!(sizes[2] > sizes[3]);
    }

    #[test]
    fn round_robin_assignment_cycles() {
        let zoo = ModelSpec::paper_zoo_cifar();
        let assigned = ModelSpec::assign_round_robin(&zoo, 10);
        assert_eq!(assigned.len(), 10);
        assert_eq!(assigned[0], assigned[5]);
        assert_eq!(assigned[4], assigned[9]);
        assert_ne!(assigned[0], assigned[1]);
    }

    #[test]
    fn same_seed_same_weights() {
        let spec = ModelSpec::SmallCnn { base_channels: 4 };
        let a = spec.build(1, 10, 8, 7);
        let b = spec.build(1, 10, 8, 7);
        let x = Var::constant(Tensor::ones(&[1, 1, 8, 8]));
        assert_eq!(a.forward(&x).value().data(), b.forward(&x).value().data());
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<String> =
            ModelSpec::paper_zoo_cifar().iter().map(ModelSpec::name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
