//! Miniaturized MobileNetV2 with width multiplier (Models C/D of Table V).
//!
//! Keeps the architecture's defining mechanisms — inverted residual blocks
//! (1×1 expand → 3×3 depthwise → 1×1 linear project), ReLU6, residual
//! connections on stride-1 blocks, and the width multiplier — with a
//! reduced stage plan suitable for small synthetic images on CPU.

use fedzkt_autograd::Var;
use fedzkt_nn::{BatchNorm2d, Buffer, Conv2d, Conv2dConfig, Linear, Module};
use fedzkt_tensor::{seeded_rng, Prng};

fn conv_bn(
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    groups: usize,
    rng: &mut Prng,
) -> (Conv2d, BatchNorm2d) {
    let conv = Conv2d::new(
        Conv2dConfig {
            in_channels: in_c,
            out_channels: out_c,
            kernel,
            stride,
            pad,
            groups,
            bias: false,
        },
        rng,
    );
    (conv, BatchNorm2d::new(out_c))
}

struct InvertedResidual {
    expand: Option<(Conv2d, BatchNorm2d)>,
    depthwise: (Conv2d, BatchNorm2d),
    project: (Conv2d, BatchNorm2d),
    use_residual: bool,
}

impl InvertedResidual {
    fn new(in_c: usize, out_c: usize, stride: usize, expansion: usize, rng: &mut Prng) -> Self {
        let hidden = in_c * expansion;
        let expand = (expansion != 1).then(|| conv_bn(in_c, hidden, 1, 1, 0, 1, rng));
        let depthwise = conv_bn(hidden, hidden, 3, stride, 1, hidden, rng);
        let project = conv_bn(hidden, out_c, 1, 1, 0, 1, rng);
        InvertedResidual { expand, depthwise, project, use_residual: stride == 1 && in_c == out_c }
    }
}

impl Module for InvertedResidual {
    fn forward(&self, x: &Var) -> Var {
        let mut h = x.clone();
        if let Some((c, bn)) = &self.expand {
            h = bn.forward(&c.forward(&h)).relu6();
        }
        h = self.depthwise.1.forward(&self.depthwise.0.forward(&h)).relu6();
        h = self.project.1.forward(&self.project.0.forward(&h));
        if self.use_residual {
            h = h.add(x);
        }
        h
    }

    fn params(&self) -> Vec<Var> {
        let mut p = Vec::new();
        if let Some((c, bn)) = &self.expand {
            p.extend(c.params());
            p.extend(bn.params());
        }
        p.extend(self.depthwise.0.params());
        p.extend(self.depthwise.1.params());
        p.extend(self.project.0.params());
        p.extend(self.project.1.params());
        p
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut b = Vec::new();
        if let Some((_, bn)) = &self.expand {
            b.extend(bn.buffers());
        }
        b.extend(self.depthwise.1.buffers());
        b.extend(self.project.1.buffers());
        b
    }

    fn set_training(&self, training: bool) {
        if let Some((_, bn)) = &self.expand {
            bn.set_training(training);
        }
        self.depthwise.1.set_training(training);
        self.project.1.set_training(training);
    }
}

/// Miniaturized MobileNetV2 image classifier.
pub struct MobileNetV2 {
    stem: (Conv2d, BatchNorm2d),
    blocks: Vec<InvertedResidual>,
    head_conv: (Conv2d, BatchNorm2d),
    classifier: Linear,
}

impl MobileNetV2 {
    /// Build with the given `width` multiplier (paper variants: 0.8 and
    /// 0.6). Accepts any `img` divisible by 4.
    ///
    /// # Panics
    /// Panics when `img` is not divisible by 4 (two stride-2 stages).
    pub fn new(in_channels: usize, num_classes: usize, img: usize, width: f32, seed: u64) -> Self {
        assert_eq!(img % 4, 0, "MobileNetV2 needs img divisible by 4, got {img}");
        let mut rng = seeded_rng(seed);
        let ch = |c: usize| -> usize { ((c as f32 * width).round() as usize).max(4) };
        let (c_stem, c1, c2, c3, c_head) = (ch(16), ch(16), ch(24), ch(32), ch(64));
        let stem = conv_bn(in_channels, c_stem, 3, 1, 1, 1, &mut rng);
        let blocks = vec![
            InvertedResidual::new(c_stem, c1, 1, 1, &mut rng),
            InvertedResidual::new(c1, c2, 2, 2, &mut rng),
            InvertedResidual::new(c2, c2, 1, 2, &mut rng),
            InvertedResidual::new(c2, c3, 2, 2, &mut rng),
            InvertedResidual::new(c3, c3, 1, 2, &mut rng),
        ];
        let head_conv = conv_bn(c3, c_head, 1, 1, 0, 1, &mut rng);
        let classifier = Linear::new(c_head, num_classes, true, &mut rng);
        MobileNetV2 { stem, blocks, head_conv, classifier }
    }
}

impl Module for MobileNetV2 {
    fn forward(&self, x: &Var) -> Var {
        let mut h = self.stem.1.forward(&self.stem.0.forward(x)).relu6();
        for b in &self.blocks {
            h = b.forward(&h);
        }
        h = self.head_conv.1.forward(&self.head_conv.0.forward(&h)).relu6();
        self.classifier.forward(&h.global_avg_pool())
    }

    fn params(&self) -> Vec<Var> {
        let mut p = self.stem.0.params();
        p.extend(self.stem.1.params());
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.head_conv.0.params());
        p.extend(self.head_conv.1.params());
        p.extend(self.classifier.params());
        p
    }

    fn buffers(&self) -> Vec<Buffer> {
        let mut b = self.stem.1.buffers();
        for blk in &self.blocks {
            b.extend(blk.buffers());
        }
        b.extend(self.head_conv.1.buffers());
        b
    }

    fn set_training(&self, training: bool) {
        self.stem.1.set_training(training);
        for b in &self.blocks {
            b.set_training(training);
        }
        self.head_conv.1.set_training(training);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_nn::param_count;
    use fedzkt_tensor::Tensor;

    #[test]
    fn forward_shape() {
        let m = MobileNetV2::new(3, 10, 16, 0.8, 1);
        let y = m.forward(&Var::constant(Tensor::zeros(&[2, 3, 16, 16])));
        assert_eq!(y.shape(), vec![2, 10]);
    }

    #[test]
    fn width_multiplier_orders_param_counts() {
        let small = MobileNetV2::new(3, 10, 16, 0.6, 1);
        let big = MobileNetV2::new(3, 10, 16, 0.8, 1);
        assert!(param_count(&small) < param_count(&big));
    }

    #[test]
    fn works_on_img8() {
        let m = MobileNetV2::new(3, 10, 8, 0.6, 2);
        let y = m.forward(&Var::constant(Tensor::zeros(&[1, 3, 8, 8])));
        assert_eq!(y.shape(), vec![1, 10]);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let m = MobileNetV2::new(3, 4, 8, 0.6, 3);
        let x = Var::constant(Tensor::randn(&[2, 3, 8, 8], &mut seeded_rng(4)));
        m.forward(&x).square().sum_all().backward();
        for (i, p) in m.params().iter().enumerate() {
            assert!(p.grad().is_some(), "param {i} received no gradient");
        }
    }
}
