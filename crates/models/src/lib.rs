//! # fedzkt-models
//!
//! The heterogeneous on-device model zoo of the FedZKT paper plus the
//! server-side generator for zero-shot distillation.
//!
//! §IV-A2 of the paper evaluates five architectures per dataset:
//!
//! * small datasets (MNIST/KMNIST/FASHION): a CNN, a fully connected
//!   network, and three LeNet-like models of different widths/depths —
//!   [`ModelSpec::paper_zoo_small`];
//! * CIFAR-10: two ShuffleNetV2 variants (net size 0.5/1.0), two
//!   MobileNetV2 variants (width 0.8/0.6) and a LeNet-like model
//!   (Table V) — [`ModelSpec::paper_zoo_cifar`].
//!
//! The implementations here are *miniaturized but structurally faithful*:
//! MobileNetV2 keeps inverted residuals + depthwise convolutions + ReLU6 +
//! width multiplier; ShuffleNetV2 keeps channel split + depthwise
//! convolutions + channel shuffle + net-size multiplier. Channel counts and
//! stage depths are scaled down so the whole federated simulation runs on a
//! 2-core CPU (see DESIGN.md §2 for the substitution rationale).
//!
//! ## Example
//!
//! ```
//! use fedzkt_models::ModelSpec;
//! use fedzkt_nn::{param_count, Module};
//! use fedzkt_autograd::Var;
//! use fedzkt_tensor::Tensor;
//!
//! let spec = ModelSpec::MobileNetV2 { width: 0.8 };
//! let model = spec.build(3, 10, 16, 42);
//! let logits = model.forward(&Var::constant(Tensor::zeros(&[2, 3, 16, 16])));
//! assert_eq!(logits.shape(), vec![2, 10]);
//! assert!(param_count(model.as_ref()) > 0);
//! ```

#![warn(missing_docs)]

mod cnn;
mod generator;
mod mobilenet;
mod shufflenet;
mod spec;
pub mod typed;

pub use cnn::{LeNet, Mlp, SmallCnn};
pub use generator::{Generator, GeneratorSpec};
pub use mobilenet::MobileNetV2;
pub use shufflenet::ShuffleNetV2;
pub use spec::ModelSpec;
