//! Contract tests across the whole model zoo: every architecture must
//! satisfy the interface assumptions the FedZKT orchestrator relies on.

use fedzkt_autograd::{no_grad, Var};
use fedzkt_models::{GeneratorSpec, ModelSpec};
use fedzkt_nn::{load_state_dict, param_count, state_dict, Module};
use fedzkt_tensor::{seeded_rng, Tensor};

fn all_specs() -> Vec<(ModelSpec, usize)> {
    let mut v: Vec<(ModelSpec, usize)> =
        ModelSpec::paper_zoo_small().into_iter().map(|s| (s, 1usize)).collect();
    v.extend(ModelSpec::paper_zoo_cifar().into_iter().map(|s| (s, 3usize)));
    v
}

#[test]
fn state_dict_roundtrip_preserves_outputs_for_every_arch() {
    for (spec, channels) in all_specs() {
        let a = spec.build(channels, 10, 12, 5);
        let b = spec.build(channels, 10, 12, 6);
        let x = Var::constant(Tensor::randn(&[2, channels, 12, 12], &mut seeded_rng(7)));
        a.set_training(false);
        b.set_training(false);
        let ya = no_grad(|| a.forward(&x)).value_clone();
        load_state_dict(b.as_ref(), &state_dict(a.as_ref())).unwrap_or_else(|e| {
            panic!("{}: state dict rejected: {e}", spec.name());
        });
        let yb = no_grad(|| b.forward(&x)).value_clone();
        assert_eq!(ya.data(), yb.data(), "{}: outputs differ after load", spec.name());
    }
}

#[test]
fn every_arch_backpropagates_to_every_parameter() {
    for (spec, channels) in all_specs() {
        let m = spec.build(channels, 4, 8, 3);
        let x = Var::constant(Tensor::randn(&[2, channels, 8, 8], &mut seeded_rng(4)));
        m.forward(&x).square().sum_all().backward();
        for (i, p) in m.params().iter().enumerate() {
            assert!(p.grad().is_some(), "{}: param {i} got no gradient", spec.name());
        }
    }
}

#[test]
fn every_arch_propagates_input_gradients() {
    // The generator game needs ∂L/∂x through *teacher* models too.
    for (spec, channels) in all_specs() {
        let m = spec.build(channels, 4, 8, 3);
        let x = Var::parameter(Tensor::randn(&[2, channels, 8, 8], &mut seeded_rng(5)));
        m.forward(&x).square().sum_all().backward();
        let g = x.grad().unwrap_or_else(|| panic!("{}: no input grad", spec.name()));
        assert!(g.norm_l2() > 0.0, "{}: zero input gradient", spec.name());
    }
}

#[test]
fn eval_mode_is_deterministic_for_every_arch() {
    for (spec, channels) in all_specs() {
        let m = spec.build(channels, 10, 12, 9);
        // Move BN stats off their init first.
        let warm = Var::constant(Tensor::randn(&[4, channels, 12, 12], &mut seeded_rng(1)));
        let _ = m.forward(&warm);
        m.set_training(false);
        let x = Var::constant(Tensor::randn(&[2, channels, 12, 12], &mut seeded_rng(2)));
        let y1 = no_grad(|| m.forward(&x)).value_clone();
        let y2 = no_grad(|| m.forward(&x)).value_clone();
        assert_eq!(y1.data(), y2.data(), "{}: eval mode not pure", spec.name());
    }
}

#[test]
fn logits_are_finite_for_extreme_inputs() {
    for (spec, channels) in all_specs() {
        let m = spec.build(channels, 10, 8, 2);
        for fill in [-1.0f32, 0.0, 1.0] {
            let x = Var::constant(Tensor::full(&[2, channels, 8, 8], fill));
            let y = no_grad(|| m.forward(&x));
            assert!(y.value().all_finite(), "{}: non-finite logits at fill {fill}", spec.name());
        }
    }
}

#[test]
fn generator_scales_with_spec() {
    let small = GeneratorSpec { z_dim: 16, ngf: 4 }.build(3, 8, 1);
    let big = GeneratorSpec { z_dim: 64, ngf: 16 }.build(3, 8, 1);
    assert!(param_count(&small) < param_count(&big));
    // Same seed, same spec => identical samples.
    let g1 = GeneratorSpec::default().build(1, 8, 42);
    let g2 = GeneratorSpec::default().build(1, 8, 42);
    let z = g1.sample_z(2, &mut seeded_rng(3));
    g1.set_training(false);
    g2.set_training(false);
    let a = no_grad(|| g1.forward(&Var::constant(z.clone()))).value_clone();
    let b = no_grad(|| g2.forward(&Var::constant(z))).value_clone();
    assert_eq!(a.data(), b.data());
}

#[test]
fn param_counts_are_stable_across_rebuilds() {
    // Architecture size must depend only on the spec + geometry, never on
    // the seed — communication accounting relies on this.
    for (spec, channels) in all_specs() {
        let a = param_count(spec.build(channels, 10, 12, 1).as_ref());
        let b = param_count(spec.build(channels, 10, 12, 999).as_ref());
        assert_eq!(a, b, "{}", spec.name());
    }
}
