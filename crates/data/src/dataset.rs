//! The labelled image [`Dataset`] container.

use fedzkt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// An in-memory labelled image dataset (NCHW images in `[-1, 1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset from an image batch and labels.
    ///
    /// # Panics
    /// Panics when `images` is not 4-D, the batch size differs from
    /// `labels.len()`, or a label is `>= num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.ndim(), 4, "images must be [N, C, H, W]");
        assert_eq!(images.shape()[0], labels.len(), "batch/labels mismatch");
        assert!(labels.iter().all(|&l| l < num_classes), "label out of range");
        Dataset { images, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image channel count.
    pub fn channels(&self) -> usize {
        self.images.shape()[1]
    }

    /// Image side length (images are square).
    pub fn img_size(&self) -> usize {
        self.images.shape()[2]
    }

    /// All images as one `[N, C, H, W]` tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gather a mini-batch by sample indices.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let images = self.images.gather_first(indices).expect("batch indices in range");
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (images, labels)
    }

    /// A new dataset containing only the given samples (device shard).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (images, labels) = self.batch(indices);
        Dataset { images, labels, num_classes: self.num_classes }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Number of distinct classes present.
    pub fn distinct_classes(&self) -> usize {
        self.class_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Concatenate several datasets (e.g. the centralized "upper bound"
    /// union of all device shards in Table III).
    ///
    /// # Panics
    /// Panics when the list is empty or geometries/class counts disagree.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        assert!(!parts.is_empty(), "concat of zero datasets");
        let num_classes = parts[0].num_classes;
        assert!(parts.iter().all(|p| p.num_classes == num_classes), "class count mismatch");
        let images: Vec<&Tensor> = parts.iter().map(|p| &p.images).collect();
        let images = Tensor::concat_first(&images).expect("image geometry mismatch");
        let labels = parts.iter().flat_map(|p| p.labels.iter().copied()).collect();
        Dataset { images, labels, num_classes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[4, 1, 2, 2]).unwrap();
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.channels(), 1);
        assert_eq!(d.img_size(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.distinct_classes(), 2);
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(y, vec![0, 0]);
        assert_eq!(x.data()[0], 8.0);
    }

    #[test]
    fn subset_and_concat_roundtrip() {
        let d = toy();
        let a = d.subset(&[0, 1]);
        let b = d.subset(&[2, 3]);
        let back = Dataset::concat(&[&a, &b]);
        assert_eq!(back, d);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new(images, vec![5], 2);
    }

    #[test]
    fn empty_subset() {
        let d = toy();
        let e = d.subset(&[]);
        assert!(e.is_empty());
        assert_eq!(e.distinct_classes(), 0);
    }
}
