//! The labelled image [`Dataset`] container.

use fedzkt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from constructing a [`Dataset`] out of inconsistent pieces — the
/// typed counterpart of the panicking constructors, for callers (such as
/// scenario validation) that want to report the problem instead of
/// aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// The image tensor is not `[N, C, H, W]`.
    NotImageBatch {
        /// Dimensionality received.
        ndim: usize,
    },
    /// Image batch size and label count disagree.
    BatchLabelsMismatch {
        /// Images in the batch.
        images: usize,
        /// Labels supplied.
        labels: usize,
    },
    /// A label is `>= num_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared class count.
        num_classes: usize,
    },
    /// Concatenation of zero datasets.
    EmptyConcat,
    /// Concatenated parts disagree on class count or image geometry.
    IncompatibleParts(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::NotImageBatch { ndim } => {
                write!(f, "images must be [N, C, H, W], got {ndim} dimensions")
            }
            DataError::BatchLabelsMismatch { images, labels } => {
                write!(f, "batch/labels mismatch: {images} images, {labels} labels")
            }
            DataError::LabelOutOfRange { label, num_classes } => {
                write!(f, "label out of range: {label} >= {num_classes}")
            }
            DataError::EmptyConcat => write!(f, "concat of zero datasets"),
            DataError::IncompatibleParts(msg) => write!(f, "incompatible parts: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

/// An in-memory labelled image dataset (NCHW images in `[-1, 1]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset from an image batch and labels.
    ///
    /// # Panics
    /// Panics when `images` is not 4-D, the batch size differs from
    /// `labels.len()`, or a label is `>= num_classes`. Use
    /// [`Dataset::try_new`] to receive these as typed errors instead.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        Self::try_new(images, labels, num_classes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Dataset::new`].
    ///
    /// # Errors
    /// Returns a [`DataError`] describing the first inconsistency found.
    pub fn try_new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DataError> {
        if images.ndim() != 4 {
            return Err(DataError::NotImageBatch { ndim: images.ndim() });
        }
        if images.shape()[0] != labels.len() {
            return Err(DataError::BatchLabelsMismatch {
                images: images.shape()[0],
                labels: labels.len(),
            });
        }
        if let Some(&label) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DataError::LabelOutOfRange { label, num_classes });
        }
        Ok(Dataset { images, labels, num_classes })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image channel count.
    pub fn channels(&self) -> usize {
        self.images.shape()[1]
    }

    /// Image side length (images are square).
    pub fn img_size(&self) -> usize {
        self.images.shape()[2]
    }

    /// All images as one `[N, C, H, W]` tensor.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gather a mini-batch by sample indices.
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let images = self.images.gather_first(indices).expect("batch indices in range");
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (images, labels)
    }

    /// A new dataset containing only the given samples (device shard).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let (images, labels) = self.batch(indices);
        Dataset { images, labels, num_classes: self.num_classes }
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Number of distinct classes present.
    pub fn distinct_classes(&self) -> usize {
        self.class_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Concatenate several datasets (e.g. the centralized "upper bound"
    /// union of all device shards in Table III).
    ///
    /// # Panics
    /// Panics when the list is empty or geometries/class counts disagree.
    /// Use [`Dataset::try_concat`] to receive these as typed errors.
    pub fn concat(parts: &[&Dataset]) -> Dataset {
        Self::try_concat(parts).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Dataset::concat`].
    ///
    /// # Errors
    /// Returns a [`DataError`] when the list is empty or the parts disagree
    /// on class count or image geometry.
    pub fn try_concat(parts: &[&Dataset]) -> Result<Dataset, DataError> {
        if parts.is_empty() {
            return Err(DataError::EmptyConcat);
        }
        let num_classes = parts[0].num_classes;
        if let Some(p) = parts.iter().find(|p| p.num_classes != num_classes) {
            return Err(DataError::IncompatibleParts(format!(
                "class count mismatch: {} vs {num_classes}",
                p.num_classes
            )));
        }
        let images: Vec<&Tensor> = parts.iter().map(|p| &p.images).collect();
        let images = Tensor::concat_first(&images)
            .map_err(|e| DataError::IncompatibleParts(format!("image geometry mismatch: {e}")))?;
        let labels = parts.iter().flat_map(|p| p.labels.iter().copied()).collect();
        Ok(Dataset { images, labels, num_classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[4, 1, 2, 2]).unwrap();
        Dataset::new(images, vec![0, 1, 0, 1], 2)
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.channels(), 1);
        assert_eq!(d.img_size(), 2);
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.distinct_classes(), 2);
    }

    #[test]
    fn batch_gathers_rows() {
        let d = toy();
        let (x, y) = d.batch(&[2, 0]);
        assert_eq!(x.shape(), &[2, 1, 2, 2]);
        assert_eq!(y, vec![0, 0]);
        assert_eq!(x.data()[0], 8.0);
    }

    #[test]
    fn subset_and_concat_roundtrip() {
        let d = toy();
        let a = d.subset(&[0, 1]);
        let b = d.subset(&[2, 3]);
        let back = Dataset::concat(&[&a, &b]);
        assert_eq!(back, d);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new(images, vec![5], 2);
    }

    #[test]
    fn try_constructors_return_typed_errors() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert_eq!(
            Dataset::try_new(Tensor::zeros(&[4]), vec![0], 2),
            Err(DataError::NotImageBatch { ndim: 1 })
        );
        assert_eq!(
            Dataset::try_new(images.clone(), vec![0], 2),
            Err(DataError::BatchLabelsMismatch { images: 2, labels: 1 })
        );
        assert_eq!(
            Dataset::try_new(images.clone(), vec![0, 7], 2),
            Err(DataError::LabelOutOfRange { label: 7, num_classes: 2 })
        );
        assert!(Dataset::try_new(images, vec![0, 1], 2).is_ok());
        assert_eq!(Dataset::try_concat(&[]), Err(DataError::EmptyConcat));
        let a = toy();
        let b = Dataset::new(Tensor::zeros(&[1, 1, 2, 2]), vec![0], 3);
        assert!(matches!(
            Dataset::try_concat(&[&a, &b]),
            Err(DataError::IncompatibleParts(_))
        ));
        let wide = Dataset::new(Tensor::zeros(&[1, 1, 4, 4]), vec![0], 2);
        assert!(matches!(
            Dataset::try_concat(&[&a, &wide]),
            Err(DataError::IncompatibleParts(_))
        ));
    }

    #[test]
    fn empty_subset() {
        let d = toy();
        let e = d.subset(&[]);
        assert!(e.is_empty());
        assert_eq!(e.distinct_classes(), 0);
    }
}
