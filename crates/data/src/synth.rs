//! Synthetic class-conditional image families.
//!
//! Each family defines a deterministic per-class *prototype* image (from a
//! seeded RNG) and samples are prototypes under random translation,
//! intensity jitter and pixel noise, clamped to `[-1, 1]`. Families differ
//! in their generative processes, which controls *cross-family transfer*:
//!
//! | family | process | role in the paper |
//! |---|---|---|
//! | `MnistLike` | smooth stroke blobs, 1 channel, high SNR | MNIST |
//! | `KmnistLike` | angular multi-stroke blobs, 1 channel | KMNIST |
//! | `FashionLike` | rectangular silhouettes, 1 channel | FASHION |
//! | `Cifar10Like` | low-frequency color fields + blobs, 3 channels | CIFAR-10 |
//! | `Cifar100Like` | **mixtures of `Cifar10Like` prototypes** (correlated) | CIFAR-100 public |
//! | `SvhnLike` | high-contrast stripe/digit grid (disjoint stats) | SVHN public |

use crate::Dataset;
use fedzkt_tensor::{seeded_rng, split_seed, standard_normal, Prng, Tensor};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// A synthetic dataset family standing in for one of the paper's corpora.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataFamily {
    /// MNIST stand-in: smooth single-stroke grayscale digits.
    MnistLike,
    /// KMNIST stand-in: angular multi-stroke grayscale glyphs.
    KmnistLike,
    /// FASHION-MNIST stand-in: rectangular grayscale silhouettes.
    FashionLike,
    /// CIFAR-10 stand-in: low-frequency color textures.
    Cifar10Like,
    /// CIFAR-100 stand-in: correlated mixtures of CIFAR-10-like classes
    /// (similar distribution — the "good" public dataset).
    Cifar100Like,
    /// SVHN stand-in: saturated stripe/digit patterns from a disjoint
    /// process (the "bad" public dataset).
    SvhnLike,
}

impl DataFamily {
    /// Image channel count (1 for the grayscale families, 3 otherwise).
    pub fn channels(&self) -> usize {
        match self {
            DataFamily::MnistLike | DataFamily::KmnistLike | DataFamily::FashionLike => 1,
            _ => 3,
        }
    }

    /// Default class count: 10 everywhere except the CIFAR-100 stand-in,
    /// which uses 20 (a scaled-down "many more classes than the private
    /// task" regime).
    pub fn default_classes(&self) -> usize {
        match self {
            DataFamily::Cifar100Like => 20,
            _ => 10,
        }
    }

    /// Default pixel-noise level: the color families are harder.
    pub fn default_noise(&self) -> f32 {
        match self {
            DataFamily::MnistLike => 0.25,
            DataFamily::KmnistLike | DataFamily::FashionLike => 0.35,
            DataFamily::Cifar10Like | DataFamily::Cifar100Like => 0.5,
            DataFamily::SvhnLike => 0.4,
        }
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            DataFamily::MnistLike => "MNIST",
            DataFamily::KmnistLike => "KMNIST",
            DataFamily::FashionLike => "FASHION",
            DataFamily::Cifar10Like => "CIFAR-10",
            DataFamily::Cifar100Like => "CIFAR-100",
            DataFamily::SvhnLike => "SVHN",
        }
    }

    /// Deterministic per-class prototype image, independent of the
    /// dataset-generation seed (class identity is a property of the family,
    /// not of a particular sampled dataset).
    fn prototype(&self, class: usize, img: usize) -> Vec<f32> {
        let channels = self.channels();
        match self {
            DataFamily::MnistLike => {
                let mut rng = seeded_rng(split_seed(0x11AA, class as u64));
                stroke_blobs(img, 4, 2.2, &mut rng)
            }
            DataFamily::KmnistLike => {
                let mut rng = seeded_rng(split_seed(0x22BB, class as u64));
                let a = stroke_blobs(img, 3, 1.4, &mut rng);
                let b = stroke_blobs(img, 3, 1.4, &mut rng);
                a.iter().zip(&b).map(|(x, y)| (x + y).clamp(-1.0, 1.0)).collect()
            }
            DataFamily::FashionLike => {
                let mut rng = seeded_rng(split_seed(0x33CC, class as u64));
                rect_silhouette(img, &mut rng)
            }
            DataFamily::Cifar10Like => {
                let mut rng = seeded_rng(split_seed(0x44DD, class as u64));
                color_field(img, channels, &mut rng)
            }
            DataFamily::Cifar100Like => {
                // Correlated with Cifar10Like (same generative process,
                // overlapping texture manifold) but a *different labelled
                // task*: each public class blends two scrambled base
                // classes with a substantial unique component, so public
                // labels are not a relabelling of the private ones.
                let base_a = DataFamily::Cifar10Like.prototype((class * 7 + 3) % 10, img);
                let base_b = DataFamily::Cifar10Like.prototype((class * 3 + 1) % 10, img);
                let mut rng = seeded_rng(split_seed(0x55EE, class as u64));
                let unique = color_field(img, channels, &mut rng);
                base_a
                    .iter()
                    .zip(&base_b)
                    .zip(&unique)
                    .map(|((a, b), u)| (0.35 * a + 0.2 * b + 0.45 * u).clamp(-1.0, 1.0))
                    .collect()
            }
            DataFamily::SvhnLike => {
                let mut rng = seeded_rng(split_seed(0x66FF, class as u64));
                stripe_digits(img, channels, class, &mut rng)
            }
        }
    }
}

/// Smooth stroke: a chain of Gaussian bumps along a random walk.
fn stroke_blobs(img: usize, bumps: usize, sigma: f32, rng: &mut Prng) -> Vec<f32> {
    let mut out = vec![-1.0f32; img * img];
    let mut cx = rng.random::<f32>() * img as f32 * 0.6 + img as f32 * 0.2;
    let mut cy = rng.random::<f32>() * img as f32 * 0.6 + img as f32 * 0.2;
    for _ in 0..bumps {
        for y in 0..img {
            for x in 0..img {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                let v = 2.0 * (-d2 / (2.0 * sigma * sigma)).exp();
                out[y * img + x] = (out[y * img + x] + v).min(1.0);
            }
        }
        cx = (cx + (rng.random::<f32>() - 0.5) * img as f32 * 0.5)
            .clamp(1.0, img as f32 - 2.0);
        cy = (cy + (rng.random::<f32>() - 0.5) * img as f32 * 0.5)
            .clamp(1.0, img as f32 - 2.0);
    }
    out
}

/// Rectangular silhouette with soft edges (clothing-like).
fn rect_silhouette(img: usize, rng: &mut Prng) -> Vec<f32> {
    let mut out = vec![-1.0f32; img * img];
    let rects = 2 + (rng.random::<u32>() % 2) as usize;
    for _ in 0..rects {
        let x0 = rng.random_range(0..img / 2);
        let y0 = rng.random_range(0..img / 2);
        let w = rng.random_range(img / 4..img / 2 + 1);
        let h = rng.random_range(img / 4..img / 2 + 1);
        let level = 0.4 + rng.random::<f32>() * 0.6;
        for y in y0..(y0 + h).min(img) {
            for x in x0..(x0 + w).min(img) {
                out[y * img + x] = (out[y * img + x] + level * 1.6).min(1.0);
            }
        }
    }
    out
}

/// Low-frequency per-channel sinusoid field plus blobs (CIFAR-ish texture).
fn color_field(img: usize, channels: usize, rng: &mut Prng) -> Vec<f32> {
    let mut out = vec![0.0f32; channels * img * img];
    for c in 0..channels {
        let fx = 0.5 + rng.random::<f32>() * 1.5;
        let fy = 0.5 + rng.random::<f32>() * 1.5;
        let phase_x = rng.random::<f32>() * std::f32::consts::TAU;
        let phase_y = rng.random::<f32>() * std::f32::consts::TAU;
        let amp = 0.5 + rng.random::<f32>() * 0.5;
        let plane = &mut out[c * img * img..(c + 1) * img * img];
        for y in 0..img {
            for x in 0..img {
                let v = amp
                    * ((x as f32 / img as f32 * fx * std::f32::consts::TAU + phase_x).sin()
                        + (y as f32 / img as f32 * fy * std::f32::consts::TAU + phase_y).sin())
                    / 2.0;
                plane[y * img + x] = v;
            }
        }
        // One blob per channel for localised structure.
        let cx = rng.random::<f32>() * img as f32;
        let cy = rng.random::<f32>() * img as f32;
        let sign = if rng.random::<f32>() > 0.5 { 1.0 } else { -1.0 };
        for y in 0..img {
            for x in 0..img {
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                plane[y * img + x] =
                    (plane[y * img + x] + sign * (-d2 / (img as f32)).exp()).clamp(-1.0, 1.0);
            }
        }
    }
    out
}

/// Saturated stripe/digit grid — deliberately different pixel statistics
/// from [`color_field`] (hard edges, near-binary values, strong vertical
/// structure).
fn stripe_digits(img: usize, channels: usize, class: usize, rng: &mut Prng) -> Vec<f32> {
    let mut out = vec![0.0f32; channels * img * img];
    // Narrow periods keep the energy in high spatial frequencies, which is
    // what separates this family from the smooth low-frequency
    // [`color_field`] manifold even on tiny images.
    let period = 1 + class % 3;
    let bg = if rng.random::<f32>() > 0.5 { 0.9 } else { -0.9 };
    for c in 0..channels {
        let flip = if (c + class).is_multiple_of(2) { 1.0 } else { -1.0 };
        let plane = &mut out[c * img * img..(c + 1) * img * img];
        for y in 0..img {
            for x in 0..img {
                let stripe: f32 = if (x / period).is_multiple_of(2) { 1.0 } else { -1.0 };
                plane[y * img + x] = (bg * flip * stripe).clamp(-1.0, 1.0);
            }
        }
        // A class-dependent solid block (digit-ish marker).
        let bx = (class * 3) % (img / 2).max(1);
        let by = (class * 5) % (img / 2).max(1);
        for y in by..(by + img / 3).min(img) {
            for x in bx..(bx + img / 3).min(img) {
                plane[y * img + x] = -bg;
            }
        }
    }
    out
}

/// Configuration for synthetic dataset generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Which family to draw from.
    pub family: DataFamily,
    /// Image side length (must be divisible by 4 for the model zoo).
    pub img: usize,
    /// Number of training samples.
    pub train_n: usize,
    /// Number of test samples.
    pub test_n: usize,
    /// Override the class count (0 = family default).
    pub classes: usize,
    /// Override the pixel-noise standard deviation (negative = family
    /// default).
    pub noise_std: f32,
    /// Seed for sampling (prototypes are seed-independent).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            family: DataFamily::MnistLike,
            img: 16,
            train_n: 1024,
            test_n: 512,
            classes: 0,
            noise_std: -1.0,
            seed: 0,
        }
    }
}

impl SynthConfig {
    /// Effective class count.
    pub fn num_classes(&self) -> usize {
        if self.classes == 0 {
            self.family.default_classes()
        } else {
            self.classes
        }
    }

    /// Generate `(train, test)` datasets with balanced class frequencies.
    pub fn generate(&self) -> (Dataset, Dataset) {
        let train = self.generate_split(self.train_n, split_seed(self.seed, 1));
        let test = self.generate_split(self.test_n, split_seed(self.seed, 2));
        (train, test)
    }

    fn generate_split(&self, n: usize, seed: u64) -> Dataset {
        let img = self.img;
        let channels = self.family.channels();
        let classes = self.num_classes();
        let noise = if self.noise_std < 0.0 {
            self.family.default_noise()
        } else {
            self.noise_std
        };
        let mut rng = seeded_rng(seed);
        let prototypes: Vec<Vec<f32>> =
            (0..classes).map(|c| self.family.prototype(c, img)).collect();
        // Grayscale prototypes are one plane; tile across channels.
        let plane = img * img;
        let mut images = Vec::with_capacity(n * channels * plane);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % classes; // balanced
            let proto = &prototypes[class];
            let dx = rng.random_range(0..5) as isize - 2;
            let dy = rng.random_range(0..5) as isize - 2;
            let gain = 0.8 + rng.random::<f32>() * 0.4;
            for c in 0..channels {
                let src = if proto.len() == plane { &proto[..] } else { &proto[c * plane..(c + 1) * plane] };
                for y in 0..img {
                    for x in 0..img {
                        let sx = x as isize - dx;
                        let sy = y as isize - dy;
                        let base = if sx >= 0 && sy >= 0 && (sx as usize) < img && (sy as usize) < img {
                            src[sy as usize * img + sx as usize]
                        } else {
                            -1.0
                        };
                        let v = base * gain + standard_normal(&mut rng) * noise;
                        images.push(v.clamp(-1.0, 1.0));
                    }
                }
            }
            labels.push(class);
        }
        let images = Tensor::from_vec(images, &[n, channels, img, img]).expect("image batch");
        Dataset::new(images, labels, classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let cfg = SynthConfig {
            family: DataFamily::Cifar10Like,
            img: 8,
            train_n: 20,
            test_n: 10,
            seed: 3,
            ..Default::default()
        };
        let (train, test) = cfg.generate();
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
        assert_eq!(train.channels(), 3);
        assert_eq!(train.img_size(), 8);
    }

    #[test]
    fn images_live_in_unit_range() {
        for family in [
            DataFamily::MnistLike,
            DataFamily::KmnistLike,
            DataFamily::FashionLike,
            DataFamily::Cifar10Like,
            DataFamily::Cifar100Like,
            DataFamily::SvhnLike,
        ] {
            let cfg = SynthConfig { family, img: 8, train_n: 12, test_n: 4, seed: 1, ..Default::default() };
            let (train, _) = cfg.generate();
            assert!(
                train.images().data().iter().all(|&v| (-1.0..=1.0).contains(&v)),
                "{family:?} out of range"
            );
        }
    }

    #[test]
    fn classes_are_balanced() {
        let cfg = SynthConfig { img: 8, train_n: 100, test_n: 10, seed: 2, ..Default::default() };
        let (train, _) = cfg.generate();
        let counts = train.class_counts();
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn same_seed_same_data_different_seed_different_data() {
        let base = SynthConfig { img: 8, train_n: 8, test_n: 4, seed: 5, ..Default::default() };
        let (a, _) = base.generate();
        let (b, _) = base.generate();
        assert_eq!(a, b);
        let (c, _) = SynthConfig { seed: 6, ..base }.generate();
        assert_ne!(a, c);
    }

    #[test]
    fn prototypes_are_class_distinct() {
        for family in [DataFamily::MnistLike, DataFamily::Cifar10Like, DataFamily::SvhnLike] {
            let p0 = family.prototype(0, 8);
            let p1 = family.prototype(1, 8);
            let dist: f32 = p0.iter().zip(&p1).map(|(a, b)| (a - b).abs()).sum();
            assert!(dist > 1.0, "{family:?} prototypes too close: {dist}");
        }
    }

    #[test]
    fn cifar100_is_correlated_with_cifar10_svhn_is_not() {
        // The property FedMD's Table-I contrast rests on: CIFAR-100-like
        // prototypes live on the CIFAR-10-like texture manifold (high
        // correlation with *some* base class), while SVHN-like prototypes
        // do not. Class indices are deliberately scrambled, so compare
        // against the best-matching base class.
        let img = 8;
        let corr = |a: &[f32], b: &[f32]| -> f32 {
            let ma = a.iter().sum::<f32>() / a.len() as f32;
            let mb = b.iter().sum::<f32>() / b.len() as f32;
            let cov: f32 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f32 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f32 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
            (cov / (va.sqrt() * vb.sqrt() + 1e-9)).abs()
        };
        let best_match = |family: DataFamily| -> f32 {
            let mut best = 0.0f32;
            for class in 0..4 {
                let p = family.prototype(class, img);
                for base in 0..10 {
                    let b = DataFamily::Cifar10Like.prototype(base, img);
                    best = best.max(corr(&p, &b));
                }
            }
            best
        };
        let c100 = best_match(DataFamily::Cifar100Like);
        let svhn = best_match(DataFamily::SvhnLike);
        assert!(
            c100 > svhn + 0.1,
            "cifar100 best-match {c100} should clearly exceed svhn best-match {svhn}"
        );
    }

    #[test]
    fn custom_class_count() {
        let cfg = SynthConfig { classes: 4, img: 8, train_n: 8, test_n: 4, ..Default::default() };
        let (train, _) = cfg.generate();
        assert_eq!(train.num_classes(), 4);
    }
}
