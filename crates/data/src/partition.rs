//! Federated data partitioners (§IV-A4 of the paper).

use fedzkt_tensor::{seeded_rng, Prng};
use rand::seq::SliceRandom;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error from an impossible partition request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// Zero devices requested.
    NoDevices,
    /// The skew parameters are out of range (e.g. more classes per device
    /// than exist, or β ≤ 0).
    InvalidParameter(String),
    /// Not enough samples to give every device at least one.
    NotEnoughSamples {
        /// Samples available.
        samples: usize,
        /// Devices requested.
        devices: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoDevices => write!(f, "device count must be positive"),
            PartitionError::InvalidParameter(msg) => write!(f, "invalid partition parameter: {msg}"),
            PartitionError::NotEnoughSamples { samples, devices } => {
                write!(f, "cannot give {devices} devices at least one of {samples} samples")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// How to split a dataset across federated devices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Uniformly random assignment (the paper's IID setting).
    Iid,
    /// Quantity-based label imbalance: each device holds data from exactly
    /// `classes_per_device` classes (paper: c ∈ {2, 3, 4, 5}).
    QuantitySkew {
        /// Number of classes each device owns.
        classes_per_device: usize,
    },
    /// Distribution-based label imbalance: per-class device proportions
    /// drawn from `Dir(beta)` (paper: β ∈ {0.1, 0.5, 1, 5}).
    Dirichlet {
        /// Concentration parameter; smaller is more skewed.
        beta: f32,
    },
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partition::Iid => write!(f, "IID"),
            Partition::QuantitySkew { classes_per_device } => {
                write!(f, "quantity-skew(c={classes_per_device})")
            }
            Partition::Dirichlet { beta } => write!(f, "dirichlet(beta={beta})"),
        }
    }
}

impl Partition {
    /// Split sample indices across `k` devices.
    ///
    /// Returns one index list per device; the lists are disjoint and cover
    /// every sample except (for the skewed schemes) samples of classes a
    /// device set cannot legally hold. Every device receives at least one
    /// sample.
    ///
    /// # Errors
    /// Returns a [`PartitionError`] for impossible requests (zero devices,
    /// `c` larger than the class count, β ≤ 0, fewer samples than devices).
    pub fn split(
        &self,
        labels: &[usize],
        num_classes: usize,
        k: usize,
        seed: u64,
    ) -> Result<Vec<Vec<usize>>, PartitionError> {
        if k == 0 {
            return Err(PartitionError::NoDevices);
        }
        if labels.len() < k {
            return Err(PartitionError::NotEnoughSamples { samples: labels.len(), devices: k });
        }
        let mut rng = seeded_rng(seed);
        let mut shards = match self {
            Partition::Iid => iid_split(labels.len(), k, &mut rng),
            Partition::QuantitySkew { classes_per_device } => {
                if *classes_per_device == 0 || *classes_per_device > num_classes {
                    return Err(PartitionError::InvalidParameter(format!(
                        "classes_per_device {classes_per_device} outside 1..={num_classes}"
                    )));
                }
                quantity_skew_split(labels, num_classes, k, *classes_per_device, &mut rng)
            }
            Partition::Dirichlet { beta } => {
                if !beta.is_finite() || *beta <= 0.0 {
                    return Err(PartitionError::InvalidParameter(format!("beta {beta} must be > 0")));
                }
                dirichlet_split(labels, num_classes, k, *beta, &mut rng)
            }
        };
        if !rebalance_empty(&mut shards) {
            // The skewed schemes can drop samples of unowned classes; when
            // too few remain to cover every device, say so instead of
            // handing the simulation an empty shard (which would only fail
            // later, deep inside local training).
            let assigned: usize = shards.iter().map(Vec::len).sum();
            return Err(PartitionError::NotEnoughSamples { samples: assigned, devices: k });
        }
        Ok(shards)
    }
}

fn iid_split(n: usize, k: usize, rng: &mut Prng) -> Vec<Vec<usize>> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut shards = vec![Vec::with_capacity(n / k + 1); k];
    for (i, sample) in idx.into_iter().enumerate() {
        shards[i % k].push(sample);
    }
    shards
}

/// Each device draws `c` classes; samples of each class are divided evenly
/// among the devices holding that class (the standard implementation from
/// the non-IID benchmark literature the paper cites [45]).
fn quantity_skew_split(
    labels: &[usize],
    num_classes: usize,
    k: usize,
    c: usize,
    rng: &mut Prng,
) -> Vec<Vec<usize>> {
    // Assign class sets: round-robin over classes guarantees coverage.
    let mut device_classes: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut class_order: Vec<usize> = (0..num_classes).collect();
    class_order.shuffle(rng);
    let mut cursor = 0usize;
    for classes in device_classes.iter_mut() {
        for _ in 0..c {
            classes.push(class_order[cursor % num_classes]);
            cursor += 1;
        }
    }
    // Holders per class.
    let mut holders: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (dev, classes) in device_classes.iter().enumerate() {
        for &cl in classes {
            holders[cl].push(dev);
        }
    }
    // Spread each class's samples round-robin over its holders.
    let mut shards = vec![Vec::new(); k];
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    for (cl, samples) in by_class.into_iter().enumerate() {
        let hs = &holders[cl];
        if hs.is_empty() {
            continue; // class unowned: dropped, like the reference impls
        }
        for (j, s) in samples.into_iter().enumerate() {
            shards[hs[j % hs.len()]].push(s);
        }
    }
    shards
}

/// Sample one Gamma(alpha, 1) variate (Marsaglia–Tsang, with the alpha < 1
/// boost), used to build Dirichlet draws.
fn gamma_sample(alpha: f32, rng: &mut Prng) -> f32 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f32 = rng.random::<f32>().max(1e-7);
        return gamma_sample(alpha + 1.0, rng) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = fedzkt_tensor::standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f32 = rng.random::<f32>().max(1e-7);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// For each class, draw device proportions from Dir(beta) and deal the
/// class's samples accordingly.
fn dirichlet_split(
    labels: &[usize],
    num_classes: usize,
    k: usize,
    beta: f32,
    rng: &mut Prng,
) -> Vec<Vec<usize>> {
    let mut shards = vec![Vec::new(); k];
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    for samples in by_class.into_iter() {
        if samples.is_empty() {
            continue;
        }
        let mut props: Vec<f32> = (0..k).map(|_| gamma_sample(beta, rng)).collect();
        let total: f32 = props.iter().sum::<f32>().max(1e-9);
        for p in &mut props {
            *p /= total;
        }
        // Convert proportions to cumulative sample boundaries.
        let n = samples.len();
        let mut boundaries = Vec::with_capacity(k);
        let mut acc = 0.0f32;
        for p in &props {
            acc += p;
            boundaries.push(((acc * n as f32).round() as usize).min(n));
        }
        let mut start = 0usize;
        for (dev, &end) in boundaries.iter().enumerate() {
            for &s in &samples[start..end.max(start)] {
                shards[dev].push(s);
            }
            start = end.max(start);
        }
    }
    shards
}

/// Guarantee non-empty shards by donating from the largest shard — the
/// simulation requires every device to hold at least one sample. Returns
/// `false` when the assigned samples cannot cover every shard (the caller
/// reports that as a [`PartitionError`] rather than returning an empty
/// device).
fn rebalance_empty(shards: &mut [Vec<usize>]) -> bool {
    loop {
        let Some(empty) = shards.iter().position(Vec::is_empty) else { return true };
        let donor = shards
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .expect("non-empty shard set");
        if shards[donor].len() <= 1 {
            return false; // nothing left to donate: a shard stays empty
        }
        let moved = shards[donor].pop().expect("donor has samples");
        shards[empty].push(moved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize, classes: usize) -> Vec<usize> {
        (0..n).map(|i| i % classes).collect()
    }

    fn assert_disjoint_cover(shards: &[Vec<usize>], n: usize, complete: bool) {
        let mut seen = vec![false; n];
        for shard in shards {
            for &i in shard {
                assert!(!seen[i], "sample {i} assigned twice");
                seen[i] = true;
            }
        }
        if complete {
            assert!(seen.iter().all(|&s| s), "not all samples assigned");
        }
    }

    #[test]
    fn iid_covers_all_disjointly() {
        let l = labels(100, 10);
        let shards = Partition::Iid.split(&l, 10, 7, 1).unwrap();
        assert_eq!(shards.len(), 7);
        assert_disjoint_cover(&shards, 100, true);
        // Roughly equal sizes.
        assert!(shards.iter().all(|s| (14..=15).contains(&s.len())));
    }

    #[test]
    fn quantity_skew_limits_classes() {
        let l = labels(200, 10);
        for c in [2usize, 3, 5] {
            let shards = Partition::QuantitySkew { classes_per_device: c }
                .split(&l, 10, 10, 3)
                .unwrap();
            assert_disjoint_cover(&shards, 200, false);
            for shard in &shards {
                let mut classes: Vec<usize> = shard.iter().map(|&i| l[i]).collect();
                classes.sort_unstable();
                classes.dedup();
                assert!(classes.len() <= c + 1, "c={c}, got {} classes", classes.len());
            }
        }
    }

    #[test]
    fn dirichlet_small_beta_is_skewed_large_beta_is_flat() {
        let l = labels(1000, 10);
        let spread = |beta: f32| -> f32 {
            let shards = Partition::Dirichlet { beta }.split(&l, 10, 10, 11).unwrap();
            // Mean within-device class-distribution entropy.
            let mut total_entropy = 0.0f32;
            for shard in &shards {
                let mut counts = [0f32; 10];
                for &i in shard {
                    counts[l[i]] += 1.0;
                }
                let n: f32 = counts.iter().sum();
                if n == 0.0 {
                    continue;
                }
                let h: f32 = counts
                    .iter()
                    .filter(|&&c| c > 0.0)
                    .map(|&c| {
                        let p = c / n;
                        -p * p.ln()
                    })
                    .sum();
                total_entropy += h;
            }
            total_entropy / shards.len() as f32
        };
        assert!(spread(0.1) < spread(5.0), "low beta should be more skewed");
    }

    #[test]
    fn dirichlet_covers_disjointly() {
        let l = labels(500, 10);
        let shards = Partition::Dirichlet { beta: 0.5 }.split(&l, 10, 8, 5).unwrap();
        assert_disjoint_cover(&shards, 500, true);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn every_device_gets_a_sample() {
        let l = labels(64, 10);
        for p in [
            Partition::Iid,
            Partition::QuantitySkew { classes_per_device: 2 },
            Partition::Dirichlet { beta: 0.1 },
        ] {
            let shards = p.split(&l, 10, 16, 9).unwrap();
            assert!(shards.iter().all(|s| !s.is_empty()), "{p} left a device empty");
        }
    }

    #[test]
    fn rejects_invalid_requests() {
        let l = labels(10, 10);
        assert!(matches!(Partition::Iid.split(&l, 10, 0, 1), Err(PartitionError::NoDevices)));
        assert!(Partition::QuantitySkew { classes_per_device: 11 }.split(&l, 10, 2, 1).is_err());
        assert!(Partition::QuantitySkew { classes_per_device: 0 }.split(&l, 10, 2, 1).is_err());
        assert!(Partition::Dirichlet { beta: 0.0 }.split(&l, 10, 2, 1).is_err());
        assert!(Partition::Dirichlet { beta: -1.0 }.split(&l, 10, 2, 1).is_err());
        assert!(matches!(
            Partition::Iid.split(&labels(3, 3), 3, 5, 1),
            Err(PartitionError::NotEnoughSamples { .. })
        ));
    }

    #[test]
    fn quantity_skew_never_returns_an_empty_shard() {
        // Degenerate corpus: every sample belongs to one class, but devices
        // draw their class sets from all ten. Depending on the seed, the
        // populated class is owned by some device (fine — rebalancing
        // spreads it) or by nobody (every sample is dropped). The latter
        // used to return shards full of empty devices; it must be a typed
        // error instead.
        let l = vec![0usize; 12];
        let mut saw_error = false;
        for seed in 0..64u64 {
            let p = Partition::QuantitySkew { classes_per_device: 1 };
            match p.split(&l, 10, 3, seed) {
                Ok(shards) => {
                    assert!(shards.iter().all(|s| !s.is_empty()), "seed {seed} left a device empty");
                }
                Err(PartitionError::NotEnoughSamples { samples, devices }) => {
                    saw_error = true;
                    assert!(samples < devices, "seed {seed}: {samples} >= {devices}");
                }
                Err(other) => panic!("seed {seed}: unexpected error {other}"),
            }
        }
        assert!(saw_error, "no seed exercised the dropped-corpus path");
    }

    #[test]
    fn deterministic_per_seed() {
        let l = labels(100, 10);
        let a = Partition::Dirichlet { beta: 0.5 }.split(&l, 10, 5, 42).unwrap();
        let b = Partition::Dirichlet { beta: 0.5 }.split(&l, 10, 5, 42).unwrap();
        assert_eq!(a, b);
        let c = Partition::Dirichlet { beta: 0.5 }.split(&l, 10, 5, 43).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn single_device_gets_everything_iid() {
        let l = labels(50, 5);
        let shards = Partition::Iid.split(&l, 5, 1, 2).unwrap();
        assert_eq!(shards[0].len(), 50);
    }

    #[test]
    fn gamma_sampler_has_correct_mean() {
        let mut rng = seeded_rng(13);
        for alpha in [0.3f32, 1.0, 2.5] {
            let n = 4000;
            let mean: f32 =
                (0..n).map(|_| gamma_sample(alpha, &mut rng)).sum::<f32>() / n as f32;
            assert!((mean - alpha).abs() < 0.15 * alpha.max(1.0), "alpha {alpha}: mean {mean}");
        }
    }
}
