//! # fedzkt-data
//!
//! Synthetic federated image datasets and non-IID partitioners for the
//! FedZKT reproduction.
//!
//! The paper evaluates on MNIST, KMNIST, FASHION-MNIST and CIFAR-10, with
//! CIFAR-100 and SVHN as FedMD's public datasets. Those corpora are not
//! available in this offline environment, so this crate generates
//! *synthetic class-conditional image families* with the properties the
//! experiments actually depend on (see DESIGN.md §2):
//!
//! * each family is a classifiable distribution over `[-1, 1]` images with
//!   per-class structure (prototype + jitter + noise);
//! * [`DataFamily::Cifar100Like`] is built from the **same generative
//!   process** as [`DataFamily::Cifar10Like`] (correlated prototypes), so a
//!   model trained on one produces informative logits on the other — the
//!   "similar public dataset" regime of Table I;
//! * [`DataFamily::SvhnLike`] uses a **disjoint process** (stripe/digit
//!   patterns with different pixel statistics) — the "wrong public
//!   dataset" regime where FedMD collapses.
//!
//! Partitioners implement the paper's §IV-A4 scenarios: IID, quantity-based
//! label imbalance (`c` classes per device) and distribution-based label
//! imbalance (Dirichlet `β`).
//!
//! ## Example
//!
//! ```
//! use fedzkt_data::{DataFamily, Partition, SynthConfig};
//!
//! let cfg = SynthConfig { family: DataFamily::MnistLike, img: 8, train_n: 64, test_n: 32, seed: 1, ..Default::default() };
//! let (train, test) = cfg.generate();
//! assert_eq!(train.len(), 64);
//! let shards = Partition::Iid.split(train.labels(), train.num_classes(), 4, 7).unwrap();
//! assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 64);
//! # let _ = test;
//! ```

#![warn(missing_docs)]

mod dataset;
mod loader;
mod partition;
mod synth;

pub use dataset::{DataError, Dataset};
pub use loader::BatchIter;
pub use partition::{Partition, PartitionError};
pub use synth::{DataFamily, SynthConfig};
