//! Shuffled mini-batch iteration.

use fedzkt_tensor::{seeded_rng, Prng};
use rand::seq::SliceRandom;

/// An iterator over shuffled mini-batches of sample indices.
///
/// Reshuffles at construction; call [`BatchIter::new`] once per epoch (or
/// use [`BatchIter::epochs`] to get a flat multi-epoch stream of batches).
#[derive(Debug, Clone)]
pub struct BatchIter {
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    drop_last: bool,
}

impl BatchIter {
    /// Shuffle `n` sample indices into batches of `batch_size` (final
    /// partial batch included).
    ///
    /// # Panics
    /// Panics when `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        let mut rng: Prng = seeded_rng(seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        BatchIter { order, batch_size, cursor: 0, drop_last: false }
    }

    /// Like [`BatchIter::new`] but dropping a trailing partial batch
    /// (useful for batch-norm stability with tiny remainders).
    pub fn new_drop_last(n: usize, batch_size: usize, seed: u64) -> Self {
        let mut it = BatchIter::new(n, batch_size, seed);
        it.drop_last = true;
        it
    }

    /// Flatten `epochs` reshuffled epochs into one batch stream.
    pub fn epochs(n: usize, batch_size: usize, epochs: usize, seed: u64) -> Vec<Vec<usize>> {
        (0..epochs)
            .flat_map(|e| BatchIter::new(n, batch_size, seed.wrapping_add(e as u64)))
            .collect()
    }
}

impl Iterator for BatchIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        if self.drop_last && end - self.cursor < self.batch_size {
            return None;
        }
        let batch = self.order[self.cursor..end].to_vec();
        self.cursor = end;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_indices_once() {
        let batches: Vec<Vec<usize>> = BatchIter::new(10, 3, 1).collect();
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_last_discards_partial() {
        let batches: Vec<Vec<usize>> = BatchIter::new_drop_last(10, 3, 1).collect();
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn epochs_reshuffle() {
        let batches = BatchIter::epochs(8, 8, 2, 5);
        assert_eq!(batches.len(), 2);
        assert_ne!(batches[0], batches[1], "epochs should reshuffle");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<Vec<usize>> = BatchIter::new(20, 4, 9).collect();
        let b: Vec<Vec<usize>> = BatchIter::new(20, 4, 9).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_dataset_yields_no_batches() {
        assert_eq!(BatchIter::new(0, 4, 1).count(), 0);
    }
}
