//! Typed errors for scenario validation, parsing and execution.

use fedzkt_data::{DataError, PartitionError};
use std::fmt;

/// Everything that can go wrong between a scenario description and a
/// finished run.
///
/// Degenerate experiment requests — an empty model zoo, more devices than
/// samples, a quantity skew asking for more classes than exist — surface
/// here as typed values from [`Scenario::validate`](crate::Scenario::validate)
/// *before* any dataset is generated or model built, instead of as panics
/// from deep inside the data or training layers.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The JSON input is not a scenario in the supported schema.
    Parse(String),
    /// A scenario file could not be read or an artifact could not be
    /// written.
    Io(String),
    /// The dataset description is degenerate (zero samples, an image side
    /// the model zoo cannot downsample, too few classes).
    InvalidData(String),
    /// The device zoo is degenerate (empty, zero-count entries, or
    /// heterogeneous where the algorithm requires one architecture).
    InvalidZoo(String),
    /// The algorithm configuration is inconsistent with its variant.
    InvalidAlgorithm(String),
    /// The protocol configuration is degenerate (zero rounds,
    /// out-of-range participation).
    InvalidSim(String),
    /// The resource assignment cannot cover the device population.
    InvalidResources(String),
    /// The partition request is impossible for the described dataset.
    Partition(PartitionError),
    /// A dataset could not be assembled from the described pieces.
    Data(DataError),
    /// No preset with the requested name exists.
    UnknownPreset(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
            ScenarioError::Io(msg) => write!(f, "scenario I/O error: {msg}"),
            ScenarioError::InvalidData(msg) => write!(f, "invalid data description: {msg}"),
            ScenarioError::InvalidZoo(msg) => write!(f, "invalid device zoo: {msg}"),
            ScenarioError::InvalidAlgorithm(msg) => {
                write!(f, "invalid algorithm configuration: {msg}")
            }
            ScenarioError::InvalidSim(msg) => write!(f, "invalid protocol configuration: {msg}"),
            ScenarioError::InvalidResources(msg) => {
                write!(f, "invalid resource assignment: {msg}")
            }
            ScenarioError::Partition(e) => write!(f, "impossible partition: {e}"),
            ScenarioError::Data(e) => write!(f, "invalid dataset: {e}"),
            ScenarioError::UnknownPreset(name) => write!(f, "unknown preset \"{name}\""),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<PartitionError> for ScenarioError {
    fn from(e: PartitionError) -> Self {
        ScenarioError::Partition(e)
    }
}

impl From<DataError> for ScenarioError {
    fn from(e: DataError) -> Self {
        ScenarioError::Data(e)
    }
}
