//! Canonical JSON serialization for [`Scenario`].
//!
//! The offline vendored `serde` is a derive-only shim, so the wire format
//! is owned here: a hand-rolled writer emitting one canonical pretty
//! form (2-space indent, struct field order, Rust's shortest round-trip
//! float formatting) and a reader over the workspace JSON parser
//! ([`fedzkt_fl::json`]). Canonical output is what makes the checked-in
//! preset files *golden*: `parse → to_json` reproduces them byte for byte.

use crate::{
    Algo, DataSpec, LinkBandwidth, ResourceAssignment, ResourceSpec, Scenario, ScenarioError,
};
use fedzkt_core::{DistillLoss, FedMdConfig, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::json::{self, Value};
use fedzkt_fl::{
    ChurnSpec, CodecSpec, ComputeFormat, DeviceResources, FedAvgConfig, FedEtConfig,
    FedGktConfig, Materialization, SimConfig,
};
use fedzkt_models::{GeneratorSpec, ModelSpec};

/// An owned JSON tree, built by the writer and pretty-printed canonically.
enum J {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<J>),
    Obj(Vec<(&'static str, J)>),
}

fn us(v: usize) -> J {
    J::Num(v.to_string())
}

fn u64j(v: u64) -> J {
    J::Num(v.to_string())
}

fn f32j(v: f32) -> J {
    if v.is_finite() {
        J::Num(format!("{v}"))
    } else {
        J::Null // no JSON literal; readers of fields that allow it map it back
    }
}

fn f64j(v: f64) -> J {
    if v.is_finite() {
        J::Num(format!("{v}"))
    } else {
        J::Null
    }
}

fn sj(v: &str) -> J {
    J::Str(v.to_string())
}

fn pretty(j: &J, indent: usize, out: &mut String) {
    match j {
        J::Null => out.push_str("null"),
        J::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        J::Num(raw) => out.push_str(raw),
        J::Str(s) => {
            out.push('"');
            out.push_str(&json::escape(s));
            out.push('"');
        }
        J::Arr(items) if items.is_empty() => out.push_str("[]"),
        J::Arr(items) => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                for _ in 0..indent + 1 {
                    out.push_str("  ");
                }
                pretty(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push(']');
        }
        J::Obj(fields) if fields.is_empty() => out.push_str("{}"),
        J::Obj(fields) => {
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                for _ in 0..indent + 1 {
                    out.push_str("  ");
                }
                out.push('"');
                out.push_str(key);
                out.push_str("\": ");
                pretty(value, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            for _ in 0..indent {
                out.push_str("  ");
            }
            out.push('}');
        }
    }
}

fn family_slug(f: DataFamily) -> &'static str {
    match f {
        DataFamily::MnistLike => "mnist",
        DataFamily::KmnistLike => "kmnist",
        DataFamily::FashionLike => "fashion",
        DataFamily::Cifar10Like => "cifar10",
        DataFamily::Cifar100Like => "cifar100",
        DataFamily::SvhnLike => "svhn",
    }
}

fn family_from_slug(s: &str) -> Result<DataFamily, String> {
    Ok(match s {
        "mnist" => DataFamily::MnistLike,
        "kmnist" => DataFamily::KmnistLike,
        "fashion" => DataFamily::FashionLike,
        "cifar10" => DataFamily::Cifar10Like,
        "cifar100" => DataFamily::Cifar100Like,
        "svhn" => DataFamily::SvhnLike,
        other => return Err(format!("unknown data family \"{other}\"")),
    })
}

fn loss_slug(l: DistillLoss) -> &'static str {
    match l {
        DistillLoss::Kl => "kl",
        DistillLoss::LogitL1 => "logit_l1",
        DistillLoss::Sl => "sl",
    }
}

fn loss_from_slug(s: &str) -> Result<DistillLoss, String> {
    Ok(match s {
        "kl" => DistillLoss::Kl,
        "logit_l1" => DistillLoss::LogitL1,
        "sl" => DistillLoss::Sl,
        other => return Err(format!("unknown distill loss \"{other}\"")),
    })
}

fn model_j(m: &ModelSpec) -> J {
    J::Obj(match *m {
        ModelSpec::SmallCnn { base_channels } => {
            vec![("kind", sj("small_cnn")), ("base_channels", us(base_channels))]
        }
        ModelSpec::Mlp { hidden } => vec![("kind", sj("mlp")), ("hidden", us(hidden))],
        ModelSpec::LeNet { scale, deep } => {
            vec![("kind", sj("lenet")), ("scale", f32j(scale)), ("deep", J::Bool(deep))]
        }
        ModelSpec::MobileNetV2 { width } => {
            vec![("kind", sj("mobilenet_v2")), ("width", f32j(width))]
        }
        ModelSpec::ShuffleNetV2 { size } => {
            vec![("kind", sj("shufflenet_v2")), ("size", f32j(size))]
        }
    })
}

fn partition_j(p: &Partition) -> J {
    J::Obj(match *p {
        Partition::Iid => vec![("kind", sj("iid"))],
        Partition::QuantitySkew { classes_per_device } => {
            vec![("kind", sj("quantity_skew")), ("classes_per_device", us(classes_per_device))]
        }
        Partition::Dirichlet { beta } => {
            vec![("kind", sj("dirichlet")), ("beta", f32j(beta))]
        }
    })
}

fn generator_j(g: &GeneratorSpec) -> J {
    J::Obj(vec![("z_dim", us(g.z_dim)), ("ngf", us(g.ngf))])
}

fn fedzkt_cfg_j(c: &FedZktConfig) -> J {
    J::Obj(vec![
        ("local_epochs", us(c.local_epochs)),
        ("distill_iters", us(c.distill_iters)),
        ("transfer_iters", us(c.transfer_iters)),
        ("device_batch", us(c.device_batch)),
        ("distill_batch", us(c.distill_batch)),
        ("device_lr", f32j(c.device_lr)),
        ("device_momentum", f32j(c.device_momentum)),
        ("server_lr", f32j(c.server_lr)),
        ("transfer_lr", f32j(c.transfer_lr)),
        ("generator_lr", f32j(c.generator_lr)),
        ("loss", sj(loss_slug(c.loss))),
        // `null` spells an infinitely fast (free) server — +∞ only. The
        // other non-finite values are invalid (validate() rejects them);
        // they serialize as -1 so they read back as a *rejected* config
        // rather than borrowing the free-server spelling.
        (
            "server_samples_per_sec",
            if c.server_samples_per_sec == f32::INFINITY {
                J::Null
            } else if c.server_samples_per_sec.is_finite() {
                f32j(c.server_samples_per_sec)
            } else {
                J::Num("-1".into())
            },
        ),
        ("prox_mu", f32j(c.prox_mu)),
        ("generator", generator_j(&c.generator)),
        ("global_model", model_j(&c.global_model)),
        ("probe_grad_norms", J::Bool(c.probe_grad_norms)),
        ("fresh_generator_for_transfer", J::Bool(c.fresh_generator_for_transfer)),
    ])
}

fn fedavg_cfg_j(c: &FedAvgConfig) -> J {
    J::Obj(vec![
        ("local_epochs", us(c.local_epochs)),
        ("batch_size", us(c.batch_size)),
        ("lr", f32j(c.lr)),
        ("momentum", f32j(c.momentum)),
        ("prox_mu", f32j(c.prox_mu)),
    ])
}

fn fedmd_cfg_j(c: &FedMdConfig) -> J {
    J::Obj(vec![
        ("public_warmup_epochs", us(c.public_warmup_epochs)),
        ("private_warmup_epochs", us(c.private_warmup_epochs)),
        ("alignment_size", us(c.alignment_size)),
        ("digest_epochs", us(c.digest_epochs)),
        ("revisit_epochs", us(c.revisit_epochs)),
        ("batch_size", us(c.batch_size)),
        ("lr", f32j(c.lr)),
    ])
}

fn fedet_cfg_j(c: &FedEtConfig) -> J {
    J::Obj(vec![
        ("local_epochs", us(c.local_epochs)),
        ("batch_size", us(c.batch_size)),
        ("lr", f32j(c.lr)),
        ("transfer_size", us(c.transfer_size)),
        ("distill_epochs", us(c.distill_epochs)),
        ("transfer_epochs", us(c.transfer_epochs)),
        ("server_lr", f32j(c.server_lr)),
        ("diversity_lambda", f32j(c.diversity_lambda)),
        ("server_model", model_j(&c.server_model)),
    ])
}

fn fedgkt_cfg_j(c: &FedGktConfig) -> J {
    J::Obj(vec![
        ("local_epochs", us(c.local_epochs)),
        ("kd_epochs", us(c.kd_epochs)),
        ("server_epochs", us(c.server_epochs)),
        ("batch_size", us(c.batch_size)),
        ("lr", f32j(c.lr)),
        ("server_lr", f32j(c.server_lr)),
        ("feature_dim", us(c.feature_dim)),
        ("server_hidden", us(c.server_hidden)),
    ])
}

fn device_resources_j(r: &DeviceResources) -> J {
    J::Obj(vec![
        ("compute_samples_per_sec", f32j(r.compute_samples_per_sec)),
        ("uplink_bytes_per_sec", f32j(r.uplink_bytes_per_sec)),
        ("downlink_bytes_per_sec", f32j(r.downlink_bytes_per_sec)),
    ])
}

/// An unlimited link (`+∞`) serializes as `null`, mirroring the
/// free-server spelling of `server_samples_per_sec`; other non-finite
/// values write `-1` so they come back *rejected* rather than unlimited.
fn link_j(v: f32) -> J {
    if v == f32::INFINITY {
        J::Null
    } else if v.is_finite() {
        f32j(v)
    } else {
        J::Num("-1".into())
    }
}

fn bandwidth_j(b: &LinkBandwidth) -> J {
    J::Obj(vec![
        ("up_bytes_per_sec", link_j(b.up_bytes_per_sec)),
        ("down_bytes_per_sec", link_j(b.down_bytes_per_sec)),
    ])
}

fn resources_j(r: &ResourceSpec) -> J {
    let assignment = J::Obj(match &r.assignment {
        ResourceAssignment::Smartphone => vec![("kind", sj("smartphone"))],
        ResourceAssignment::Microcontroller => vec![("kind", sj("microcontroller"))],
        ResourceAssignment::Heterogeneous { seed } => {
            vec![("kind", sj("heterogeneous")), ("seed", u64j(*seed))]
        }
        ResourceAssignment::Explicit(list) => vec![
            ("kind", sj("explicit")),
            ("devices", J::Arr(list.iter().map(device_resources_j).collect())),
        ],
    });
    J::Obj(vec![
        ("assignment", assignment),
        ("bandwidth", r.bandwidth.as_ref().map_or(J::Null, bandwidth_j)),
        ("server_seconds", f64j(r.server_seconds)),
    ])
}

fn churn_j(c: &ChurnSpec) -> J {
    J::Obj(vec![
        ("seed", u64j(c.seed)),
        ("arrival_window", us(c.arrival_window)),
        ("mean_lifetime", f32j(c.mean_lifetime)),
        ("duty_period", us(c.duty_period)),
        ("duty_on", us(c.duty_on)),
        ("dropout", f32j(c.dropout)),
        ("bandwidth_floor", f32j(c.bandwidth_floor)),
    ])
}

fn codec_j(c: &CodecSpec) -> J {
    J::Obj(match *c {
        CodecSpec::Raw => vec![("kind", sj("raw"))],
        CodecSpec::QuantQ8 => vec![("kind", sj("quant_q8"))],
        CodecSpec::QuantQ4 => vec![("kind", sj("quant_q4"))],
        CodecSpec::TopK { density } => {
            vec![("kind", sj("top_k")), ("density", f32j(density))]
        }
    })
}

fn algo_j(a: &Algo) -> J {
    J::Obj(match a {
        Algo::FedZkt(cfg) => vec![("kind", sj("fedzkt")), ("config", fedzkt_cfg_j(cfg))],
        Algo::FedAvg(cfg) => vec![("kind", sj("fedavg")), ("config", fedavg_cfg_j(cfg))],
        Algo::FedProx(cfg) => vec![("kind", sj("fedprox")), ("config", fedavg_cfg_j(cfg))],
        Algo::FedMd { public, cfg } => vec![
            ("kind", sj("fedmd")),
            ("public", sj(family_slug(*public))),
            ("config", fedmd_cfg_j(cfg)),
        ],
        Algo::FedEt { public, cfg } => vec![
            ("kind", sj("fedet")),
            ("public", sj(family_slug(*public))),
            ("config", fedet_cfg_j(cfg)),
        ],
        Algo::FedGkt(cfg) => vec![("kind", sj("fedgkt")), ("config", fedgkt_cfg_j(cfg))],
    })
}

fn sim_j(s: &SimConfig) -> J {
    J::Obj(vec![
        ("rounds", us(s.rounds)),
        ("participation", f32j(s.participation)),
        ("eval_batch", us(s.eval_batch)),
        ("eval_every", us(s.eval_every)),
        ("seed", u64j(s.seed)),
        ("threads", us(s.threads)),
        ("codec", codec_j(&s.codec)),
        ("materialization", sj(s.materialization.as_str())),
        ("compute", sj(s.compute.as_str())),
    ])
}

// ---- reader helpers ------------------------------------------------------

fn req<'a, 'b>(v: &'a Value<'b>, key: &str) -> Result<&'a Value<'b>, String> {
    v.get(key).ok_or_else(|| format!("missing field \"{key}\""))
}

fn usize_f(v: &Value, key: &str) -> Result<usize, String> {
    req(v, key)?
        .as_number()
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| format!("field \"{key}\" is not a non-negative integer"))
}

fn u64_f(v: &Value, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_number()
        .and_then(|raw| raw.parse().ok())
        .ok_or_else(|| format!("field \"{key}\" is not a 64-bit unsigned integer"))
}

/// `null` (the writer's spelling of a non-finite value — like
/// `RunLog::to_json`) reads back as NaN; [`Scenario::validate`] rejects it
/// everywhere NaN is not meaningful.
fn f32_f(v: &Value, key: &str) -> Result<f32, String> {
    match req(v, key)? {
        Value::Null => Ok(f32::NAN),
        other => other
            .as_number()
            .and_then(|raw| raw.parse().ok())
            .ok_or_else(|| format!("field \"{key}\" is not a number")),
    }
}

/// Same `null` → NaN convention as [`f32_f`], for the schema's f64 fields.
fn f64_f(v: &Value, key: &str) -> Result<f64, String> {
    match req(v, key)? {
        Value::Null => Ok(f64::NAN),
        other => other
            .as_number()
            .and_then(|raw| raw.parse().ok())
            .ok_or_else(|| format!("field \"{key}\" is not a number")),
    }
}

fn bool_f(v: &Value, key: &str) -> Result<bool, String> {
    req(v, key)?
        .as_bool()
        .ok_or_else(|| format!("field \"{key}\" is not a boolean"))
}

fn str_f<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    req(v, key)?
        .as_str()
        .ok_or_else(|| format!("field \"{key}\" is not a string"))
}

fn model_from(v: &Value) -> Result<ModelSpec, String> {
    Ok(match str_f(v, "kind")? {
        "small_cnn" => ModelSpec::SmallCnn { base_channels: usize_f(v, "base_channels")? },
        "mlp" => ModelSpec::Mlp { hidden: usize_f(v, "hidden")? },
        "lenet" => ModelSpec::LeNet { scale: f32_f(v, "scale")?, deep: bool_f(v, "deep")? },
        "mobilenet_v2" => ModelSpec::MobileNetV2 { width: f32_f(v, "width")? },
        "shufflenet_v2" => ModelSpec::ShuffleNetV2 { size: f32_f(v, "size")? },
        other => return Err(format!("unknown model kind \"{other}\"")),
    })
}

fn partition_from(v: &Value) -> Result<Partition, String> {
    Ok(match str_f(v, "kind")? {
        "iid" => Partition::Iid,
        "quantity_skew" => Partition::QuantitySkew {
            classes_per_device: usize_f(v, "classes_per_device")?,
        },
        "dirichlet" => Partition::Dirichlet { beta: f32_f(v, "beta")? },
        other => return Err(format!("unknown partition kind \"{other}\"")),
    })
}

fn fedzkt_cfg_from(v: &Value) -> Result<FedZktConfig, String> {
    let generator = req(v, "generator")?;
    let server_sps = match req(v, "server_samples_per_sec")? {
        Value::Null => f32::INFINITY, // the "free server" spelling
        _ => f32_f(v, "server_samples_per_sec")?,
    };
    Ok(FedZktConfig {
        local_epochs: usize_f(v, "local_epochs")?,
        distill_iters: usize_f(v, "distill_iters")?,
        transfer_iters: usize_f(v, "transfer_iters")?,
        device_batch: usize_f(v, "device_batch")?,
        distill_batch: usize_f(v, "distill_batch")?,
        device_lr: f32_f(v, "device_lr")?,
        device_momentum: f32_f(v, "device_momentum")?,
        server_lr: f32_f(v, "server_lr")?,
        transfer_lr: f32_f(v, "transfer_lr")?,
        generator_lr: f32_f(v, "generator_lr")?,
        loss: loss_from_slug(str_f(v, "loss")?)?,
        server_samples_per_sec: server_sps,
        prox_mu: f32_f(v, "prox_mu")?,
        generator: GeneratorSpec {
            z_dim: usize_f(generator, "z_dim")?,
            ngf: usize_f(generator, "ngf")?,
        },
        global_model: model_from(req(v, "global_model")?)?,
        probe_grad_norms: bool_f(v, "probe_grad_norms")?,
        fresh_generator_for_transfer: bool_f(v, "fresh_generator_for_transfer")?,
    })
}

fn fedavg_cfg_from(v: &Value) -> Result<FedAvgConfig, String> {
    Ok(FedAvgConfig {
        local_epochs: usize_f(v, "local_epochs")?,
        batch_size: usize_f(v, "batch_size")?,
        lr: f32_f(v, "lr")?,
        momentum: f32_f(v, "momentum")?,
        prox_mu: f32_f(v, "prox_mu")?,
    })
}

fn fedmd_cfg_from(v: &Value) -> Result<FedMdConfig, String> {
    Ok(FedMdConfig {
        public_warmup_epochs: usize_f(v, "public_warmup_epochs")?,
        private_warmup_epochs: usize_f(v, "private_warmup_epochs")?,
        alignment_size: usize_f(v, "alignment_size")?,
        digest_epochs: usize_f(v, "digest_epochs")?,
        revisit_epochs: usize_f(v, "revisit_epochs")?,
        batch_size: usize_f(v, "batch_size")?,
        lr: f32_f(v, "lr")?,
    })
}

fn fedet_cfg_from(v: &Value) -> Result<FedEtConfig, String> {
    Ok(FedEtConfig {
        local_epochs: usize_f(v, "local_epochs")?,
        batch_size: usize_f(v, "batch_size")?,
        lr: f32_f(v, "lr")?,
        transfer_size: usize_f(v, "transfer_size")?,
        distill_epochs: usize_f(v, "distill_epochs")?,
        transfer_epochs: usize_f(v, "transfer_epochs")?,
        server_lr: f32_f(v, "server_lr")?,
        diversity_lambda: f32_f(v, "diversity_lambda")?,
        server_model: model_from(req(v, "server_model")?)?,
    })
}

fn fedgkt_cfg_from(v: &Value) -> Result<FedGktConfig, String> {
    Ok(FedGktConfig {
        local_epochs: usize_f(v, "local_epochs")?,
        kd_epochs: usize_f(v, "kd_epochs")?,
        server_epochs: usize_f(v, "server_epochs")?,
        batch_size: usize_f(v, "batch_size")?,
        lr: f32_f(v, "lr")?,
        server_lr: f32_f(v, "server_lr")?,
        feature_dim: usize_f(v, "feature_dim")?,
        server_hidden: usize_f(v, "server_hidden")?,
    })
}

fn device_resources_from(v: &Value) -> Result<DeviceResources, String> {
    Ok(DeviceResources {
        compute_samples_per_sec: f32_f(v, "compute_samples_per_sec")?,
        uplink_bytes_per_sec: f32_f(v, "uplink_bytes_per_sec")?,
        downlink_bytes_per_sec: f32_f(v, "downlink_bytes_per_sec")?,
    })
}

/// `null` reads back as the unlimited-link spelling (`+∞`), inverting
/// [`link_j`].
fn link_f(v: &Value, key: &str) -> Result<f32, String> {
    match req(v, key)? {
        Value::Null => Ok(f32::INFINITY),
        _ => f32_f(v, key),
    }
}

fn bandwidth_from(v: &Value) -> Result<LinkBandwidth, String> {
    Ok(LinkBandwidth {
        up_bytes_per_sec: link_f(v, "up_bytes_per_sec")?,
        down_bytes_per_sec: link_f(v, "down_bytes_per_sec")?,
    })
}

fn resources_from(v: &Value) -> Result<ResourceSpec, String> {
    let assignment = req(v, "assignment")?;
    let assignment = match str_f(assignment, "kind")? {
        "smartphone" => ResourceAssignment::Smartphone,
        "microcontroller" => ResourceAssignment::Microcontroller,
        "heterogeneous" => ResourceAssignment::Heterogeneous { seed: u64_f(assignment, "seed")? },
        "explicit" => ResourceAssignment::Explicit(
            req(assignment, "devices")?
                .as_array()
                .ok_or_else(|| "\"devices\" is not an array".to_string())?
                .iter()
                .map(device_resources_from)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        other => return Err(format!("unknown resource assignment \"{other}\"")),
    };
    // Absent (a pre-codec-era file) reads like `null`: no override.
    let bandwidth = match v.get("bandwidth") {
        None | Some(Value::Null) => None,
        Some(other) => Some(bandwidth_from(other)?),
    };
    Ok(ResourceSpec { assignment, bandwidth, server_seconds: f64_f(v, "server_seconds")? })
}

fn churn_from(v: &Value) -> Result<ChurnSpec, String> {
    Ok(ChurnSpec {
        seed: u64_f(v, "seed")?,
        arrival_window: usize_f(v, "arrival_window")?,
        mean_lifetime: f32_f(v, "mean_lifetime")?,
        duty_period: usize_f(v, "duty_period")?,
        duty_on: usize_f(v, "duty_on")?,
        dropout: f32_f(v, "dropout")?,
        bandwidth_floor: f32_f(v, "bandwidth_floor")?,
    })
}

fn codec_from(v: &Value) -> Result<CodecSpec, String> {
    Ok(match str_f(v, "kind")? {
        "raw" => CodecSpec::Raw,
        "quant_q8" => CodecSpec::QuantQ8,
        "quant_q4" => CodecSpec::QuantQ4,
        "top_k" => CodecSpec::TopK { density: f32_f(v, "density")? },
        other => return Err(format!("unknown codec kind \"{other}\"")),
    })
}

fn algo_from(v: &Value) -> Result<Algo, String> {
    let config = req(v, "config")?;
    Ok(match str_f(v, "kind")? {
        "fedzkt" => Algo::FedZkt(fedzkt_cfg_from(config)?),
        "fedavg" => Algo::FedAvg(fedavg_cfg_from(config)?),
        "fedprox" => Algo::FedProx(fedavg_cfg_from(config)?),
        "fedmd" => Algo::FedMd {
            public: family_from_slug(str_f(v, "public")?)?,
            cfg: fedmd_cfg_from(config)?,
        },
        "fedet" => Algo::FedEt {
            public: family_from_slug(str_f(v, "public")?)?,
            cfg: fedet_cfg_from(config)?,
        },
        "fedgkt" => Algo::FedGkt(fedgkt_cfg_from(config)?),
        other => return Err(format!("unknown algorithm kind \"{other}\"")),
    })
}

fn scenario_from(v: &Value) -> Result<Scenario, String> {
    let data = req(v, "data")?;
    let sim = req(v, "sim")?;
    let zoo = req(v, "zoo")?
        .as_array()
        .ok_or_else(|| "\"zoo\" is not an array".to_string())?
        .iter()
        .map(|entry| {
            Ok::<_, String>((model_from(req(entry, "model")?)?, usize_f(entry, "count")?))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let resources = match req(v, "resources")? {
        Value::Null => None,
        other => Some(resources_from(other)?),
    };
    // Absent (a pre-churn-era file, or any static-fleet file — the
    // writer omits the field for `None`) means no fleet dynamics.
    let churn = match v.get("churn") {
        None | Some(Value::Null) => None,
        Some(other) => Some(churn_from(other)?),
    };
    Ok(Scenario {
        name: str_f(v, "name")?.to_string(),
        data: DataSpec {
            family: family_from_slug(str_f(data, "family")?)?,
            img: usize_f(data, "img")?,
            train_n: usize_f(data, "train_n")?,
            test_n: usize_f(data, "test_n")?,
            classes: usize_f(data, "classes")?,
            noise_std: f32_f(data, "noise_std")?,
        },
        partition: partition_from(req(v, "partition")?)?,
        zoo,
        // Absent (a pre-registry-era file) means the zoo expansion *is*
        // the population — no override.
        registered_devices: match v.get("registered_devices") {
            None => 0,
            Some(_) => usize_f(v, "registered_devices")?,
        },
        resources,
        churn,
        algorithm: algo_from(req(v, "algorithm")?)?,
        sim: SimConfig {
            rounds: usize_f(sim, "rounds")?,
            participation: f32_f(sim, "participation")?,
            eval_batch: usize_f(sim, "eval_batch")?,
            eval_every: usize_f(sim, "eval_every")?,
            seed: u64_f(sim, "seed")?,
            threads: usize_f(sim, "threads")?,
            // Absent (a pre-codec-era file) means raw — the wire format
            // those files were written against.
            codec: match sim.get("codec") {
                None => CodecSpec::Raw,
                Some(v) => codec_from(v)?,
            },
            // Absent (a pre-registry-era file) means eager — the only
            // materialization those files could run.
            materialization: match sim.get("materialization") {
                None => Materialization::Eager,
                Some(_) => Materialization::parse(str_f(sim, "materialization")?)?,
            },
            // Absent (a pre-compute-format-era file) means f32 — the only
            // compute format those files could run.
            compute: match sim.get("compute") {
                None => ComputeFormat::F32,
                Some(_) => {
                    let s = str_f(sim, "compute")?;
                    ComputeFormat::parse(s)
                        .ok_or_else(|| format!("unknown compute format \"{s}\""))?
                }
            },
        },
    })
}

impl Scenario {
    /// Render the scenario in the canonical pretty JSON form (2-space
    /// indent, struct field order, shortest round-trip float formatting,
    /// trailing newline). [`Scenario::from_json`] recovers the value
    /// exactly, and re-serializing a parsed canonical document reproduces
    /// it byte for byte — the property the checked-in `scenarios/*.json`
    /// golden files are tested under.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("name", sj(&self.name)),
            (
                "data",
                J::Obj(vec![
                    ("family", sj(family_slug(self.data.family))),
                    ("img", us(self.data.img)),
                    ("train_n", us(self.data.train_n)),
                    ("test_n", us(self.data.test_n)),
                    ("classes", us(self.data.classes)),
                    ("noise_std", f32j(self.data.noise_std)),
                ]),
            ),
            ("partition", partition_j(&self.partition)),
            (
                "zoo",
                J::Arr(
                    self.zoo
                        .iter()
                        .map(|(model, count)| {
                            J::Obj(vec![("model", model_j(model)), ("count", us(*count))])
                        })
                        .collect(),
                ),
            ),
            ("registered_devices", us(self.registered_devices)),
            ("resources", self.resources.as_ref().map_or(J::Null, resources_j)),
        ];
        // Omitted (not `null`) for a static fleet: every pre-churn file
        // stays byte-identical under parse → to_json.
        if let Some(churn) = &self.churn {
            fields.push(("churn", churn_j(churn)));
        }
        fields.push(("algorithm", algo_j(&self.algorithm)));
        fields.push(("sim", sim_j(&self.sim)));
        let tree = J::Obj(fields);
        let mut out = String::new();
        pretty(&tree, 0, &mut out);
        out.push('\n');
        out
    }

    /// Parse a scenario from its JSON form.
    ///
    /// # Errors
    /// Returns [`ScenarioError::Parse`] when the input is not a scenario in
    /// the supported schema. The result is *not* validated — call
    /// [`Scenario::validate`] (or just run it) for semantic checks.
    pub fn from_json(input: &str) -> Result<Scenario, ScenarioError> {
        let value = json::parse(input).map_err(ScenarioError::Parse)?;
        scenario_from(&value).map_err(ScenarioError::Parse)
    }

    /// Read and parse a scenario file.
    ///
    /// # Errors
    /// [`ScenarioError::Io`] when the file cannot be read,
    /// [`ScenarioError::Parse`] when its contents are not a scenario.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenarioError> {
        let path = path.as_ref();
        let contents = std::fs::read_to_string(path)
            .map_err(|e| ScenarioError::Io(format!("{}: {e}", path.display())))?;
        Scenario::from_json(&contents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn every_preset_roundtrips_exactly() {
        for preset in presets() {
            let scenario = preset.scenario();
            let json = scenario.to_json();
            let back = Scenario::from_json(&json)
                .unwrap_or_else(|e| panic!("{}: {e}\n{json}", preset.name));
            assert_eq!(scenario, back, "{}", preset.name);
            assert_eq!(json, back.to_json(), "{}: reserialization drifted", preset.name);
        }
    }

    #[test]
    fn non_canonical_whitespace_parses_to_the_same_value() {
        let scenario = presets()[0].scenario();
        let compact: String = scenario
            .to_json()
            .chars()
            .filter(|c| !c.is_ascii_whitespace() || *c == ' ')
            .collect();
        let back = Scenario::from_json(&compact).expect("compact form parses");
        assert_eq!(scenario, back);
    }

    #[test]
    fn infinite_server_throughput_roundtrips_via_null() {
        let mut scenario = presets()[0].scenario();
        scenario
            .fedzkt_cfg_mut()
            .expect("preset 0 runs fedzkt")
            .server_samples_per_sec = f32::INFINITY;
        let json = scenario.to_json();
        assert!(json.contains("\"server_samples_per_sec\": null"), "{json}");
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(scenario, back);
    }

    #[test]
    fn pre_codec_era_files_parse_with_defaults() {
        // A scenario file written before the wire-format layer has no
        // `sim.codec` and no `resources.bandwidth`; it must keep loading,
        // defaulting to the raw codec and no link override.
        let mut sc = crate::preset("straggler").expect("preset with resources");
        sc.sim.codec = fedzkt_fl::CodecSpec::Raw;
        sc.resources.as_mut().unwrap().bandwidth = None;
        let legacy = sc
            .to_json()
            .replace(",\n    \"codec\": {\n      \"kind\": \"raw\"\n    }", "")
            .replace("    \"bandwidth\": null,\n", "");
        assert!(!legacy.contains("codec") && !legacy.contains("bandwidth"), "{legacy}");
        let back = Scenario::from_json(&legacy).expect("legacy schema parses");
        assert_eq!(back, sc);
    }

    #[test]
    fn pre_registry_era_files_parse_with_defaults() {
        // A scenario file written before the lazy-fleet layer has no
        // `sim.materialization` and no `registered_devices`; it must keep
        // loading, defaulting to an eager fleet sized by the zoo.
        let sc = presets()[0].scenario();
        assert_eq!(sc.registered_devices, 0, "golden presets predate the override");
        let legacy = sc
            .to_json()
            .replace(",\n    \"materialization\": \"eager\"", "")
            .replace("  \"registered_devices\": 0,\n", "");
        assert!(
            !legacy.contains("materialization") && !legacy.contains("registered_devices"),
            "{legacy}"
        );
        let back = Scenario::from_json(&legacy).expect("legacy schema parses");
        assert_eq!(back, sc);
    }

    #[test]
    fn registered_devices_and_materialization_roundtrip() {
        let mut sc = presets()[0].scenario();
        sc.registered_devices = 1_000_000;
        sc.sim.materialization = Materialization::Lazy;
        let json = sc.to_json();
        assert!(json.contains("\"registered_devices\": 1000000"), "{json}");
        assert!(json.contains("\"materialization\": \"lazy\""), "{json}");
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(sc, back);
        assert_eq!(back.devices(), 1_000_000);
    }

    #[test]
    fn pre_compute_format_era_files_parse_with_defaults() {
        // A scenario file written before the compute-format layer has no
        // `sim.compute`; it must keep loading, defaulting to f32 — the
        // only compute format those files could run.
        let sc = presets()[0].scenario();
        assert_eq!(sc.sim.compute, ComputeFormat::F32);
        let legacy = sc.to_json().replace(",\n    \"compute\": \"f32\"", "");
        assert!(!legacy.contains("compute"), "{legacy}");
        let back = Scenario::from_json(&legacy).expect("legacy schema parses");
        assert_eq!(back, sc);
    }

    #[test]
    fn compute_format_roundtrips_and_rejects_unknown_names() {
        let mut sc = presets()[0].scenario();
        sc.sim.compute = ComputeFormat::Int8;
        let json = sc.to_json();
        assert!(json.contains("\"compute\": \"int8\""), "{json}");
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(sc, back);
        let broken = json.replace("\"compute\": \"int8\"", "\"compute\": \"fp8\"");
        assert!(matches!(Scenario::from_json(&broken), Err(ScenarioError::Parse(_))));
    }

    #[test]
    fn churn_is_omitted_for_static_fleets_and_roundtrips_when_set() {
        // A static fleet writes the pre-churn schema byte for byte…
        let sc = presets()[0].scenario();
        assert!(sc.churn.is_none());
        assert!(!sc.to_json().contains("churn"), "{}", sc.to_json());
        // …and an explicit `null` reads back as the same static fleet.
        let nulled = sc
            .to_json()
            .replace("  \"algorithm\": {", "  \"churn\": null,\n  \"algorithm\": {");
        assert_eq!(Scenario::from_json(&nulled).unwrap(), sc);
        // A dynamic fleet round-trips exactly through its churn block.
        let dynamic = crate::preset("churn-flash-crowd").expect("churn preset");
        let json = dynamic.to_json();
        assert!(json.contains("\"arrival_window\": 3"), "{json}");
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(dynamic, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn invalid_churn_is_rejected_by_validate_not_parse() {
        let mut sc = crate::preset("churn-lossy").expect("churn preset");
        sc.churn.as_mut().unwrap().dropout = 1.5;
        let back = Scenario::from_json(&sc.to_json()).expect("parse is schema-only");
        let err = back.validate().expect_err("dropout 1.5 is invalid");
        assert!(err.to_string().contains("churn"), "{err}");
    }

    #[test]
    fn parse_rejects_malformed_scenarios() {
        assert!(Scenario::from_json("").is_err());
        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("{\"name\": 3}").is_err());
        let valid = presets()[0].scenario().to_json();
        let broken = valid.replace("\"kind\": \"iid\"", "\"kind\": \"zipf\"");
        assert!(matches!(Scenario::from_json(&broken), Err(ScenarioError::Parse(_))));
    }
}
