//! # fedzkt-scenario
//!
//! The declarative experiment layer of the FedZKT reproduction: one
//! serializable [`Scenario`] value describes everything the paper's
//! evaluation grid (§IV) varies — dataset family, partition skew
//! (IID / c-quantity / Dirichlet β), heterogeneous device zoo, simulated
//! hardware, straggler portion, device count, algorithm — and one erased
//! runner executes it:
//!
//! ```
//! use fedzkt_scenario::{preset, Scenario};
//!
//! // By name from the registry, or from JSON on disk:
//! let scenario = preset("tiny").unwrap();
//! let json = scenario.to_json();
//! assert_eq!(Scenario::from_json(&json).unwrap(), scenario);
//!
//! // One call from description to RunLog, regardless of the algorithm:
//! let log = scenario.run().unwrap();
//! assert_eq!(log.rounds.len(), scenario.sim.rounds);
//! ```
//!
//! ## Anatomy of a scenario
//!
//! * [`Scenario::data`] — a [`DataSpec`] naming the synthetic family and
//!   its geometry; datasets are derived from the run seed at run time, so
//!   a seed sweep re-derives everything.
//! * [`Scenario::partition`] — the §IV-A4 skew
//!   ([`Partition`](fedzkt_data::Partition)).
//! * [`Scenario::zoo`] — `(architecture, count)` pairs; the paper's core
//!   premise is that these need not agree across devices.
//! * [`Scenario::registered_devices`] — optional cross-device population
//!   override: `0` means the zoo expansion *is* the fleet; a positive
//!   value registers that many devices, re-cycling the zoo's
//!   architectures over them ([`Scenario::effective_zoo`]). Pair it with
//!   `"materialization": "lazy"` in `sim` so the fleet is registry slots,
//!   not resident models — the `mega-fleet` preset registers 10⁶ devices
//!   this way.
//! * [`Scenario::resources`] — optional simulated hardware
//!   ([`ResourceSpec`]); attaching it populates `sim_seconds` in the log,
//!   including transfer time for the codec-encoded payloads over each
//!   device's links (optionally pinned by a [`LinkBandwidth`] override,
//!   where `+∞` spells an unlimited link).
//! * [`Scenario::churn`] — optional fleet dynamics
//!   ([`ChurnSpec`](fedzkt_fl::ChurnSpec)): device arrival/departure,
//!   duty-cycle availability, mid-round dropout, time-varying link
//!   bandwidth. Every draw is a pure function of `(spec, device, round)`,
//!   so the timeline is identical across thread counts, shard sizes and
//!   checkpoint/resume, and a million-device fleet pays O(1) memory for
//!   it. `None` (the field is omitted from JSON) is the static fleet
//!   every pre-churn file describes.
//! * [`Scenario::algorithm`] — [`Algo`]: FedZKT, FedAvg, FedProx or FedMD
//!   with their hyperparameters.
//! * [`Scenario::sim`] — the protocol knobs every algorithm shares
//!   ([`SimConfig`](fedzkt_fl::SimConfig)), including the wire-format
//!   codec ([`CodecSpec`](fedzkt_fl::CodecSpec)) every payload passes
//!   through.
//!
//! Degenerate descriptions (empty zoo, more devices than samples, a
//! quantity skew asking for more classes than exist…) are rejected by
//! [`Scenario::validate`] with a typed [`ScenarioError`] before any data
//! is generated.
//!
//! ## Adding a new preset
//!
//! 1. Write a `fn my_preset() -> Scenario` in `registry.rs` — start from
//!    [`Scenario::standard`] (the paper's standard setup for a family /
//!    partition / [`Tier`]) and override fields. For a cross-device
//!    preset, set `registered_devices` to the population size (the zoo
//!    then describes the architecture mix, not the head count) and
//!    `sim.materialization` to `Lazy` — see `mega_fleet()` for the
//!    pattern; leave both at their defaults (`0` / `Eager`) for
//!    paper-scale fleets. For a dynamic fleet, attach a
//!    [`ChurnSpec`](fedzkt_fl::ChurnSpec): start from
//!    `ChurnSpec::default()` (quiescent) and set only the dynamics you
//!    want — an `arrival_window`/`mean_lifetime` for flash crowds
//!    (`churn_flash_crowd()`), a `dropout` probability and
//!    `bandwidth_floor` for lossy fleets (`churn_lossy()`). Give the
//!    churn model its own `seed` so a master-seed sweep can hold the
//!    fleet dynamics fixed. A quiescent spec is dropped at build time, so
//!    it is always safe to attach.
//! 2. Append a [`Preset`] entry to [`presets`] with a unique name and a
//!    one-line description.
//! 3. Regenerate its golden file:
//!    `cargo run -p fedzkt_scenario --bin scenarios -- describe my-preset --json > scenarios/my-preset.json`.
//!    The golden-file test (`tests/golden.rs`) and CI keep the file in
//!    sync with the registry from then on.
//!
//! ## The `scenarios` CLI
//!
//! `cargo run -p fedzkt_scenario --bin scenarios -- <subcommand>`:
//!
//! * `list` — the preset registry;
//! * `describe <name|file> [--json]` — summary or canonical JSON;
//! * `run <name|file>` — execute, writing `<name>.csv` + `<name>.json`
//!   artifacts (`--codec q8` / `--materialization lazy` override the wire
//!   format / fleet mode for one run; `--checkpoint-every N` snapshots
//!   `<out>/<name>.ckpt`, `--halt-at-round K` stops early with a
//!   checkpoint, and `--resume FILE` continues one — the resumed log is
//!   bit-identical to an uninterrupted run);
//! * `sweep <name|file> --seeds 1,2 --codecs raw,q8,q4,topk:0.1
//!   --materializations eager,lazy …` — expand grid axes into child
//!   scenarios and execute them fleet-parallel;
//! * `serve <name|file> [axes]` — the durable form of `sweep`: a job
//!   queue whose state is the artifact directory itself (`<name>.json`
//!   present = done, `<name>.ckpt` = half-run, else fresh), so a killed
//!   process loses at most `--checkpoint-every` rounds per in-flight
//!   cell and a restart picks up exactly where it stopped; panicking
//!   cells are isolated and reported, and `--stop-after N` bounds one
//!   invocation's work.

#![warn(missing_docs)]

mod error;
mod registry;
mod serial;
mod spec;

pub use error::ScenarioError;
pub use registry::{
    fedmd_public_family, preset, presets, resolve, standard_algorithm, standard_zoo, Preset, Scale,
    Tier,
};
pub use spec::{
    Algo, DataSpec, LinkBandwidth, Materialized, ResourceAssignment, ResourceSpec, Scenario,
};

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_data::{Partition, PartitionError};
    use fedzkt_fl::FedAvgConfig;
    use fedzkt_models::ModelSpec;

    fn base() -> Scenario {
        preset("tiny").expect("tiny preset exists")
    }

    #[test]
    fn tiny_preset_runs_end_to_end() {
        let sc = base();
        let log = sc.run().unwrap();
        assert_eq!(log.rounds.len(), sc.sim.rounds);
        assert!(log.final_accuracy() >= 0.0);
    }

    #[test]
    fn empty_zoo_is_a_typed_error() {
        let mut sc = base();
        sc.zoo.clear();
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidZoo(_))));
    }

    #[test]
    fn zero_count_zoo_entry_is_a_typed_error() {
        let mut sc = base();
        sc.zoo[0].1 = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidZoo(_))));
    }

    #[test]
    fn more_devices_than_samples_is_a_typed_error() {
        let mut sc = base();
        sc.data.train_n = 2;
        assert!(matches!(
            sc.validate(),
            Err(ScenarioError::Partition(PartitionError::NotEnoughSamples { samples: 2, .. }))
        ));
    }

    #[test]
    fn zero_samples_is_a_typed_error() {
        let mut sc = base();
        sc.data.train_n = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidData(_))));
        let mut sc = base();
        sc.data.test_n = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidData(_))));
    }

    #[test]
    fn indivisible_image_side_is_a_typed_error() {
        let mut sc = base();
        sc.data.img = 10;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidData(_))));
    }

    #[test]
    fn too_many_classes_per_device_is_a_typed_error() {
        let mut sc = base();
        sc.partition = Partition::QuantitySkew { classes_per_device: 11 };
        assert!(matches!(
            sc.validate(),
            Err(ScenarioError::Partition(PartitionError::InvalidParameter(_)))
        ));
        sc.partition = Partition::QuantitySkew { classes_per_device: 0 };
        assert!(sc.validate().is_err());
    }

    #[test]
    fn non_positive_beta_is_a_typed_error() {
        for beta in [0.0f32, -1.0, f32::NAN] {
            let mut sc = base();
            sc.partition = Partition::Dirichlet { beta };
            assert!(
                matches!(
                    sc.validate(),
                    Err(ScenarioError::Partition(PartitionError::InvalidParameter(_)))
                ),
                "beta {beta}"
            );
        }
    }

    #[test]
    fn degenerate_sim_config_is_a_typed_error() {
        let mut sc = base();
        sc.sim.rounds = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidSim(_))));
        let mut sc = base();
        sc.sim.participation = 0.0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidSim(_))));
        let mut sc = base();
        sc.sim.participation = 1.5;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidSim(_))));
    }

    #[test]
    fn explicit_resource_mismatch_is_a_typed_error() {
        let mut sc = base();
        sc.resources = Some(ResourceSpec {
            assignment: ResourceAssignment::Explicit(vec![
                fedzkt_fl::DeviceResources::smartphone(),
            ]),
            bandwidth: None,
            server_seconds: 0.0,
        });
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidResources(_))));
    }

    #[test]
    fn malformed_codec_is_a_typed_error() {
        use fedzkt_fl::CodecSpec;
        for density in [0.0f32, -0.5, 1.5, f32::NAN] {
            let mut sc = base();
            sc.sim.codec = CodecSpec::TopK { density };
            assert!(
                matches!(sc.validate(), Err(ScenarioError::InvalidSim(_))),
                "density {density}"
            );
        }
        let mut sc = base();
        sc.sim.codec = CodecSpec::TopK { density: 0.5 };
        sc.validate().unwrap();
    }

    #[test]
    fn malformed_bandwidth_is_a_typed_error() {
        let with_bw = |up: f32, down: f32| {
            let mut sc = base();
            sc.resources = Some(ResourceSpec {
                assignment: ResourceAssignment::Smartphone,
                bandwidth: Some(LinkBandwidth { up_bytes_per_sec: up, down_bytes_per_sec: down }),
                server_seconds: 0.0,
            });
            sc
        };
        for (up, down) in [(0.0f32, 1e5), (1e5, -1.0), (f32::NAN, 1e5), (1e5, f32::NEG_INFINITY)]
        {
            assert!(
                matches!(with_bw(up, down).validate(), Err(ScenarioError::InvalidResources(_))),
                "({up}, {down})"
            );
        }
        // +inf is the documented unlimited-link spelling, and it survives
        // a save/load cycle as such (serialized as null).
        let sc = with_bw(f32::INFINITY, 4e6);
        sc.validate().unwrap();
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert_eq!(back, sc);
        back.validate().unwrap();
    }

    /// Satellite regression for the raw-f32 accounting bug: the reported
    /// traffic must be the *codec wire size*, so int8 quantization shows
    /// up as ≈¼ the raw traffic on the same scenario — in the RunLog and
    /// therefore in every artifact derived from it.
    #[test]
    fn quant_q8_traffic_is_about_a_quarter_of_raw_on_tiny() {
        use fedzkt_fl::CodecSpec;
        let mut sc = base();
        sc.sim.rounds = 1;
        let raw = sc.run().unwrap();
        sc.sim.codec = CodecSpec::QuantQ8;
        let q8 = sc.run().unwrap();
        let ratio = raw.rounds[0].upload_bytes as f64 / q8.rounds[0].upload_bytes as f64;
        assert!(
            (3.2..=4.0).contains(&ratio),
            "expected ≈4× uplink shrink under q8, got {ratio:.2} ({} vs {} bytes)",
            raw.rounds[0].upload_bytes,
            q8.rounds[0].upload_bytes
        );
        let down_ratio = raw.rounds[0].download_bytes as f64 / q8.rounds[0].download_bytes as f64;
        assert!((3.2..=4.0).contains(&down_ratio), "downlink ratio {down_ratio:.2}");
    }

    #[test]
    fn heterogeneous_zoo_under_fedavg_is_a_typed_error() {
        let mut sc = base();
        sc.algorithm = Algo::FedAvg(FedAvgConfig::default());
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidZoo(_))));
        // Homogeneous zoo: accepted.
        sc.zoo = vec![(ModelSpec::Mlp { hidden: 8 }, 3)];
        sc.validate().unwrap();
        // …but a proximal term under the plain FedAvg variant is not.
        sc.algorithm = Algo::FedAvg(FedAvgConfig { prox_mu: 0.1, ..Default::default() });
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
        sc.algorithm = Algo::FedProx(FedAvgConfig { prox_mu: 0.0, ..Default::default() });
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
    }

    #[test]
    fn non_finite_hyperparameters_are_a_typed_error() {
        let mut sc = base();
        sc.fedzkt_cfg_mut().unwrap().device_lr = f32::NAN;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
        // The canonical serialization has no non-finite literal; the null
        // it emits reads back as NaN, which validation then rejects — so a
        // degenerate description cannot slip through a save/load cycle.
        let back = Scenario::from_json(&sc.to_json()).expect("null parses back");
        assert!(back.fedzkt_cfg().unwrap().device_lr.is_nan());
        assert!(matches!(back.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
        // +inf server throughput is the documented exception and is legal.
        let mut sc = base();
        sc.fedzkt_cfg_mut().unwrap().server_samples_per_sec = f32::INFINITY;
        sc.validate().unwrap();
        // …but only +inf: a NaN throughput must not come back from a
        // save/load cycle wearing the free-server spelling.
        sc.fedzkt_cfg_mut().unwrap().server_samples_per_sec = f32::NAN;
        assert!(sc.validate().is_err());
        let back = Scenario::from_json(&sc.to_json()).unwrap();
        assert!(back.validate().is_err(), "NaN throughput resurfaced as valid");
    }

    #[test]
    fn path_escaping_names_are_a_typed_error() {
        for name in ["../evil", "a/b", "..", ".hidden", "-flag", "", "a b"] {
            let mut sc = base();
            sc.name = name.to_string();
            assert!(
                matches!(sc.validate(), Err(ScenarioError::InvalidData(_))),
                "name {name:?} should be rejected"
            );
        }
        let mut sc = base();
        sc.name = "tiny_s1_p0.5".to_string();
        sc.validate().unwrap();
    }

    #[test]
    fn one_sample_shards_are_legal_not_an_error() {
        // train_n == devices is extreme but well-formed: every device gets
        // exactly one sample and the run proceeds.
        let mut sc = base();
        sc.data.train_n = sc.devices();
        sc.validate().unwrap();
        let m = sc.materialize().unwrap();
        assert!(m.shards.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn erased_runner_covers_all_four_algorithms() {
        // One Vec, four algorithms — the collection the erased runner
        // exists for. Kept tiny so the whole matrix stays test-suite fast.
        let mut scenarios = Vec::new();
        let mut zkt = base();
        zkt.sim.rounds = 1;
        scenarios.push(zkt);
        for name in ["fedavg-lcd", "fedprox-noniid", "fedmd-public"] {
            let mut sc = preset(name).unwrap();
            sc.data = base().data;
            sc.set_device_count(3);
            sc.sim.rounds = 1;
            if let Some(cfg) = sc.fedmd_cfg_mut() {
                cfg.alignment_size = 16;
                cfg.public_warmup_epochs = 1;
                cfg.private_warmup_epochs = 1;
                cfg.revisit_epochs = 1;
            }
            scenarios.push(sc);
        }
        let sims: Vec<_> = scenarios.iter().map(|sc| sc.build().unwrap()).collect();
        for (sc, mut sim) in scenarios.iter().zip(sims) {
            let log = sim.run();
            assert_eq!(log.rounds.len(), 1, "{}", sc.name);
        }
    }

    #[test]
    fn degenerate_model_specs_are_a_typed_error() {
        let mut sc = base();
        sc.zoo[0].0 = ModelSpec::LeNet { scale: f32::NAN, deep: false };
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidZoo(_))));
        let mut sc = base();
        sc.zoo[0].0 = ModelSpec::MobileNetV2 { width: -0.5 };
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidZoo(_))));
        let mut sc = base();
        sc.fedzkt_cfg_mut().unwrap().global_model = ModelSpec::ShuffleNetV2 { size: 0.0 };
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
        let mut sc = base();
        sc.fedzkt_cfg_mut().unwrap().generator.z_dim = 0;
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
    }

    #[test]
    fn fedmd_channel_mismatch_is_a_typed_error() {
        // MNIST private data (1 channel) cannot be paired with a CIFAR-100
        // public corpus (3 channels): devices score the public set with
        // models built for the private geometry.
        let mut sc = preset("fedmd-public").unwrap();
        match &mut sc.algorithm {
            Algo::FedMd { public, .. } => *public = fedzkt_data::DataFamily::Cifar100Like,
            other => panic!("fedmd-public runs {}", other.name()),
        }
        assert!(matches!(sc.validate(), Err(ScenarioError::InvalidAlgorithm(_))));
    }

    #[test]
    fn unknown_preset_is_a_typed_error() {
        assert!(matches!(
            resolve("no-such-preset"),
            Err(ScenarioError::UnknownPreset(_))
        ));
        assert!(matches!(
            resolve("definitely/not/a/file.json"),
            Err(ScenarioError::Io(_))
        ));
    }
}
