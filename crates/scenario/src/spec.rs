//! The declarative [`Scenario`] description and its runner.

use crate::ScenarioError;
use fedzkt_core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Dataset, Partition, PartitionError, SynthConfig};
use fedzkt_fl::{
    ChurnSpec, DeviceResources, ErasedSimulation, FedAvg, FedAvgConfig, FedEt, FedEtConfig,
    FedGkt, FedGktConfig, RoundMetrics, RunLog, SimConfig, Simulation,
};
use fedzkt_models::ModelSpec;
use serde::{Deserialize, Serialize};

/// The private (and, for FedMD, public) dataset description — a
/// [`SynthConfig`] without a seed: the data is derived from the scenario's
/// master seed so that sweeping the seed re-derives everything.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataSpec {
    /// Synthetic family standing in for one of the paper's corpora.
    pub family: DataFamily,
    /// Image side length (must be a positive multiple of 4: every zoo
    /// member downsamples twice).
    pub img: usize,
    /// Training samples.
    pub train_n: usize,
    /// Held-out test samples.
    pub test_n: usize,
    /// Class-count override (0 = family default).
    pub classes: usize,
    /// Pixel-noise override (negative = family default).
    pub noise_std: f32,
}

impl DataSpec {
    /// The effective class count after applying the family default.
    pub fn effective_classes(&self) -> usize {
        if self.classes == 0 {
            self.family.default_classes()
        } else {
            self.classes
        }
    }

    fn synth(&self, seed: u64) -> SynthConfig {
        SynthConfig {
            family: self.family,
            img: self.img,
            train_n: self.train_n,
            test_n: self.test_n,
            classes: self.classes,
            noise_std: self.noise_std,
            seed,
        }
    }
}

/// How simulated compute/link resources are assigned across the device
/// population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResourceAssignment {
    /// Every device is smartphone-class.
    Smartphone,
    /// Every device is MCU-class.
    Microcontroller,
    /// A log-normally heterogeneous MCU↔smartphone population,
    /// deterministic in `seed`.
    Heterogeneous {
        /// Population seed (independent of the run seed, so the same
        /// hardware mix can be held fixed across a seed sweep).
        seed: u64,
    },
    /// An explicit per-device list (must match the device count).
    Explicit(Vec<DeviceResources>),
}

/// A uniform link-bandwidth override applied to every device of the
/// resource population (bytes/second), replacing whatever the assignment
/// itself would give each device. `f32::INFINITY` spells an *unlimited*
/// link (transfer time zero — the pre-codec accounting), serialized as
/// `null`; finite values make `sim_seconds` include real transfer time
/// for the codec-encoded payloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBandwidth {
    /// Device → server link (bytes/second).
    pub up_bytes_per_sec: f32,
    /// Server → device link (bytes/second).
    pub down_bytes_per_sec: f32,
}

impl LinkBandwidth {
    /// Unlimited links in both directions: transfer time is zero no
    /// matter how many bytes a codec puts on the wire.
    pub fn unlimited() -> Self {
        LinkBandwidth {
            up_bytes_per_sec: f32::INFINITY,
            down_bytes_per_sec: f32::INFINITY,
        }
    }
}

/// Simulated-time modelling: a resource assignment plus the constant
/// server-side orchestration latency added to every round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Per-device compute/link capabilities.
    pub assignment: ResourceAssignment,
    /// Optional uniform link-bandwidth override (`None` keeps each
    /// device's own link speeds from the assignment).
    pub bandwidth: Option<LinkBandwidth>,
    /// Constant simulated server seconds added to every round.
    pub server_seconds: f64,
}

impl ResourceSpec {
    fn population(&self, devices: usize) -> Vec<DeviceResources> {
        let mut population = match &self.assignment {
            ResourceAssignment::Smartphone => vec![DeviceResources::smartphone(); devices],
            ResourceAssignment::Microcontroller => {
                vec![DeviceResources::microcontroller(); devices]
            }
            ResourceAssignment::Heterogeneous { seed } => {
                DeviceResources::heterogeneous_population(devices, *seed)
            }
            ResourceAssignment::Explicit(list) => list.clone(),
        };
        if let Some(bw) = self.bandwidth {
            for device in &mut population {
                device.uplink_bytes_per_sec = bw.up_bytes_per_sec;
                device.downlink_bytes_per_sec = bw.down_bytes_per_sec;
            }
        }
        population
    }
}

/// Which federated algorithm runs the scenario, with its hyperparameters.
///
/// The device architectures always come from [`Scenario::zoo`]; the
/// homogeneous algorithms (FedAvg/FedProx) require every zoo entry to name
/// the same architecture, which [`Scenario::validate`] enforces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Algo {
    /// FedZKT (the paper's Algorithms 1–3).
    FedZkt(FedZktConfig),
    /// FedAvg over a homogeneous zoo (`prox_mu` must be 0 — spell a
    /// proximal run as [`Algo::FedProx`]).
    FedAvg(FedAvgConfig),
    /// FedProx over a homogeneous zoo (`prox_mu` must be positive).
    FedProx(FedAvgConfig),
    /// FedMD with a public dataset drawn from `public`.
    FedMd {
        /// Family the public (logit-alignment) dataset is drawn from.
        public: DataFamily,
        /// FedMD hyperparameters.
        cfg: FedMdConfig,
    },
    /// Fed-ET: ensemble transfer onto a large server model through
    /// diversity-weighted consensus distillation on a public transfer set
    /// drawn from `public`.
    FedEt {
        /// Family the public (transfer) dataset is drawn from.
        public: DataFamily,
        /// Fed-ET hyperparameters.
        cfg: FedEtConfig,
    },
    /// FedGKT: split training exchanging per-sample feature/logit bundles
    /// uplink and soft labels downlink — no public data, no model on the
    /// wire.
    FedGkt(FedGktConfig),
}

impl Algo {
    /// Short lowercase name ("fedzkt", "fedavg", "fedprox", "fedmd",
    /// "fedet", "fedgkt").
    pub fn name(&self) -> &'static str {
        match self {
            Algo::FedZkt(_) => "fedzkt",
            Algo::FedAvg(_) => "fedavg",
            Algo::FedProx(_) => "fedprox",
            Algo::FedMd { .. } => "fedmd",
            Algo::FedEt { .. } => "fedet",
            Algo::FedGkt(_) => "fedgkt",
        }
    }
}

/// A model description's own knobs must be well-formed before it is built:
/// a NaN or non-positive width multiplier would silently clamp to the
/// minimum architecture instead of the one described.
fn check_model_spec(spec: &ModelSpec) -> Result<(), String> {
    let positive = |name: &str, v: f32| -> Result<(), String> {
        if v.is_finite() && v > 0.0 {
            Ok(())
        } else {
            Err(format!("{name} {v} must be finite and positive"))
        }
    };
    match *spec {
        ModelSpec::SmallCnn { base_channels: 0 } => Err("base_channels must be positive".into()),
        ModelSpec::Mlp { hidden: 0 } => Err("hidden width must be positive".into()),
        ModelSpec::LeNet { scale, .. } => positive("scale", scale),
        ModelSpec::MobileNetV2 { width } => positive("width", width),
        ModelSpec::ShuffleNetV2 { size } => positive("size", size),
        _ => Ok(()),
    }
}

/// Cycle `specs` over `k` devices as `(spec, count)` pairs — the one
/// definition of the count expansion shared by [`crate::standard_zoo`] and
/// [`Scenario::set_device_count`] (per-architecture counts as in §IV-C2's
/// round-robin assignment; device order grouped by architecture).
///
/// # Panics
/// Panics when `specs` is empty.
pub(crate) fn cycle_counts(specs: &[ModelSpec], k: usize) -> Vec<(ModelSpec, usize)> {
    let mut counts = vec![0usize; specs.len()];
    for i in 0..k {
        counts[i % specs.len()] += 1;
    }
    specs
        .iter()
        .copied()
        .zip(counts)
        .filter(|(_, count)| *count > 0)
        .collect()
}

/// One fully specified federated experiment, as data.
///
/// A `Scenario` is everything the paper's evaluation grid varies — dataset
/// family, partition skew, device zoo, resource population, algorithm and
/// protocol configuration — in one serializable value. It materializes
/// datasets and models only when run, so a description can be loaded,
/// edited (swept) and validated cheaply.
///
/// ```
/// use fedzkt_scenario::preset;
///
/// let scenario = preset("tiny").unwrap();
/// let log = scenario.run().unwrap();
/// assert_eq!(log.rounds.len(), scenario.sim.rounds);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Identifier; used for artifact file names (printable ASCII).
    pub name: String,
    /// Private-dataset description.
    pub data: DataSpec,
    /// How the private data is split across devices (§IV-A4).
    pub partition: Partition,
    /// The device zoo as `(architecture, device count)` pairs; the device
    /// population is the expansion in order.
    pub zoo: Vec<(ModelSpec, usize)>,
    /// Registered-fleet override: `0` keeps the zoo expansion as the
    /// population; a positive value re-cycles the zoo's architectures over
    /// this many devices instead (per-architecture counts as in §IV-C2's
    /// round-robin assignment). The idiom for cross-device scale: a
    /// one-line zoo plus `"registered_devices": 1000000` describes a
    /// million-device fleet without a million-entry expansion, and
    /// [`SimConfig::materialization`] `lazy` keeps it resident only while
    /// sampled.
    pub registered_devices: usize,
    /// Simulated device resources (None = no simulated clock).
    pub resources: Option<ResourceSpec>,
    /// Fleet dynamics — arrival/departure, duty cycling, mid-round
    /// dropout, time-varying links (None = the static fleet every
    /// pre-churn scenario implies). Serialized only when present, so
    /// static-fleet files are byte-identical to the pre-churn schema.
    pub churn: Option<ChurnSpec>,
    /// The algorithm and its hyperparameters.
    pub algorithm: Algo,
    /// Protocol-level knobs shared by every algorithm.
    pub sim: SimConfig,
}

/// The concrete objects a [`Scenario`] describes, produced by
/// [`Scenario::materialize`] — what experiment harnesses use when they need
/// the datasets or shard layout themselves (bound trainers, shard
/// statistics) rather than a full run.
pub struct Materialized {
    /// Private training data.
    pub train: Dataset,
    /// Held-out test data.
    pub test: Dataset,
    /// The public dataset, when the algorithm needs one (FedMD's
    /// logit-alignment corpus, Fed-ET's transfer set).
    pub public: Option<Dataset>,
    /// Device shards (index sets into `train`).
    pub shards: Vec<Vec<usize>>,
    /// Per-device architectures (the zoo expansion).
    pub zoo: Vec<ModelSpec>,
    /// Per-device resources, when the scenario attaches them.
    pub resources: Option<Vec<DeviceResources>>,
}

impl Scenario {
    /// Number of devices in the federation: the `registered_devices`
    /// override when set, the zoo expansion's length otherwise.
    pub fn devices(&self) -> usize {
        if self.registered_devices > 0 {
            self.registered_devices
        } else {
            self.zoo.iter().map(|(_, count)| count).sum()
        }
    }

    /// The effective `(architecture, count)` zoo: the written zoo, or its
    /// architectures re-cycled over [`Scenario::devices`] when
    /// `registered_devices` overrides the population size.
    pub fn effective_zoo(&self) -> Vec<(ModelSpec, usize)> {
        if self.registered_devices > 0 {
            let specs: Vec<ModelSpec> = self.zoo.iter().map(|(s, _)| *s).collect();
            if specs.is_empty() {
                return Vec::new(); // validation reports the empty zoo
            }
            cycle_counts(&specs, self.registered_devices)
        } else {
            self.zoo.clone()
        }
    }

    /// Per-device architectures: each effective-zoo entry repeated `count`
    /// times, in order.
    pub fn device_specs(&self) -> Vec<ModelSpec> {
        self.effective_zoo()
            .iter()
            .flat_map(|(spec, count)| std::iter::repeat_n(*spec, *count))
            .collect()
    }

    /// Re-cycle the current distinct architectures over `k` devices,
    /// replacing the zoo counts (per-architecture counts as in §IV-C2's
    /// round-robin assignment; device order grouped by architecture, like
    /// every zoo expansion). Used by device-count sweeps. Clears any
    /// `registered_devices` override — the explicit count wins.
    pub fn set_device_count(&mut self, k: usize) {
        self.registered_devices = 0;
        let specs: Vec<ModelSpec> = self.zoo.iter().map(|(s, _)| *s).collect();
        if specs.is_empty() {
            return; // validation reports the empty zoo
        }
        self.zoo = cycle_counts(&specs, k);
    }

    /// The FedZKT config, when this scenario runs FedZKT.
    pub fn fedzkt_cfg(&self) -> Option<&FedZktConfig> {
        match &self.algorithm {
            Algo::FedZkt(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Mutable form of [`Scenario::fedzkt_cfg`] (for sweeps and ablations
    /// that edit hyperparameters in place).
    pub fn fedzkt_cfg_mut(&mut self) -> Option<&mut FedZktConfig> {
        match &mut self.algorithm {
            Algo::FedZkt(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// The FedAvg/FedProx config, when this scenario runs either.
    pub fn fedavg_cfg(&self) -> Option<&FedAvgConfig> {
        match &self.algorithm {
            Algo::FedAvg(cfg) | Algo::FedProx(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// The FedMD config, when this scenario runs FedMD.
    pub fn fedmd_cfg(&self) -> Option<&FedMdConfig> {
        match &self.algorithm {
            Algo::FedMd { cfg, .. } => Some(cfg),
            _ => None,
        }
    }

    /// Mutable form of [`Scenario::fedavg_cfg`].
    pub fn fedavg_cfg_mut(&mut self) -> Option<&mut FedAvgConfig> {
        match &mut self.algorithm {
            Algo::FedAvg(cfg) | Algo::FedProx(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Mutable form of [`Scenario::fedmd_cfg`].
    pub fn fedmd_cfg_mut(&mut self) -> Option<&mut FedMdConfig> {
        match &mut self.algorithm {
            Algo::FedMd { cfg, .. } => Some(cfg),
            _ => None,
        }
    }

    /// The Fed-ET config, when this scenario runs Fed-ET.
    pub fn fedet_cfg(&self) -> Option<&FedEtConfig> {
        match &self.algorithm {
            Algo::FedEt { cfg, .. } => Some(cfg),
            _ => None,
        }
    }

    /// Mutable form of [`Scenario::fedet_cfg`].
    pub fn fedet_cfg_mut(&mut self) -> Option<&mut FedEtConfig> {
        match &mut self.algorithm {
            Algo::FedEt { cfg, .. } => Some(cfg),
            _ => None,
        }
    }

    /// The FedGKT config, when this scenario runs FedGKT.
    pub fn fedgkt_cfg(&self) -> Option<&FedGktConfig> {
        match &self.algorithm {
            Algo::FedGkt(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Mutable form of [`Scenario::fedgkt_cfg`].
    pub fn fedgkt_cfg_mut(&mut self) -> Option<&mut FedGktConfig> {
        match &mut self.algorithm {
            Algo::FedGkt(cfg) => Some(cfg),
            _ => None,
        }
    }

    /// Replace the algorithm, keeping data/partition/zoo/sim — how a
    /// comparison harness derives the FedMD (or FedAvg) leg of an
    /// experiment from its FedZKT leg.
    pub fn with_algorithm(mut self, algorithm: Algo) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Check the description for degenerate or impossible requests without
    /// generating any data.
    ///
    /// # Errors
    /// Returns the typed [`ScenarioError`] a run would otherwise hit as a
    /// panic deep inside the data or training layers.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        // The name becomes an artifact *file name* verbatim, so it must not
        // be able to escape the chosen output directory (`../`, absolute
        // paths) or hide as a dotfile.
        let name_char_ok =
            |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
        if self.name.is_empty()
            || !self.name.chars().all(name_char_ok)
            || self.name.contains("..")
            || self.name.starts_with(['.', '-'])
        {
            return Err(ScenarioError::InvalidData(
                "scenario name must be non-empty [A-Za-z0-9._-], free of \"..\", and not start \
                 with '.' or '-' (it names the artifact files)"
                    .into(),
            ));
        }
        let d = &self.data;
        if d.train_n == 0 || d.test_n == 0 {
            return Err(ScenarioError::InvalidData(format!(
                "need at least one training and one test sample (train_n {}, test_n {})",
                d.train_n, d.test_n
            )));
        }
        if d.img == 0 || !d.img.is_multiple_of(4) {
            return Err(ScenarioError::InvalidData(format!(
                "img {} must be a positive multiple of 4 (every zoo member downsamples twice)",
                d.img
            )));
        }
        let classes = d.effective_classes();
        if classes < 2 {
            return Err(ScenarioError::InvalidData(format!(
                "need at least 2 classes, got {classes}"
            )));
        }
        if !d.noise_std.is_finite() {
            return Err(ScenarioError::InvalidData(format!(
                "noise_std {} must be finite (negative = family default)",
                d.noise_std
            )));
        }
        if self.zoo.is_empty() {
            return Err(ScenarioError::InvalidZoo("the device zoo is empty".into()));
        }
        if self.zoo.iter().any(|(_, count)| *count == 0) {
            return Err(ScenarioError::InvalidZoo(
                "every zoo entry needs a positive device count".into(),
            ));
        }
        for (spec, _) in &self.zoo {
            check_model_spec(spec)
                .map_err(|msg| ScenarioError::InvalidZoo(format!("{}: {msg}", spec.name())))?;
        }
        let devices = self.devices();
        if d.train_n < devices {
            return Err(ScenarioError::Partition(PartitionError::NotEnoughSamples {
                samples: d.train_n,
                devices,
            }));
        }
        match self.partition {
            Partition::QuantitySkew { classes_per_device }
                if classes_per_device == 0 || classes_per_device > classes =>
            {
                return Err(ScenarioError::Partition(PartitionError::InvalidParameter(
                    format!("classes_per_device {classes_per_device} outside 1..={classes}"),
                )));
            }
            Partition::Dirichlet { beta } if !beta.is_finite() || beta <= 0.0 => {
                return Err(ScenarioError::Partition(PartitionError::InvalidParameter(
                    format!("beta {beta} must be > 0"),
                )));
            }
            _ => {}
        }
        if self.sim.rounds == 0 {
            return Err(ScenarioError::InvalidSim("rounds must be at least 1".into()));
        }
        if !(self.sim.participation > 0.0 && self.sim.participation <= 1.0) {
            return Err(ScenarioError::InvalidSim(format!(
                "participation {} outside (0, 1]",
                self.sim.participation
            )));
        }
        if self.sim.eval_batch == 0 {
            return Err(ScenarioError::InvalidSim("eval_batch must be positive".into()));
        }
        if !self.sim.codec.is_valid() {
            return Err(ScenarioError::InvalidSim(format!(
                "codec {:?} is malformed (top-k density must be finite and in (0, 1])",
                self.sim.codec
            )));
        }
        if let Some(resources) = &self.resources {
            if !resources.server_seconds.is_finite() || resources.server_seconds < 0.0 {
                return Err(ScenarioError::InvalidResources(format!(
                    "server_seconds {} must be finite and non-negative",
                    resources.server_seconds
                )));
            }
            if let Some(bw) = resources.bandwidth {
                // +∞ is the documented "unlimited link" spelling; NaN and
                // non-positive speeds are never meaningful.
                let link_ok = |v: f32| !v.is_nan() && v > 0.0;
                if !link_ok(bw.up_bytes_per_sec) || !link_ok(bw.down_bytes_per_sec) {
                    return Err(ScenarioError::InvalidResources(format!(
                        "bandwidth override ({}, {}) must be positive (+inf = unlimited)",
                        bw.up_bytes_per_sec, bw.down_bytes_per_sec
                    )));
                }
            }
            if let ResourceAssignment::Explicit(list) = &resources.assignment {
                if list.len() != devices {
                    return Err(ScenarioError::InvalidResources(format!(
                        "explicit assignment lists {} devices, the zoo has {devices}",
                        list.len()
                    )));
                }
                let throughput_ok = |v: f32| v.is_finite() && v > 0.0;
                if list.iter().any(|r| {
                    !throughput_ok(r.compute_samples_per_sec)
                        || !throughput_ok(r.uplink_bytes_per_sec)
                        || !throughput_ok(r.downlink_bytes_per_sec)
                }) {
                    return Err(ScenarioError::InvalidResources(
                        "explicit device throughputs must be finite and positive".into(),
                    ));
                }
            }
        }
        if let Some(churn) = &self.churn {
            churn
                .validate()
                .map_err(|msg| ScenarioError::InvalidSim(format!("churn: {msg}")))?;
        }
        // Hyperparameter floats must be finite: a NaN/∞ learning rate only
        // fails much later (as a diverged run or unreloadable JSON — the
        // canonical serialization has no non-finite literals). The one
        // documented exception is FedZKT's server throughput, where +∞
        // spells a free server.
        let finite = |name: &str, v: f32| -> Result<(), ScenarioError> {
            if v.is_finite() {
                Ok(())
            } else {
                Err(ScenarioError::InvalidAlgorithm(format!("{name} {v} must be finite")))
            }
        };
        match &self.algorithm {
            Algo::FedZkt(cfg) => {
                if cfg.device_batch == 0 || cfg.distill_batch == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedzkt batch sizes must be positive".into(),
                    ));
                }
                check_model_spec(&cfg.global_model).map_err(|msg| {
                    ScenarioError::InvalidAlgorithm(format!(
                        "global model {}: {msg}",
                        cfg.global_model.name()
                    ))
                })?;
                if cfg.generator.z_dim == 0 || cfg.generator.ngf == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "generator z_dim and ngf must be positive".into(),
                    ));
                }
                for (name, v) in [
                    ("device_lr", cfg.device_lr),
                    ("device_momentum", cfg.device_momentum),
                    ("server_lr", cfg.server_lr),
                    ("transfer_lr", cfg.transfer_lr),
                    ("generator_lr", cfg.generator_lr),
                    ("prox_mu", cfg.prox_mu),
                ] {
                    finite(name, v)?;
                }
                if cfg.server_samples_per_sec.is_nan() || cfg.server_samples_per_sec <= 0.0 {
                    return Err(ScenarioError::InvalidAlgorithm(format!(
                        "server_samples_per_sec {} must be positive (+inf = free server)",
                        cfg.server_samples_per_sec
                    )));
                }
            }
            Algo::FedAvg(cfg) => {
                self.require_homogeneous_zoo("fedavg")?;
                if cfg.batch_size == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedavg batch size must be positive".into(),
                    ));
                }
                finite("lr", cfg.lr)?;
                finite("momentum", cfg.momentum)?;
                if cfg.prox_mu != 0.0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedavg with prox_mu != 0 is FedProx; use the fedprox variant".into(),
                    ));
                }
            }
            Algo::FedProx(cfg) => {
                self.require_homogeneous_zoo("fedprox")?;
                if cfg.batch_size == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedprox batch size must be positive".into(),
                    ));
                }
                finite("lr", cfg.lr)?;
                finite("momentum", cfg.momentum)?;
                if cfg.prox_mu.is_nan() || cfg.prox_mu.is_infinite() || cfg.prox_mu <= 0.0 {
                    return Err(ScenarioError::InvalidAlgorithm(format!(
                        "fedprox needs a finite prox_mu > 0, got {}",
                        cfg.prox_mu
                    )));
                }
            }
            Algo::FedMd { public, cfg } => {
                if cfg.batch_size == 0 || cfg.alignment_size == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedmd batch and alignment sizes must be positive".into(),
                    ));
                }
                finite("lr", cfg.lr)?;
                // Devices score the public corpus with models built for the
                // private geometry, so the channel counts must agree.
                if public.channels() != d.family.channels() {
                    return Err(ScenarioError::InvalidAlgorithm(format!(
                        "fedmd public family {} has {} channel(s) but the private family {} has \
                         {}; pick a public family with matching image geometry",
                        public.name(),
                        public.channels(),
                        d.family.name(),
                        d.family.channels()
                    )));
                }
            }
            Algo::FedEt { public, cfg } => {
                if cfg.batch_size == 0 || cfg.transfer_size == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedet batch and transfer sizes must be positive".into(),
                    ));
                }
                check_model_spec(&cfg.server_model).map_err(|msg| {
                    ScenarioError::InvalidAlgorithm(format!(
                        "server model {}: {msg}",
                        cfg.server_model.name()
                    ))
                })?;
                finite("lr", cfg.lr)?;
                finite("server_lr", cfg.server_lr)?;
                if !cfg.diversity_lambda.is_finite() || cfg.diversity_lambda < 0.0 {
                    return Err(ScenarioError::InvalidAlgorithm(format!(
                        "diversity_lambda {} must be finite and non-negative (0 = plain \
                         sample-count weighting)",
                        cfg.diversity_lambda
                    )));
                }
                // Devices and the server score the public transfer set with
                // models built for the private geometry.
                if public.channels() != d.family.channels() {
                    return Err(ScenarioError::InvalidAlgorithm(format!(
                        "fedet public family {} has {} channel(s) but the private family {} has \
                         {}; pick a public family with matching image geometry",
                        public.name(),
                        public.channels(),
                        d.family.name(),
                        d.family.channels()
                    )));
                }
            }
            Algo::FedGkt(cfg) => {
                if cfg.batch_size == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedgkt batch size must be positive".into(),
                    ));
                }
                if cfg.feature_dim == 0 || cfg.server_hidden == 0 {
                    return Err(ScenarioError::InvalidAlgorithm(
                        "fedgkt feature_dim and server_hidden must be positive".into(),
                    ));
                }
                finite("lr", cfg.lr)?;
                finite("server_lr", cfg.server_lr)?;
            }
        }
        Ok(())
    }

    fn require_homogeneous_zoo(&self, algo: &str) -> Result<(), ScenarioError> {
        let first = self.zoo[0].0;
        if self.zoo.iter().any(|(spec, _)| *spec != first) {
            return Err(ScenarioError::InvalidZoo(format!(
                "{algo} averages parameters element-wise and requires a homogeneous zoo"
            )));
        }
        Ok(())
    }

    /// Generate the datasets, shards, zoo expansion and resource population
    /// this scenario describes (validating first).
    ///
    /// # Errors
    /// Everything [`Scenario::validate`] reports, plus partition failures
    /// that depend on the realized labels (e.g. a quantity skew that drops
    /// every sample of an unowned class).
    pub fn materialize(&self) -> Result<Materialized, ScenarioError> {
        self.validate()?;
        let (train, test) = self.data.synth(self.sim.seed).generate();
        let shards = self.partition.split(
            train.labels(),
            train.num_classes(),
            self.devices(),
            self.sim.seed.wrapping_add(17),
        )?;
        let public = match &self.algorithm {
            Algo::FedMd { public, .. } | Algo::FedEt { public, .. } => {
                // Geometry-compatible with the private data; its own seed
                // stream so the public corpus is not a relabelled private
                // one.
                let (public, _) = SynthConfig {
                    family: *public,
                    img: self.data.img,
                    train_n: self.data.train_n,
                    test_n: 8,
                    seed: self.sim.seed.wrapping_add(0x9999),
                    ..Default::default()
                }
                .generate();
                Some(public)
            }
            _ => None,
        };
        let resources = self.resources.as_ref().map(|r| r.population(self.devices()));
        Ok(Materialized {
            train,
            test,
            public,
            shards,
            zoo: self.device_specs(),
            resources,
        })
    }

    /// Build the described simulation behind the algorithm-erased driver
    /// interface — the scenario analogue of `Simulation::builder`, usable
    /// without naming the algorithm type. Use
    /// [`ErasedSimulation::as_any`] to reach algorithm-specific accessors
    /// (e.g. FedZKT's gradient-norm probe).
    ///
    /// # Errors
    /// Everything [`Scenario::materialize`] reports.
    pub fn build(&self) -> Result<Box<dyn ErasedSimulation>, ScenarioError> {
        let m = self.materialize()?;
        let sim = self.sim;
        let server_seconds = self.resources.as_ref().map_or(0.0, |r| r.server_seconds);
        fn finish<A: fedzkt_fl::FederatedAlgorithm + 'static>(
            algo: A,
            test: Dataset,
            sim: SimConfig,
            resources: Option<Vec<DeviceResources>>,
            server_seconds: f64,
            churn: Option<ChurnSpec>,
        ) -> Box<dyn ErasedSimulation> {
            let mut builder = Simulation::builder(algo, test, sim);
            if let Some(resources) = resources {
                builder = builder.resources(resources).server_seconds(server_seconds);
            }
            if let Some(churn) = churn {
                builder = builder.churn(churn);
            }
            Box::new(builder.build())
        }
        Ok(match &self.algorithm {
            Algo::FedZkt(cfg) => {
                let fed = FedZkt::new(&m.zoo, &m.train, &m.shards, *cfg, &sim);
                finish(fed, m.test, sim, m.resources, server_seconds, self.churn)
            }
            Algo::FedAvg(cfg) | Algo::FedProx(cfg) => {
                let fed = FedAvg::new(m.zoo[0], &m.train, &m.shards, *cfg, &sim);
                finish(fed, m.test, sim, m.resources, server_seconds, self.churn)
            }
            Algo::FedMd { cfg, .. } => {
                let public = m.public.expect("materialize provides a public set for fedmd");
                let fed = FedMd::new(&m.zoo, &m.train, &m.shards, public, *cfg, &sim);
                finish(fed, m.test, sim, m.resources, server_seconds, self.churn)
            }
            Algo::FedEt { cfg, .. } => {
                let public = m.public.expect("materialize provides a public set for fedet");
                let fed = FedEt::new(&m.zoo, &m.train, &m.shards, public, *cfg, &sim);
                finish(fed, m.test, sim, m.resources, server_seconds, self.churn)
            }
            Algo::FedGkt(cfg) => {
                let fed = FedGkt::new(&m.zoo, &m.train, &m.shards, *cfg, &sim);
                finish(fed, m.test, sim, m.resources, server_seconds, self.churn)
            }
        })
    }

    /// Run the scenario to completion and return its log.
    ///
    /// # Errors
    /// Everything [`Scenario::build`] reports.
    pub fn run(&self) -> Result<RunLog, ScenarioError> {
        self.run_with(&mut |_| {})
    }

    /// Run the scenario, invoking `observer` with each round's metrics as
    /// it completes.
    ///
    /// # Errors
    /// Everything [`Scenario::build`] reports.
    pub fn run_with(
        &self,
        observer: &mut dyn FnMut(&RoundMetrics),
    ) -> Result<RunLog, ScenarioError> {
        let mut sim = self.build()?;
        Ok(sim.run_with(observer).clone())
    }
}
