//! Workload tiers, standard scenario construction, and the named preset
//! registry.
//!
//! [`Scenario::standard`] is the single place the paper's standard
//! evaluation setup (§IV-A) is encoded — the per-family model zoos, the
//! tier-scaled dataset/round/iteration sizes, and the learning rates tuned
//! for each tier. Everything downstream (examples, figure/table binaries,
//! sweeps) derives its scenarios from here or from the [`presets`] built on
//! top, instead of hand-wiring datasets and configs.

use crate::{
    Algo, DataSpec, LinkBandwidth, ResourceAssignment, ResourceSpec, Scenario, ScenarioError,
};
use fedzkt_core::{FedMdConfig, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::{
    ChurnSpec, CodecSpec, FedAvgConfig, FedEtConfig, FedGktConfig, Materialization, SimConfig,
};
use fedzkt_models::{GeneratorSpec, ModelSpec};

/// Workload tier: how much compute an experiment spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Minutes-scale CPU runs (default), preserving the paper's qualitative
    /// shapes.
    Quick,
    /// Seconds-scale smoke runs (CI-friendly).
    Tiny,
    /// The paper's §IV-A3 parameters (hours on CPU).
    Paper,
}

/// Tier-dependent scale parameters for one dataset family.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Device count `K`.
    pub devices: usize,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Local epochs `T_l`.
    pub local_epochs: usize,
    /// Server distillation iterations `nD`.
    pub distill_iters: usize,
    /// Image side length.
    pub img: usize,
    /// Training samples.
    pub train_n: usize,
    /// Test samples.
    pub test_n: usize,
    /// Batch size.
    pub batch: usize,
}

impl Scale {
    /// Scale for a family and tier.
    pub fn for_family(family: DataFamily, tier: Tier) -> Scale {
        let cifar = matches!(family, DataFamily::Cifar10Like);
        match tier {
            Tier::Paper => Scale {
                devices: 10,
                rounds: if cifar { 100 } else { 50 },
                local_epochs: if cifar { 10 } else { 5 },
                distill_iters: if cifar { 500 } else { 200 },
                img: if cifar { 32 } else { 28 },
                train_n: 50_000,
                test_n: 10_000,
                batch: 256,
            },
            Tier::Quick => Scale {
                devices: 5,
                rounds: if cifar { 8 } else { 7 },
                local_epochs: 2,
                distill_iters: if cifar { 20 } else { 14 },
                img: 12,
                train_n: 600,
                test_n: 300,
                batch: 32,
            },
            Tier::Tiny => Scale {
                devices: 3,
                rounds: 2,
                local_epochs: 1,
                distill_iters: 4,
                img: 8,
                train_n: 120,
                test_n: 60,
                batch: 16,
            },
        }
    }

    /// The standard FedZKT configuration at this scale.
    ///
    /// Learning rates: the paper's values (0.01 / 1e-3) are tuned for
    /// `nD` = 200–500 server iterations; the reduced tiers compensate with
    /// proportionally larger steps.
    pub fn fedzkt_config(&self, family: DataFamily, tier: Tier) -> FedZktConfig {
        let global_model = if family == DataFamily::Cifar10Like {
            ModelSpec::MobileNetV2 { width: 1.0 }
        } else {
            ModelSpec::SmallCnn { base_channels: 8 }
        };
        let generator = match tier {
            Tier::Paper => GeneratorSpec { z_dim: 100, ngf: 32 },
            Tier::Quick => GeneratorSpec { z_dim: 32, ngf: 8 },
            Tier::Tiny => GeneratorSpec { z_dim: 16, ngf: 4 },
        };
        FedZktConfig {
            local_epochs: self.local_epochs,
            distill_iters: self.distill_iters,
            transfer_iters: self.distill_iters,
            device_batch: self.batch,
            distill_batch: self.batch,
            device_lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
            server_lr: 0.01,
            transfer_lr: 0.01,
            generator_lr: 1e-3,
            generator,
            global_model,
            ..Default::default()
        }
    }

    /// The standard FedMD configuration at this scale.
    pub fn fedmd_config(&self, tier: Tier) -> FedMdConfig {
        FedMdConfig {
            public_warmup_epochs: self.local_epochs,
            private_warmup_epochs: self.local_epochs,
            alignment_size: (self.train_n / 4).clamp(32, 5000),
            digest_epochs: 1,
            revisit_epochs: self.local_epochs,
            batch_size: self.batch,
            lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
        }
    }

    /// The standard homogeneous-baseline (FedAvg/FedProx) configuration at
    /// this scale.
    pub fn fedavg_config(&self, tier: Tier) -> FedAvgConfig {
        FedAvgConfig {
            local_epochs: self.local_epochs,
            batch_size: self.batch,
            lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
            ..Default::default()
        }
    }

    /// The standard Fed-ET configuration at this scale. The server model
    /// mirrors [`Scale::fedzkt_config`]'s global-model choice, so the two
    /// ensemble-to-server protocols distill onto the same architecture.
    pub fn fedet_config(&self, family: DataFamily, tier: Tier) -> FedEtConfig {
        let server_model = if family == DataFamily::Cifar10Like {
            ModelSpec::MobileNetV2 { width: 1.0 }
        } else {
            ModelSpec::SmallCnn { base_channels: 8 }
        };
        FedEtConfig {
            local_epochs: self.local_epochs,
            batch_size: self.batch,
            lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
            transfer_size: (self.train_n / 4).clamp(32, 5000),
            distill_epochs: self.local_epochs,
            transfer_epochs: self.local_epochs,
            server_lr: 0.01,
            diversity_lambda: 1.0,
            server_model,
        }
    }

    /// The standard FedGKT configuration at this scale.
    pub fn fedgkt_config(&self, tier: Tier) -> FedGktConfig {
        FedGktConfig {
            local_epochs: self.local_epochs,
            kd_epochs: 1,
            server_epochs: 2,
            batch_size: self.batch,
            lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
            server_lr: 0.01,
            feature_dim: 32,
            server_hidden: 64,
        }
    }
}

/// The paper's per-family zoo, cycled over `devices` as `(spec, count)`
/// pairs. The per-architecture *counts* match §IV-C2's round-robin
/// assignment of ten devices through Models A–E; note that the expanded
/// device order groups by architecture (`[A, A, B, B, …]`, the natural
/// reading of `(spec, count)`), so which device *index* — and therefore
/// which shard and which `DeviceResources` entry — carries which
/// architecture differs from an interleaved `[A, B, C, …]` assignment.
pub fn standard_zoo(family: DataFamily, devices: usize) -> Vec<(ModelSpec, usize)> {
    let base = if family == DataFamily::Cifar10Like {
        ModelSpec::paper_zoo_cifar()
    } else {
        ModelSpec::paper_zoo_small()
    };
    crate::spec::cycle_counts(&base, devices)
}

/// The public dataset FedMD pairs with a private family in Table I
/// (MNIST↔FASHION, FASHION↔MNIST, KMNIST↔FASHION; CIFAR-10 defaults to
/// CIFAR-100, with SVHN as the deliberately mismatched alternative).
pub fn fedmd_public_family(private: DataFamily) -> DataFamily {
    match private {
        DataFamily::MnistLike => DataFamily::FashionLike,
        DataFamily::FashionLike => DataFamily::MnistLike,
        DataFamily::KmnistLike => DataFamily::FashionLike,
        _ => DataFamily::Cifar100Like,
    }
}

/// The [`Scale`]-derived standard configuration of a named algorithm for
/// an existing scenario — the `scenarios sweep --algos` axis and the
/// algorithm bench share this mapping. The scale is rebuilt from the
/// scenario's *own* data geometry (train/test sizes, image side, device
/// count, rounds), so the swapped-in algorithm stays a controlled
/// comparison with whatever the base cell runs; the tier — which only
/// picks learning rates and epoch/iteration counts — is inferred from the
/// training-set size. Returns `None` for an unknown name.
pub fn standard_algorithm(scenario: &Scenario, name: &str) -> Option<Algo> {
    let family = scenario.data.family;
    let tier = if scenario.data.train_n >= 10_000 {
        Tier::Paper
    } else if scenario.data.train_n >= 400 {
        Tier::Quick
    } else {
        Tier::Tiny
    };
    let mut scale = Scale::for_family(family, tier);
    scale.devices = scenario.devices();
    scale.rounds = scenario.sim.rounds;
    scale.img = scenario.data.img;
    scale.train_n = scenario.data.train_n;
    scale.test_n = scenario.data.test_n;
    Some(match name {
        "fedzkt" => Algo::FedZkt(scale.fedzkt_config(family, tier)),
        "fedavg" => Algo::FedAvg(scale.fedavg_config(tier)),
        "fedprox" => Algo::FedProx(FedAvgConfig { prox_mu: 0.01, ..scale.fedavg_config(tier) }),
        "fedmd" => {
            Algo::FedMd { public: fedmd_public_family(family), cfg: scale.fedmd_config(tier) }
        }
        "fedet" => Algo::FedEt {
            public: fedmd_public_family(family),
            cfg: scale.fedet_config(family, tier),
        },
        "fedgkt" => Algo::FedGkt(scale.fedgkt_config(tier)),
        _ => return None,
    })
}

impl Scenario {
    /// The standard FedZKT scenario for a family, partition and tier —
    /// the declarative successor of the old `fedzkt_bench::build_workload`.
    pub fn standard(family: DataFamily, partition: Partition, tier: Tier, seed: u64) -> Scenario {
        Scenario::standard_scaled(family, partition, tier, seed, Scale::for_family(family, tier))
    }

    /// [`Scenario::standard`] with explicit scale overrides (device-count
    /// and round sweeps).
    pub fn standard_scaled(
        family: DataFamily,
        partition: Partition,
        tier: Tier,
        seed: u64,
        scale: Scale,
    ) -> Scenario {
        let tier_slug = match tier {
            Tier::Quick => "quick",
            Tier::Tiny => "tiny",
            Tier::Paper => "paper",
        };
        let partition_slug = match partition {
            Partition::Iid => "iid".to_string(),
            Partition::QuantitySkew { classes_per_device } => format!("c{classes_per_device}"),
            Partition::Dirichlet { beta } => format!("dir{beta}"),
        };
        let family_slug = family.name().to_lowercase().replace('-', "");
        Scenario {
            name: format!("{family_slug}-{partition_slug}-{tier_slug}"),
            data: DataSpec {
                family,
                img: scale.img,
                train_n: scale.train_n,
                test_n: scale.test_n,
                classes: 0,
                noise_std: -1.0,
            },
            partition,
            zoo: standard_zoo(family, scale.devices),
            registered_devices: 0,
            resources: None,
            churn: None,
            algorithm: Algo::FedZkt(scale.fedzkt_config(family, tier)),
            sim: SimConfig { rounds: scale.rounds, seed, ..Default::default() },
        }
    }

    /// The FedMD leg of a comparison: same data, partition, zoo and
    /// protocol as `self`, with `public` as the alignment corpus. The
    /// FedMD hyperparameters are derived from the *base scenario's own*
    /// numbers — its train_n, and its FedZKT epochs/batch when the base
    /// runs FedZKT — so the two legs stay a controlled comparison even for
    /// non-standard bases; `tier` only picks the learning rate.
    pub fn fedmd_counterpart(&self, tier: Tier, public: DataFamily) -> Scenario {
        let epochs = self.fedzkt_cfg().map_or(2, |c| c.local_epochs);
        let batch = self.fedzkt_cfg().map_or(32, |c| c.device_batch);
        let cfg = FedMdConfig {
            public_warmup_epochs: epochs,
            private_warmup_epochs: epochs,
            alignment_size: (self.data.train_n / 4).clamp(32, 5000),
            digest_epochs: 1,
            revisit_epochs: epochs,
            batch_size: batch,
            lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
        };
        let mut counterpart = self.clone().with_algorithm(Algo::FedMd { public, cfg });
        counterpart.name = format!("{}-fedmd", self.name);
        counterpart
    }
}

/// One entry of the named-preset registry.
pub struct Preset {
    /// Registry key (also the checked-in `scenarios/<name>.json` file).
    pub name: &'static str,
    /// One-line description for `scenarios list`.
    pub about: &'static str,
    /// True for the paper-scale presets (hours of CPU; sweep/run harnesses
    /// skip them unless asked).
    pub paper_scale: bool,
    build: fn() -> Scenario,
}

impl Preset {
    /// Construct the preset's scenario.
    pub fn scenario(&self) -> Scenario {
        let mut scenario = (self.build)();
        scenario.name = self.name.to_string();
        scenario
    }
}

fn tiny() -> Scenario {
    Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1)
}

fn quickstart() -> Scenario {
    Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 7)
}

fn noniid_dirichlet() -> Scenario {
    let mut sc = Scenario::standard(
        DataFamily::FashionLike,
        Partition::Dirichlet { beta: 0.3 },
        Tier::Quick,
        3,
    );
    // Non-IID runs enable the paper's ℓ2 regularizer (Eq. 9).
    sc.fedzkt_cfg_mut().expect("standard scenarios run fedzkt").prox_mu = 1.0;
    sc
}

fn hetero_cifar() -> Scenario {
    let mut sc = Scenario::standard(DataFamily::Cifar10Like, Partition::Iid, Tier::Quick, 11);
    sc.set_device_count(10);
    sc.sim.rounds = 6;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Heterogeneous { seed: 11 },
        bandwidth: None,
        server_seconds: 1.0,
    });
    sc
}

fn straggler() -> Scenario {
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 5);
    sc.sim.rounds = 6;
    sc.sim.participation = 0.6;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Heterogeneous { seed: 5 },
        bandwidth: None,
        server_seconds: 1.0,
    });
    sc
}

fn fedavg_lcd() -> Scenario {
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 13);
    // Classical FL is constrained by the weakest participant: everyone
    // runs the lowest-common-denominator architecture.
    let scale = Scale::for_family(DataFamily::MnistLike, Tier::Quick);
    sc.zoo = vec![(ModelSpec::LeNet { scale: 0.5, deep: false }, scale.devices)];
    sc.sim.rounds = 6;
    sc.algorithm = Algo::FedAvg(scale.fedavg_config(Tier::Quick));
    sc
}

fn fedprox_noniid() -> Scenario {
    let mut sc = Scenario::standard(
        DataFamily::MnistLike,
        Partition::Dirichlet { beta: 0.5 },
        Tier::Quick,
        13,
    );
    let scale = Scale::for_family(DataFamily::MnistLike, Tier::Quick);
    sc.zoo = vec![(ModelSpec::LeNet { scale: 0.5, deep: false }, scale.devices)];
    sc.sim.rounds = 6;
    sc.algorithm = Algo::FedProx(FedAvgConfig {
        prox_mu: 0.5,
        ..scale.fedavg_config(Tier::Quick)
    });
    sc
}

fn fedmd_public() -> Scenario {
    let sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 2);
    sc.fedmd_counterpart(Tier::Quick, fedmd_public_family(DataFamily::MnistLike))
}

fn quant_uplink() -> Scenario {
    // Seconds-scale on purpose: this is the codec path's determinism and
    // CI workhorse (the quantized analogue of `tiny`). Smartphone-class
    // links are uniform, so transfer time is wholly payload-driven and a
    // codec change moves `sim_seconds` visibly.
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 17);
    sc.sim.codec = CodecSpec::QuantQ8;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Smartphone,
        bandwidth: None,
        server_seconds: 0.5,
    });
    sc
}

fn lowband_straggler() -> Scenario {
    // The straggler preset under harsh links: a uniform 20 kB/s up /
    // 100 kB/s down override dominates the round time, and top-k
    // sparsification (25% density) is what keeps the uplink usable —
    // Fed-ET-style per-client communication budgets in miniature.
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Quick, 5);
    sc.sim.rounds = 6;
    sc.sim.participation = 0.6;
    sc.sim.codec = CodecSpec::TopK { density: 0.25 };
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Heterogeneous { seed: 5 },
        bandwidth: Some(LinkBandwidth { up_bytes_per_sec: 2e4, down_bytes_per_sec: 1e5 }),
        server_seconds: 1.0,
    });
    sc
}

fn churn_flash_crowd() -> Scenario {
    // A flash crowd: the fleet trickles online over the first three
    // rounds and early arrivals age out (mean lifetime 6 rounds), so
    // every round sees a different available population. Seconds-scale
    // on purpose — the churn path's determinism and CI workhorse (the
    // dynamic-fleet analogue of `tiny`).
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 19);
    sc.set_device_count(6);
    sc.sim.rounds = 4;
    sc.sim.participation = 0.8;
    sc.churn = Some(ChurnSpec {
        seed: 19,
        arrival_window: 3,
        mean_lifetime: 6.0,
        ..Default::default()
    });
    sc
}

fn churn_lossy() -> Scenario {
    // A dropout-heavy fleet on a quantized uplink: every sampled device
    // receives the Q8 payload and burns partial compute, but fails to
    // report with probability 0.25, while its link wanders down to 40%
    // of nominal — the `quant-uplink` anchor under hostile dynamics.
    let mut sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 23);
    sc.sim.rounds = 4;
    sc.sim.codec = CodecSpec::QuantQ8;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Smartphone,
        bandwidth: None,
        server_seconds: 0.5,
    });
    sc.churn = Some(ChurnSpec {
        seed: 23,
        dropout: 0.25,
        bandwidth_floor: 0.4,
        ..Default::default()
    });
    sc
}

fn fedet_hetero() -> Scenario {
    // Fed-ET on the CIFAR hetero zoo: five devices across the paper's
    // Models A-E ensemble into one MobileNet server over a CIFAR-100-like
    // transfer set, on heterogeneous simulated hardware. Seconds-scale on
    // purpose — the ensemble-transfer path's determinism and CI anchor.
    let mut sc = Scenario::standard(DataFamily::Cifar10Like, Partition::Iid, Tier::Tiny, 29);
    sc.set_device_count(5);
    sc.sim.rounds = 3;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Heterogeneous { seed: 29 },
        bandwidth: None,
        server_seconds: 1.0,
    });
    let scale = Scale::for_family(DataFamily::Cifar10Like, Tier::Tiny);
    sc.algorithm = Algo::FedEt {
        public: DataFamily::Cifar100Like,
        cfg: scale.fedet_config(DataFamily::Cifar10Like, Tier::Tiny),
    };
    sc
}

fn fedgkt_split() -> Scenario {
    // FedGKT on the CIFAR hetero zoo under label skew: devices keep small
    // feature extractors, ship per-sample feature/logit bundles uplink and
    // digest the server head's soft labels downlink. Seconds-scale on
    // purpose — the split-payload path's determinism and CI anchor.
    let mut sc = Scenario::standard(
        DataFamily::Cifar10Like,
        Partition::QuantitySkew { classes_per_device: 5 },
        Tier::Tiny,
        31,
    );
    sc.set_device_count(5);
    sc.sim.rounds = 3;
    let scale = Scale::for_family(DataFamily::Cifar10Like, Tier::Tiny);
    sc.algorithm = Algo::FedGkt(scale.fedgkt_config(Tier::Tiny));
    sc
}

fn mega_fleet() -> Scenario {
    // The lazy registry's acceptance anchor: one **million** registered
    // devices, ~1000 sampled per round, each holding one sample and a
    // micro-MLP. Lazy materialization keeps the resident fleet at the
    // sampled count, so the run completes in bounded memory; an eager run
    // of this description would build a million models up front.
    Scenario {
        name: "mega-fleet".into(),
        data: DataSpec {
            family: DataFamily::MnistLike,
            img: 4,
            train_n: 1_000_000,
            test_n: 64,
            classes: 0,
            noise_std: -1.0,
        },
        partition: Partition::Iid,
        zoo: vec![(ModelSpec::Mlp { hidden: 8 }, 1)],
        registered_devices: 1_000_000,
        resources: None,
        churn: None,
        algorithm: Algo::FedAvg(FedAvgConfig {
            local_epochs: 1,
            batch_size: 16,
            lr: 0.05,
            ..Default::default()
        }),
        sim: SimConfig {
            rounds: 2,
            participation: 0.001,
            eval_every: 0,
            seed: 21,
            materialization: Materialization::Lazy,
            ..Default::default()
        },
    }
}

fn paper_small() -> Scenario {
    Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Paper, 42)
}

fn paper_cifar() -> Scenario {
    Scenario::standard(DataFamily::Cifar10Like, Partition::Iid, Tier::Paper, 42)
}

/// The named-preset registry — the successor of the scattered
/// `FedZktConfig::paper_*` constructors and per-example setup blocks.
pub fn presets() -> Vec<Preset> {
    vec![
        Preset {
            name: "tiny",
            about: "seconds-scale MNIST/IID FedZKT smoke run (CI, determinism tests)",
            paper_scale: false,
            build: tiny,
        },
        Preset {
            name: "quickstart",
            about: "the smallest instructive FedZKT run: 5 devices, 5 architectures, MNIST-like IID",
            paper_scale: false,
            build: quickstart,
        },
        Preset {
            name: "noniid-dirichlet",
            about: "FASHION-like with Dirichlet(0.3) label skew and the Eq. 9 l2 regularizer",
            paper_scale: false,
            build: noniid_dirichlet,
        },
        Preset {
            name: "hetero-cifar",
            about: "ten devices, Models A-E, heterogeneous simulated hardware (SS IV-C2)",
            paper_scale: false,
            build: hetero_cifar,
        },
        Preset {
            name: "straggler",
            about: "participation 0.6 over a heterogeneous population (Figure 6 in miniature)",
            paper_scale: false,
            build: straggler,
        },
        Preset {
            name: "fedavg-lcd",
            about: "FedAvg baseline: every device on the lowest-common-denominator LeNet",
            paper_scale: false,
            build: fedavg_lcd,
        },
        Preset {
            name: "fedprox-noniid",
            about: "FedProx (mu=0.5) on Dirichlet(0.5) skew, homogeneous LeNet zoo",
            paper_scale: false,
            build: fedprox_noniid,
        },
        Preset {
            name: "fedmd-public",
            about: "FedMD baseline: MNIST-like private data, FASHION-like public corpus",
            paper_scale: false,
            build: fedmd_public,
        },
        Preset {
            name: "quant-uplink",
            about: "tiny MNIST run with int8-quantized payloads and smartphone links (codec CI anchor)",
            paper_scale: false,
            build: quant_uplink,
        },
        Preset {
            name: "lowband-straggler",
            about: "straggler run on 20 kB/s uplinks with top-k(0.25) sparsified payloads",
            paper_scale: false,
            build: lowband_straggler,
        },
        Preset {
            name: "churn-flash-crowd",
            about: "six devices arriving over three rounds and aging out (dynamic-fleet CI anchor)",
            paper_scale: false,
            build: churn_flash_crowd,
        },
        Preset {
            name: "churn-lossy",
            about: "25% mid-round dropout and wandering links over Q8-quantized payloads",
            paper_scale: false,
            build: churn_lossy,
        },
        Preset {
            name: "fedet-hetero",
            about: "Fed-ET: Models A-E ensemble into a MobileNet server via weighted-consensus distillation",
            paper_scale: false,
            build: fedet_hetero,
        },
        Preset {
            name: "fedgkt-split",
            about: "FedGKT: split training shipping per-sample features+logits up, soft labels down",
            paper_scale: false,
            build: fedgkt_split,
        },
        Preset {
            name: "mega-fleet",
            about: "one million registered devices, ~1k sampled/round, lazy materialization",
            paper_scale: false,
            build: mega_fleet,
        },
        Preset {
            name: "paper-small",
            about: "paper-scale small-dataset parameters (T=50, T_l=5, nD=200, batch 256)",
            paper_scale: true,
            build: paper_small,
        },
        Preset {
            name: "paper-cifar",
            about: "paper-scale CIFAR-10 parameters (T=100, T_l=10, nD=500, batch 256)",
            paper_scale: true,
            build: paper_cifar,
        },
    ]
}

/// Look up a preset scenario by name.
pub fn preset(name: &str) -> Option<Scenario> {
    presets().into_iter().find(|p| p.name == name).map(|p| p.scenario())
}

/// Resolve a CLI-style scenario reference: a preset name, or a path to a
/// scenario JSON file (anything containing a path separator or ending in
/// `.json` is treated as a path).
///
/// # Errors
/// [`ScenarioError::UnknownPreset`] for an unknown name; I/O and parse
/// errors for a file reference.
pub fn resolve(reference: &str) -> Result<Scenario, ScenarioError> {
    if reference.ends_with(".json") || reference.contains(std::path::MAIN_SEPARATOR) {
        Scenario::load(reference)
    } else {
        preset(reference).ok_or_else(|| ScenarioError::UnknownPreset(reference.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates() {
        for p in presets() {
            let sc = p.scenario();
            assert_eq!(sc.name, p.name);
            sc.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn preset_names_are_unique() {
        let mut names: Vec<&str> = presets().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets().len());
    }

    #[test]
    fn paper_presets_match_section_iv_a3() {
        let small = preset("paper-small").unwrap();
        let cfg = match &small.algorithm {
            Algo::FedZkt(cfg) => *cfg,
            other => panic!("paper-small runs {}", other.name()),
        };
        assert_eq!((small.sim.rounds, cfg.local_epochs, cfg.distill_iters), (50, 5, 200));
        assert_eq!(cfg.device_batch, 256);
        let cifar = preset("paper-cifar").unwrap();
        let cfg = match &cifar.algorithm {
            Algo::FedZkt(cfg) => *cfg,
            other => panic!("paper-cifar runs {}", other.name()),
        };
        assert_eq!((cifar.sim.rounds, cfg.local_epochs, cfg.distill_iters), (100, 10, 500));
        assert!((cfg.generator_lr - 1e-3).abs() < 1e-9);
        assert!((cfg.server_lr - 0.01).abs() < 1e-9);
    }

    #[test]
    fn standard_cifar_uses_the_cifar_zoo() {
        let sc = Scenario::standard(DataFamily::Cifar10Like, Partition::Iid, Tier::Tiny, 1);
        assert!(matches!(sc.zoo[0].0, ModelSpec::ShuffleNetV2 { .. }));
        assert_eq!(sc.devices(), 3);
        let m = sc.materialize().unwrap();
        assert_eq!(m.train.channels(), 3);
        assert_eq!(m.shards.len(), 3);
    }

    #[test]
    fn public_family_pairing_matches_table1() {
        assert_eq!(fedmd_public_family(DataFamily::MnistLike), DataFamily::FashionLike);
        assert_eq!(fedmd_public_family(DataFamily::FashionLike), DataFamily::MnistLike);
        assert_eq!(fedmd_public_family(DataFamily::KmnistLike), DataFamily::FashionLike);
        assert_eq!(fedmd_public_family(DataFamily::Cifar10Like), DataFamily::Cifar100Like);
    }

    #[test]
    fn set_device_count_recycles_the_zoo() {
        let mut sc = Scenario::standard(DataFamily::Cifar10Like, Partition::Iid, Tier::Quick, 1);
        sc.set_device_count(12);
        assert_eq!(sc.devices(), 12);
        assert_eq!(sc.zoo.len(), 5, "all five architectures stay represented");
        sc.set_device_count(2);
        assert_eq!(sc.devices(), 2);
        assert_eq!(sc.zoo.len(), 2);
    }
}
