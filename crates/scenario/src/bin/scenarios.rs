//! The `scenarios` CLI: list, describe, run, sweep and serve declarative
//! experiment scenarios.
//!
//! ```sh
//! scenarios list
//! scenarios describe quickstart [--json]
//! scenarios run tiny --out target/scenarios
//! scenarios run tiny --halt-at-round 1 --out target/ck   # kill mid-run…
//! scenarios run tiny --resume target/ck/tiny.ckpt --out target/ck  # …resume
//! scenarios sweep tiny --seeds 1,2 --participations 0.5,1 --out target/sweep
//! scenarios serve tiny --seeds 1,2,3,4 --out target/jobs   # durable queue
//! ```
//!
//! `run` and `sweep` write one `<name>.csv` + `<name>.json` artifact pair
//! per executed scenario. `sweep` expands the requested grid axes (seed,
//! Dirichlet β, quantity-skew c, participation p, device count K, zoo)
//! into child scenarios and executes them fleet-parallel on the workspace
//! worker pool (`fedzkt_tensor::par`); results are bit-identical for every
//! thread count.
//!
//! `serve` is the long-run form of `sweep`: the same grid expansion, but
//! the queue's state lives on disk in `--out`, so a killed process loses
//! at most `--checkpoint-every` rounds per in-flight cell. On restart it
//! skips cells whose `<name>.json` artifact already exists, resumes cells
//! with a `<name>.ckpt` snapshot from that exact round, and starts the
//! rest fresh; a cell that panics is isolated and reported without taking
//! down the queue.

use fedzkt_data::Partition;
use fedzkt_fl::{CodecSpec, ComputeFormat, Materialization, SimCheckpoint};
use fedzkt_scenario::{
    presets, resolve, standard_algorithm, standard_zoo, Scenario, ScenarioError,
};
use fedzkt_tensor::par;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Human-readable codec label for `describe` and cell tables.
fn codec_label(codec: &CodecSpec) -> String {
    match *codec {
        CodecSpec::TopK { density } => format!("topk(density {density})"),
        other => other.name().to_string(),
    }
}

const USAGE: &str = "\
usage: scenarios <subcommand> [options]

subcommands:
  list                           the preset registry
  describe <name|file> [--json]  summary (or canonical JSON) of a scenario
  run <name|file> [options]      execute one scenario
  sweep <name|file> [axes]       expand grid axes and execute fleet-parallel
  serve <name|file> [axes]       durable job queue over the expanded grid:
                                 skips finished cells, resumes half-done ones
                                 from their checkpoints, survives kills

run/sweep/serve options:
  --out DIR          artifact directory (default target/scenarios)
  --threads N        worker threads (0 = FEDZKT_THREADS / all cores)
  --seed N           override the scenario's master seed (run only)
  --codec C          override the wire codec: raw|q8|q4|topk[:density] (run only)
  --materialization M  override the fleet mode: eager|lazy (run only)
  --compute F        override the inference compute format: f32|int8 (run only)

run durability options:
  --checkpoint-every N  snapshot <out>/<name>.ckpt every N completed rounds
  --halt-at-round K     stop once K rounds are done, leaving a checkpoint
  --resume FILE         restore a checkpoint and run the remaining rounds

serve options:
  --checkpoint-every N  per-cell snapshot cadence in rounds (default 1)
  --stop-after N        exit after completing N cells (the queue state is on
                        disk; a later serve picks up the rest)

sweep/serve axes (comma-separated values; absent axes keep the base value):
  --seeds 1,2,3      master seeds
  --betas 0.1,0.5    Dirichlet concentration (conflicts with --cs)
  --cs 2,3,5         quantity-skew classes per device (conflicts with --betas)
  --participations 0.2,1.0
  --devices 5,10     device counts (re-cycles the zoo)
  --zoos small,cifar paper zoo families
  --algos fedzkt,fedmd,fedet,fedgkt   algorithms (also fedavg, fedprox),
                     each at its standard config for the cell's scale
  --codecs raw,q8,q4,topk:0.1   wire codecs
  --materializations eager,lazy   fleet materialization modes
  --computes f32,int8   inference compute formats
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("describe") => cmd_describe(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand \"{other}\"\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("scenarios: {message}");
            ExitCode::from(1)
        }
    }
}

fn cmd_list() -> Result<(), String> {
    println!("{:<18} {:<7} {:<8} description", "name", "scale", "algo");
    for preset in presets() {
        println!(
            "{:<18} {:<7} {:<8} {}",
            preset.name,
            if preset.paper_scale { "paper" } else { "quick" },
            preset.scenario().algorithm.name(),
            preset.about
        );
    }
    println!("\nrun one with: scenarios run <name>   (files work too: scenarios run scenarios/tiny.json)");
    Ok(())
}

fn load(reference: &str) -> Result<Scenario, String> {
    resolve(reference).map_err(|e| e.to_string())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let reference = args.first().ok_or("describe needs a scenario name or file")?;
    let scenario = load(reference)?;
    if args.iter().any(|a| a == "--json") {
        print!("{}", scenario.to_json());
        return Ok(());
    }
    scenario.validate().map_err(|e| e.to_string())?;
    println!("scenario:   {}", scenario.name);
    println!("algorithm:  {}", scenario.algorithm.name());
    println!(
        "data:       {} {}x{}px, {} train / {} test",
        scenario.data.family.name(),
        scenario.data.img,
        scenario.data.img,
        scenario.data.train_n,
        scenario.data.test_n
    );
    println!("partition:  {}", scenario.partition);
    match scenario.registered_devices {
        0 => println!("devices:    {}", scenario.devices()),
        n => println!(
            "devices:    {n} registered (zoo re-cycled), {} fleet",
            scenario.sim.materialization
        ),
    }
    for (spec, count) in &scenario.effective_zoo() {
        println!("  {:<22} x{count}", spec.name());
    }
    match &scenario.resources {
        Some(r) => {
            let links = match r.bandwidth {
                Some(bw) => {
                    format!(", links {}/{} B/s up/down", bw.up_bytes_per_sec, bw.down_bytes_per_sec)
                }
                None => String::new(),
            };
            println!(
                "resources:  attached (+{}s server time per round{links})",
                r.server_seconds
            );
        }
        None => println!("resources:  none (no simulated clock)"),
    }
    if let Some(churn) = &scenario.churn {
        println!(
            "churn:      arrival window {}, mean lifetime {} rounds, duty {}/{}, dropout {}, \
             bandwidth floor {} (seed {})",
            churn.arrival_window,
            churn.mean_lifetime,
            churn.duty_on,
            churn.duty_period,
            churn.dropout,
            churn.bandwidth_floor,
            churn.seed
        );
    }
    println!("codec:      {}", codec_label(&scenario.sim.codec));
    println!("compute:    {} (inference phases)", scenario.sim.compute.as_str());
    println!(
        "protocol:   {} rounds, participation {}, seed {}, threads {}, {} fleet",
        scenario.sim.rounds,
        scenario.sim.participation,
        scenario.sim.seed,
        scenario.sim.threads,
        scenario.sim.materialization
    );
    Ok(())
}

/// Shared `--out` / `--threads` / `--seed` parsing for run and sweep.
/// `threads`/`seed` stay `None` when not given, so the scenario file's own
/// values are only overridden when the user asks.
struct RunOptions {
    out_dir: PathBuf,
    threads: Option<usize>,
    seed: Option<u64>,
    codec: Option<CodecSpec>,
    materialization: Option<Materialization>,
    compute: Option<ComputeFormat>,
    checkpoint_every: Option<usize>,
    halt_at_round: Option<usize>,
    resume: Option<PathBuf>,
    stop_after: Option<usize>,
    rest: Vec<(String, String)>,
}

fn parse_options(args: &[String]) -> Result<RunOptions, String> {
    let mut opts = RunOptions {
        out_dir: PathBuf::from("target/scenarios"),
        threads: None,
        seed: None,
        codec: None,
        materialization: None,
        compute: None,
        checkpoint_every: None,
        halt_at_round: None,
        resume: None,
        stop_after: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?
            .clone();
        match flag.as_str() {
            "--out" => opts.out_dir = PathBuf::from(value),
            "--threads" => {
                opts.threads = Some(
                    value.parse().map_err(|_| format!("--threads: bad count \"{value}\""))?,
                );
            }
            "--seed" => {
                opts.seed =
                    Some(value.parse().map_err(|_| format!("--seed: bad seed \"{value}\""))?);
            }
            "--codec" => {
                opts.codec = Some(CodecSpec::parse(&value).map_err(|e| format!("--codec: {e}"))?);
            }
            "--materialization" => {
                opts.materialization = Some(
                    Materialization::parse(&value).map_err(|e| format!("--materialization: {e}"))?,
                );
            }
            "--compute" => {
                opts.compute = Some(ComputeFormat::parse(&value).ok_or_else(|| {
                    format!("--compute: unknown compute format \"{value}\" (f32|int8)")
                })?);
            }
            "--checkpoint-every" => {
                let every: usize = value
                    .parse()
                    .map_err(|_| format!("--checkpoint-every: bad round count \"{value}\""))?;
                if every == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                opts.checkpoint_every = Some(every);
            }
            "--halt-at-round" => {
                opts.halt_at_round = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--halt-at-round: bad round count \"{value}\""))?,
                );
            }
            "--resume" => opts.resume = Some(PathBuf::from(value)),
            "--stop-after" => {
                opts.stop_after = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--stop-after: bad cell count \"{value}\""))?,
                );
            }
            other => opts.rest.push((other.to_string(), value)),
        }
    }
    Ok(opts)
}

fn write_artifacts(log: &fedzkt_fl::RunLog, dir: &PathBuf, name: &str) -> Result<(), String> {
    log.write_artifacts(dir, name)
        .map_err(|e| format!("writing artifacts for {name}: {e}"))?;
    println!("  [artifacts] {}/{name}.{{csv,json}}", dir.display());
    Ok(())
}

/// The checkpoint file a run or serve cell writes for a scenario.
fn checkpoint_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.ckpt"))
}

fn save_checkpoint(ck: &SimCheckpoint, path: &Path) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    ck.save(path).map_err(|e| format!("writing {}: {e}", path.display()))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let reference = args.first().ok_or("run needs a scenario name or file")?;
    let mut scenario = load(reference)?;
    let opts = parse_options(&args[1..])?;
    if let Some((flag, _)) = opts.rest.first() {
        return Err(format!("unknown flag {flag} for run"));
    }
    if opts.stop_after.is_some() {
        return Err("--stop-after is a serve option".into());
    }
    if let Some(threads) = opts.threads {
        scenario.sim.threads = threads;
    }
    if let Some(seed) = opts.seed {
        scenario.sim.seed = seed;
    }
    if let Some(codec) = opts.codec {
        scenario.sim.codec = codec;
    }
    if let Some(materialization) = opts.materialization {
        scenario.sim.materialization = materialization;
    }
    if let Some(compute) = opts.compute {
        scenario.sim.compute = compute;
    }
    println!(
        "running {} ({}, {} rounds, seed {}, codec {}, {} fleet, {} compute)",
        scenario.name,
        scenario.algorithm.name(),
        scenario.sim.rounds,
        scenario.sim.seed,
        codec_label(&scenario.sim.codec),
        scenario.sim.materialization,
        scenario.sim.compute.as_str()
    );
    let mut sim = scenario.build().map_err(|e| e.to_string())?;
    if let Some(path) = &opts.resume {
        let ck = SimCheckpoint::load(path)
            .map_err(|e| format!("loading {}: {e}", path.display()))?;
        sim.resume_from(&ck)
            .map_err(|e| format!("{}: checkpoint does not fit this scenario: {e}", path.display()))?;
        println!("resumed from {} ({} rounds already done)", path.display(), ck.rounds_done);
    }
    let total = scenario.sim.rounds;
    let halt = opts.halt_at_round.map_or(total, |k| k.min(total));
    let ckpt = checkpoint_path(&opts.out_dir, &scenario.name);
    println!("{:>6} {:>9} {:>11} {:>12} {:>10}", "round", "avg-acc", "train-loss", "uplink-KiB", "sim-time");
    for round in sim.log().rounds.len()..halt {
        let m = sim.round(round);
        println!(
            "{:>6} {:>8.1}% {:>11.4} {:>12.1} {:>9.0}s",
            m.round,
            100.0 * m.avg_device_accuracy,
            m.train_loss,
            m.upload_bytes as f64 / 1024.0,
            m.sim_seconds
        );
        if let Some(every) = opts.checkpoint_every {
            if (round + 1).is_multiple_of(every) {
                save_checkpoint(&sim.checkpoint(), &ckpt)?;
                println!("  [checkpoint] {} ({} rounds)", ckpt.display(), round + 1);
            }
        }
    }
    if halt < total {
        // A deliberate mid-run stop always leaves a snapshot, whether or
        // not a periodic cadence was requested.
        save_checkpoint(&sim.checkpoint(), &ckpt)?;
        println!(
            "halted after {halt} of {total} rounds; resume with: scenarios run {reference} \
             --resume {} --out {}",
            ckpt.display(),
            opts.out_dir.display()
        );
        return Ok(());
    }
    let log = sim.log().clone();
    println!("final average device accuracy: {:.2}%", 100.0 * log.final_accuracy());
    write_artifacts(&log, &opts.out_dir, &scenario.name)?;
    // The run is complete: its snapshot has nothing left to resume.
    let _ = std::fs::remove_file(&ckpt);
    Ok(())
}

fn parse_list<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<Vec<T>, String> {
    raw.split(',')
        .map(|item| item.trim().parse().map_err(|_| format!("{flag}: bad value \"{item}\"")))
        .collect()
}

/// Expand one axis: every scenario in `cells` crossed with every value.
fn expand<T: Clone>(
    cells: Vec<Scenario>,
    values: &[T],
    suffix: impl Fn(&T) -> String,
    apply: impl Fn(&mut Scenario, &T),
) -> Vec<Scenario> {
    if values.is_empty() {
        return cells;
    }
    let mut out = Vec::with_capacity(cells.len() * values.len());
    for cell in cells {
        for value in values {
            let mut child = cell.clone();
            apply(&mut child, value);
            child.name = format!("{}_{}", child.name, suffix(value));
            out.push(child);
        }
    }
    out
}

/// Reject the run-only overrides for the grid subcommands (sweep/serve),
/// which spell the same intents as axes.
fn reject_run_only(opts: &RunOptions, gridcmd: &str) -> Result<(), String> {
    if opts.seed.is_some() {
        return Err(format!("--seed is a run option; {gridcmd} over seeds with --seeds a,b,c"));
    }
    if opts.codec.is_some() {
        return Err(format!("--codec is a run option; {gridcmd} over codecs with --codecs a,b,c"));
    }
    if opts.materialization.is_some() {
        return Err(format!(
            "--materialization is a run option; {gridcmd} over modes with --materializations a,b"
        ));
    }
    if opts.compute.is_some() {
        return Err(format!("--compute is a run option; {gridcmd} over formats with --computes a,b"));
    }
    if opts.halt_at_round.is_some() || opts.resume.is_some() {
        return Err(format!(
            "--halt-at-round/--resume are run options; {gridcmd} manages per-cell checkpoints \
             itself"
        ));
    }
    Ok(())
}

/// Expand the grid axes in `rest` over `base` — the one cell-expansion
/// shared by `sweep` and `serve` — and validate every cell up front: a
/// typo in one axis value should fail fast, not after the other cells
/// have burned compute.
fn expand_cells(base: Scenario, rest: &[(String, String)]) -> Result<Vec<Scenario>, String> {
    let mut seeds: Vec<u64> = Vec::new();
    let mut betas: Vec<f32> = Vec::new();
    let mut cs: Vec<usize> = Vec::new();
    let mut participations: Vec<f32> = Vec::new();
    let mut devices: Vec<usize> = Vec::new();
    let mut zoos: Vec<String> = Vec::new();
    let mut algos: Vec<String> = Vec::new();
    let mut codecs: Vec<CodecSpec> = Vec::new();
    let mut materializations: Vec<Materialization> = Vec::new();
    let mut computes: Vec<ComputeFormat> = Vec::new();
    for (flag, value) in rest {
        match flag.as_str() {
            "--seeds" => seeds = parse_list(flag, value)?,
            "--betas" => betas = parse_list(flag, value)?,
            "--cs" => cs = parse_list(flag, value)?,
            "--participations" => participations = parse_list(flag, value)?,
            "--devices" => devices = parse_list(flag, value)?,
            "--zoos" => zoos = parse_list(flag, value)?,
            "--algos" => algos = parse_list(flag, value)?,
            "--codecs" => {
                codecs = value
                    .split(',')
                    .map(|item| CodecSpec::parse(item.trim()).map_err(|e| format!("--codecs: {e}")))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--materializations" => {
                materializations = value
                    .split(',')
                    .map(|item| {
                        Materialization::parse(item.trim())
                            .map_err(|e| format!("--materializations: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--computes" => {
                computes = value
                    .split(',')
                    .map(|item| {
                        ComputeFormat::parse(item.trim()).ok_or_else(|| {
                            format!("--computes: unknown compute format \"{item}\" (f32|int8)")
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(format!("unknown sweep axis {other}\n{USAGE}")),
        }
    }
    if !betas.is_empty() && !cs.is_empty() {
        return Err("--betas and --cs both redefine the partition; sweep one at a time".into());
    }
    for algo in &algos {
        if standard_algorithm(&base, algo).is_none() {
            return Err(format!(
                "--algos: unknown algorithm \"{algo}\" \
                 (fedzkt|fedavg|fedprox|fedmd|fedet|fedgkt)"
            ));
        }
    }

    let mut cells = vec![base];
    cells = expand(cells, &seeds, |s| format!("s{s}"), |sc, &s| sc.sim.seed = s);
    cells = expand(
        cells,
        &betas,
        |b| format!("b{b}"),
        |sc, &beta| sc.partition = Partition::Dirichlet { beta },
    );
    cells = expand(
        cells,
        &cs,
        |c| format!("c{c}"),
        |sc, &c| sc.partition = Partition::QuantitySkew { classes_per_device: c },
    );
    cells = expand(
        cells,
        &participations,
        |p| format!("p{p}"),
        |sc, &p| sc.sim.participation = p,
    );
    cells = expand(cells, &devices, |k| format!("k{k}"), |sc, &k| sc.set_device_count(k));
    cells = expand(
        cells,
        &zoos,
        |z| format!("z{z}"),
        |sc, zoo| {
            let family = match zoo.as_str() {
                "cifar" => fedzkt_data::DataFamily::Cifar10Like,
                _ => fedzkt_data::DataFamily::MnistLike,
            };
            sc.zoo = standard_zoo(family, sc.devices());
        },
    );
    cells = expand(
        cells,
        &algos,
        |a| format!("a{a}"),
        |sc, algo| {
            // Unknown names were rejected above, before any expansion.
            if let Some(algorithm) = standard_algorithm(sc, algo) {
                sc.algorithm = algorithm;
            }
        },
    );
    cells = expand(
        cells,
        &codecs,
        |codec| {
            // File-safe suffix (the cell name becomes the artifact name).
            match *codec {
                CodecSpec::TopK { density } => format!("ctopk{density}"),
                other => format!("c{}", other.name()),
            }
        },
        |sc, &codec| sc.sim.codec = codec,
    );
    cells = expand(
        cells,
        &materializations,
        |m| format!("m{m}"),
        |sc, &m| sc.sim.materialization = m,
    );
    cells = expand(
        cells,
        &computes,
        |f| format!("f{}", f.as_str()),
        |sc, &f| sc.sim.compute = f,
    );
    for zoo in &zoos {
        if zoo != "small" && zoo != "cifar" {
            return Err(format!("--zoos: unknown zoo \"{zoo}\" (small|cifar)"));
        }
    }
    for cell in &mut cells {
        cell.sim.threads = 1; // fleet-level parallelism owns the workers
        cell.validate().map_err(|e| format!("cell {}: {e}", cell.name))?;
    }
    Ok(cells)
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let reference = args.first().ok_or("sweep needs a scenario name or file")?;
    let base = load(reference)?;
    let opts = parse_options(&args[1..])?;
    reject_run_only(&opts, "sweep")?;
    if opts.checkpoint_every.is_some() || opts.stop_after.is_some() {
        return Err(
            "--checkpoint-every/--stop-after are serve options; sweep runs the grid in one shot"
                .into(),
        );
    }
    let cells = expand_cells(base, &opts.rest)?;

    let workers = par::resolve_threads(opts.threads.unwrap_or(0));
    println!(
        "sweep: {} cells from \"{}\", {} worker thread(s)",
        cells.len(),
        reference,
        workers
    );
    let results: Vec<Result<fedzkt_fl::RunLog, ScenarioError>> =
        par::map_indexed(cells.len(), workers, |i| cells[i].run());

    // A failed cell (e.g. a partition that only turns out impossible for
    // the realized labels) must not discard the rest of the grid: write
    // every successful cell's artifacts and the summary first, then report
    // the failures.
    let mut summary = String::from(
        "cell,algorithm,codec,compute,rounds,final_accuracy,best_accuracy,upload_bytes,download_bytes,sim_seconds,error\n",
    );
    let mut failures = Vec::new();
    println!("{:<44} {:>10} {:>10} {:>12}", "cell", "final", "best", "uplink-KiB");
    for (cell, result) in cells.iter().zip(results) {
        match result {
            Ok(log) => {
                let upload: u64 = log.rounds.iter().map(|r| r.upload_bytes).sum();
                let download: u64 = log.rounds.iter().map(|r| r.download_bytes).sum();
                let sim_seconds: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
                println!(
                    "{:<44} {:>9.2}% {:>9.2}% {:>12.1}",
                    cell.name,
                    100.0 * log.final_accuracy(),
                    100.0 * log.best_accuracy(),
                    upload as f64 / 1024.0
                );
                summary.push_str(&format!(
                    "{},{},{},{},{},{:.4},{:.4},{},{},{:.2},\n",
                    cell.name,
                    cell.algorithm.name(),
                    codec_label(&cell.sim.codec),
                    cell.sim.compute.as_str(),
                    log.rounds.len(),
                    log.final_accuracy(),
                    log.best_accuracy(),
                    upload,
                    download,
                    sim_seconds
                ));
                // An artifact I/O error for one cell (disk full, permission
                // flip) is a failure of that cell, not of the whole sweep.
                if let Err(e) = write_artifacts(&log, &opts.out_dir, &cell.name) {
                    failures.push(format!("{}: {e}", cell.name));
                }
            }
            Err(e) => {
                println!("{:<44} {:>10} {:>10} {:>12}", cell.name, "FAILED", "", "");
                summary.push_str(&format!(
                    "{},{},{},{},0,,,,,,\"{e}\"\n",
                    cell.name,
                    cell.algorithm.name(),
                    codec_label(&cell.sim.codec),
                    cell.sim.compute.as_str(),
                ));
                failures.push(format!("{}: {e}", cell.name));
            }
        }
    }
    // The summary must land even when every cell failed (write_artifacts,
    // which normally creates the directory, never ran in that case).
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("creating {}: {e}", opts.out_dir.display()))?;
    let summary_path = opts.out_dir.join("sweep_summary.csv");
    std::fs::write(&summary_path, summary).map_err(|e| format!("writing sweep summary: {e}"))?;
    println!("  [summary] {}", summary_path.display());
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} of {} cells failed:\n  {}", failures.len(), cells.len(), failures.join("\n  ")))
    }
}

/// How a serve cell stands, derived entirely from the artifact directory —
/// the queue has no state file to corrupt or lose.
enum CellStatus {
    /// `<name>.json` artifact present: nothing to do.
    Done,
    /// `<name>.ckpt` present: continue from its round.
    Resumable,
    /// Neither: start from round 0.
    Fresh,
}

fn cell_status(dir: &Path, name: &str) -> CellStatus {
    if dir.join(format!("{name}.json")).exists() {
        CellStatus::Done
    } else if checkpoint_path(dir, name).exists() {
        CellStatus::Resumable
    } else {
        CellStatus::Fresh
    }
}

/// Execute one serve cell to completion: build, resume from its snapshot
/// when one fits, checkpoint every `every` rounds, and write the final
/// artifacts (dropping the snapshot) on success. Returns a one-line
/// completion summary.
fn serve_cell(cell: &Scenario, dir: &Path, every: usize) -> Result<String, String> {
    let mut sim = cell.build().map_err(|e| e.to_string())?;
    let ckpt = checkpoint_path(dir, &cell.name);
    let mut resumed = 0;
    if ckpt.exists() {
        // A snapshot that fails to load or fit (schema drift, an edited
        // scenario reusing a cell name) falls back to a fresh start — a
        // stale file must not wedge the queue forever.
        match SimCheckpoint::load(&ckpt).map_err(|e| e.to_string()).and_then(|ck| {
            sim.resume_from(&ck).map(|()| ck.rounds_done)
        }) {
            Ok(rounds) => resumed = rounds,
            Err(e) => {
                eprintln!("  [{}] discarding stale checkpoint: {e}", cell.name);
                sim = cell.build().map_err(|e| e.to_string())?;
            }
        }
    }
    let total = cell.sim.rounds;
    for round in sim.log().rounds.len()..total {
        sim.round(round);
        let done = round + 1;
        if done < total && done.is_multiple_of(every) {
            save_checkpoint(&sim.checkpoint(), &ckpt)?;
        }
    }
    let log = sim.log().clone();
    log.write_artifacts(dir, &cell.name)
        .map_err(|e| format!("writing artifacts for {}: {e}", cell.name))?;
    let _ = std::fs::remove_file(&ckpt);
    Ok(format!(
        "{}: {:.2}% final accuracy ({} rounds, {} resumed)",
        cell.name,
        100.0 * log.final_accuracy(),
        total,
        resumed
    ))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let reference = args.first().ok_or("serve needs a scenario name or file")?;
    let base = load(reference)?;
    let opts = parse_options(&args[1..])?;
    reject_run_only(&opts, "serve")?;
    let cells = expand_cells(base, &opts.rest)?;
    let every = opts.checkpoint_every.unwrap_or(1);
    let dir = opts.out_dir.clone();
    std::fs::create_dir_all(&dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;

    let mut done = 0;
    let mut resuming = 0;
    let mut pending: Vec<&Scenario> = Vec::new();
    for cell in &cells {
        match cell_status(&dir, &cell.name) {
            CellStatus::Done => done += 1,
            CellStatus::Resumable => {
                resuming += 1;
                pending.push(cell);
            }
            CellStatus::Fresh => pending.push(cell),
        }
    }
    let fresh = pending.len() - resuming;
    let deferred = match opts.stop_after {
        Some(limit) if pending.len() > limit => pending.split_off(limit).len(),
        _ => 0,
    };
    println!(
        "serve: {} cells from \"{}\" ({} already done, {} resuming, {} fresh, {} deferred)",
        cells.len(),
        reference,
        done,
        resuming,
        fresh,
        deferred
    );
    if pending.is_empty() {
        println!("queue drained: artifacts in {}", dir.display());
        return Ok(());
    }

    let workers = par::resolve_threads(opts.threads.unwrap_or(0));
    let results: Vec<Result<String, String>> =
        par::map_indexed(pending.len(), workers, |i| {
            // Per-cell crash isolation: one diverged or buggy cell is a
            // reported failure, not the end of the queue (the worker
            // never unwinds into the pool).
            let cell = pending[i];
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serve_cell(cell, &dir, every)
            }))
            .unwrap_or_else(|panic| {
                let message = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".into());
                Err(format!("panicked: {message}"))
            })
        });

    let mut failures = Vec::new();
    for (cell, result) in pending.iter().zip(results) {
        match result {
            Ok(summary) => println!("  [done] {summary}"),
            Err(e) => {
                println!("  [FAILED] {}: {e}", cell.name);
                failures.push(format!("{}: {e}", cell.name));
            }
        }
    }
    if deferred > 0 {
        println!(
            "{deferred} cell(s) deferred by --stop-after; run serve again to continue"
        );
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} attempted cells failed:\n  {}",
            failures.len(),
            pending.len(),
            failures.join("\n  ")
        ))
    }
}
