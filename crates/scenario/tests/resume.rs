//! Checkpoint/resume equivalence at the scenario level: a run killed
//! after *any* round and resumed from its serialized checkpoint must
//! finish with a `RunLog` bit-identical to the uninterrupted run.
//!
//! This is the durability guarantee the `scenarios run --halt-at-round /
//! --resume` flags and the `scenarios serve` queue stand on, exercised
//! through the same algorithm-erased interface the CLI uses — for a
//! static fleet (`tiny`) and a dynamic one (`churn-lossy`, which adds
//! mid-round dropout and wandering links on top of the quantized wire
//! path). Checkpoints cross a JSON round-trip on the way, so the
//! serialized form — not just the in-memory struct — carries the full
//! simulation state.

use fedzkt_fl::SimCheckpoint;
use fedzkt_scenario::preset;

fn assert_resume_equivalence(name: &str) {
    let scenario = preset(name).unwrap_or_else(|| panic!("preset {name} exists"));
    let rounds = scenario.sim.rounds;

    let mut reference = scenario.build().expect("reference build");
    reference.run();
    let reference_json = reference.log().to_json();

    // Kill after round k, for every k — including k = 0, a checkpoint
    // taken before any training at all.
    for k in 0..rounds {
        let mut first = scenario.build().expect("first life builds");
        for round in 0..k {
            first.round(round);
        }
        let wire = first.checkpoint().to_json();
        let ck = SimCheckpoint::from_json(&wire)
            .unwrap_or_else(|e| panic!("{name}: checkpoint at round {k} re-parses: {e}"));
        assert_eq!(ck.rounds_done, k);

        let mut second = scenario.build().expect("second life builds");
        second
            .resume_from(&ck)
            .unwrap_or_else(|e| panic!("{name}: resume at round {k} accepted: {e}"));
        second.run();
        assert_eq!(
            second.log().to_json(),
            reference_json,
            "{name}: resume after round {k} diverged from the uninterrupted run"
        );
    }
}

#[test]
fn tiny_resumes_bit_identically_from_every_round() {
    assert_resume_equivalence("tiny");
}

#[test]
fn churn_lossy_resumes_bit_identically_from_every_round() {
    assert_resume_equivalence("churn-lossy");
}

#[test]
fn fedet_hetero_resumes_bit_identically_from_every_round() {
    // Fed-ET's checkpoint carries the server model next to the device
    // ensemble; a resumed run must re-enter the consensus-distillation
    // loop exactly where the first life left it.
    assert_resume_equivalence("fedet-hetero");
}

#[test]
fn fedgkt_split_resumes_bit_identically_from_every_round() {
    // FedGKT is the interesting case: its cross-round state includes the
    // per-device soft labels the server downlinked (consumed one round
    // later), so a kill between downlink and digest must not lose them.
    assert_resume_equivalence("fedgkt-split");
}

#[test]
fn checkpoints_from_a_different_scenario_are_rejected() {
    let tiny = preset("tiny").unwrap();
    let other = preset("churn-lossy").unwrap();
    let ck = other.build().expect("builds").checkpoint();
    let mut sim = tiny.build().expect("builds");
    let err = sim.resume_from(&ck).expect_err("foreign checkpoint must not load");
    assert!(!err.is_empty(), "rejection carries a reason");
}
