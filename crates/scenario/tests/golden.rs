//! Golden-file tests for the checked-in `scenarios/*.json` presets.
//!
//! Each file must (a) parse, (b) re-serialize to the exact bytes on disk
//! (the canonical form is the golden form), (c) match the registry preset
//! of the same name, and (d) validate. Together these fail the build on
//! any schema or registry drift; regenerate a file with
//! `scenarios describe <name> --json > scenarios/<name>.json` after an
//! intentional change.

use fedzkt_scenario::{preset, presets, Scenario};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn golden_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists at the workspace root")
        .filter_map(|entry| {
            let path = entry.expect("readable directory entry").path();
            (path.extension().is_some_and(|e| e == "json")).then_some(path)
        })
        .collect();
    files.sort();
    files
}

#[test]
fn golden_files_roundtrip_bit_identically() {
    let files = golden_files();
    assert!(!files.is_empty(), "no checked-in scenario files found");
    for path in files {
        let on_disk = std::fs::read_to_string(&path).expect("readable scenario file");
        let parsed = Scenario::from_json(&on_disk)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            parsed.to_json(),
            on_disk,
            "{}: re-serialization is not bit-identical; regenerate with \
             `scenarios describe {} --json`",
            path.display(),
            parsed.name,
        );
        parsed.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }
}

#[test]
fn golden_files_match_the_registry() {
    // Every preset has a golden file and every golden file has a preset —
    // the two sources of truth cannot drift apart silently.
    let files = golden_files();
    assert_eq!(
        files.len(),
        presets().len(),
        "scenarios/ and the preset registry disagree on entry count"
    );
    for path in files {
        let on_disk = std::fs::read_to_string(&path).expect("readable scenario file");
        let parsed = Scenario::from_json(&on_disk).expect("golden file parses");
        let registered = preset(&parsed.name).unwrap_or_else(|| {
            panic!("{}: no preset named \"{}\" in the registry", path.display(), parsed.name)
        });
        assert_eq!(registered, parsed, "{}", path.display());
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(parsed.name.as_str()),
            "file name and scenario name must agree"
        );
    }
}
