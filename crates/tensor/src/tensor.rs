//! The [`Tensor`] type: an owned, contiguous, row-major `f32` array.

use crate::rng::{standard_normal, Prng};
use crate::shape::{numel, same_shape, strides};
use crate::{Result, TensorError};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the value type flowing through the whole FedZKT stack: model
/// parameters, activations, gradients, images and logits are all `Tensor`s.
/// Images follow the NCHW convention `[batch, channels, height, width]`.
///
/// The representation is a flat `Vec<f32>` plus a shape; all views are
/// copying (there is no stride/offset aliasing), which keeps the autograd
/// tape trivially correct at the cost of some redundant copies — an explicit
/// design choice for a CPU-scale research codebase.
///
/// ```
/// use fedzkt_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", .." } else { "" };
        write!(f, "Tensor{:?} {:?}{}", self.shape, preview, ellipsis)
    }
}

impl Default for Tensor {
    /// The default tensor is the scalar `0.0`.
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Build a tensor from raw data and a shape.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected = numel(shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { expected, actual: data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data })
    }

    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; numel(shape)] }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![value; numel(shape)] }
    }

    /// A 0-dimensional tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { shape: vec![], data: vec![value] }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Standard-normal samples with the given shape.
    pub fn randn(shape: &[usize], rng: &mut Prng) -> Self {
        let data = (0..numel(shape)).map(|_| standard_normal(rng)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Uniform samples in `[lo, hi)` with the given shape.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Prng) -> Self {
        let data = (0..numel(shape)).map(|_| rng.random::<f32>() * (hi - lo) + lo).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape (dimension extents, outermost first).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (some dimension is zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing data in row-major order.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert!(self.data.len() == 1, "item() on tensor with {} elements", self.data.len());
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Set the element at a multi-dimensional index.
    ///
    /// # Errors
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is invalid.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len()
            || index.iter().zip(&self.shape).any(|(i, s)| i >= s)
        {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let st = strides(&self.shape);
        Ok(index.iter().zip(&st).map(|(i, s)| i * s).sum())
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret the tensor with a new shape of equal volume.
    ///
    /// # Errors
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let expected = numel(shape);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { expected, actual: self.data.len() });
        }
        Ok(Tensor { shape: shape.to_vec(), data: self.data.clone() })
    }

    /// Flatten to one dimension.
    pub fn flatten(&self) -> Self {
        Tensor { shape: vec![self.data.len()], data: self.data.clone() }
    }

    /// Transpose a 2-D tensor.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose2d(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.ndim() });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(out, &[c, r])
    }

    /// Copy rows `start..end` along the first dimension.
    ///
    /// Works for any rank ≥ 1; for NCHW image batches this slices samples.
    ///
    /// # Errors
    /// Returns an error when the range is invalid or the tensor is a scalar.
    pub fn slice_first(&self, start: usize, end: usize) -> Result<Self> {
        if self.shape.is_empty() {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        if start > end || end > self.shape[0] {
            return Err(TensorError::InvalidArgument(format!(
                "slice {start}..{end} out of range for first dim {}",
                self.shape[0]
            )));
        }
        let row = self.data.len() / self.shape[0].max(1);
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::from_vec(self.data[start * row..end * row].to_vec(), &shape)
    }

    /// Gather rows along the first dimension by index.
    ///
    /// # Errors
    /// Returns an error when any index is out of bounds or the tensor is a
    /// scalar.
    pub fn gather_first(&self, indices: &[usize]) -> Result<Self> {
        if self.shape.is_empty() {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let n = self.shape[0];
        let row = self.data.len().checked_div(n).unwrap_or(0);
        let mut data = Vec::with_capacity(indices.len() * row);
        for &i in indices {
            if i >= n {
                return Err(TensorError::IndexOutOfBounds {
                    index: vec![i],
                    shape: self.shape.clone(),
                });
            }
            data.extend_from_slice(&self.data[i * row..(i + 1) * row]);
        }
        let mut shape = self.shape.clone();
        shape[0] = indices.len();
        Tensor::from_vec(data, &shape)
    }

    /// Concatenate tensors along the first dimension.
    ///
    /// # Errors
    /// Returns an error when the input list is empty or trailing shapes
    /// disagree.
    pub fn concat_first(parts: &[&Tensor]) -> Result<Self> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
        if first.shape.is_empty() {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let tail = &first.shape[1..];
        let mut n = 0usize;
        for p in parts {
            if p.shape.is_empty() || &p.shape[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            n += p.shape[0];
        }
        let mut data = Vec::with_capacity(n * numel(tail));
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        let mut shape = first.shape.clone();
        shape[0] = n;
        Tensor::from_vec(data, &shape)
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Apply `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combine two same-shaped tensors elementwise.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        same_shape(&self.shape, &rhs.shape)?;
        let data = self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Elementwise sum. See [`Tensor::zip_map`] for error behaviour.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_map(rhs, |a, b| a + b)
    }

    /// Elementwise difference. See [`Tensor::zip_map`] for error behaviour.
    pub fn sub(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_map(rhs, |a, b| a - b)
    }

    /// Elementwise product. See [`Tensor::zip_map`] for error behaviour.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_map(rhs, |a, b| a * b)
    }

    /// Elementwise quotient. See [`Tensor::zip_map`] for error behaviour.
    pub fn div(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_map(rhs, |a, b| a / b)
    }

    /// Add `rhs * scale` into `self` in place (axpy). Shapes must match.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled_inplace(&mut self, rhs: &Tensor, scale: f32) -> Result<()> {
        same_shape(&self.shape, &rhs.shape)?;
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * scale;
        }
        Ok(())
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Multiply every element by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Add a bias vector over the last dimension: `[.., D] + [D]`.
    ///
    /// # Errors
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not `[D]`.
    pub fn add_bias(&self, bias: &Tensor) -> Result<Self> {
        crate::shape::broadcastable_bias(&self.shape, &bias.shape)?;
        let d = bias.data.len();
        let mut out = self.data.clone();
        for (i, x) in out.iter_mut().enumerate() {
            *x += bias.data[i % d];
        }
        Ok(Tensor { shape: self.shape.clone(), data: out })
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for empty tensors).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// ℓ1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// ℓ2 (Euclidean) norm.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Column sums of a 2-D tensor: `[N, D] -> [D]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.ndim() });
        }
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; d];
        for i in 0..n {
            for (j, acc) in out.iter_mut().enumerate() {
                *acc += self.data[i * d + j];
            }
        }
        Tensor::from_vec(out, &[d])
    }

    /// Per-row argmax of a 2-D tensor (predicted class of each sample).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.ndim() });
        }
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = &self.data[i * d..(i + 1) * d];
            let mut best = 0usize;
            for j in 1..d {
                if row[j] > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Row-wise softmax of a 2-D tensor (numerically stabilised).
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn softmax_rows(&self) -> Result<Self> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.ndim() });
        }
        let (n, d) = (self.shape[0], self.shape[1]);
        let mut out = self.data.clone();
        for i in 0..n {
            let row = &mut out[i * d..(i + 1) * d];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - m).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        Tensor::from_vec(out, &[n, d])
    }

    /// True when every element is finite (no NaN/∞) — used by failure-
    /// injection tests and training-loop debug assertions.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 3]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(2.5);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.item(), 2.5);
    }

    #[test]
    fn eye_matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let c = a.matmul(&Tensor::eye(2)).unwrap();
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn indexing() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[2, 3, 4]).unwrap();
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 23.0);
        assert_eq!(t.at(&[0, 1, 2]).unwrap(), 6.0);
        assert!(t.at(&[2, 0, 0]).is_err());
        assert!(t.at(&[0, 0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let mut rng = seeded_rng(1);
        let t = Tensor::randn(&[3, 5], &mut rng);
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn slice_and_concat_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[4, 2, 3]).unwrap();
        let a = t.slice_first(0, 2).unwrap();
        let b = t.slice_first(2, 4).unwrap();
        let back = Tensor::concat_first(&[&a, &b]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn gather_first_selects_rows() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[3, 2]).unwrap();
        let g = t.gather_first(&[2, 0]).unwrap();
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert!(t.gather_first(&[3]).is_err());
    }

    #[test]
    fn bias_broadcast() {
        let x = Tensor::zeros(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_bias(&b).unwrap();
        assert_eq!(y.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let mut rng = seeded_rng(2);
        let t = Tensor::randn(&[5, 7], &mut rng);
        let s = t.softmax_rows().unwrap();
        for i in 0..5 {
            let row_sum: f32 = s.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
            assert!(s.data()[i * 7..(i + 1) * 7].iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = t.softmax_rows().unwrap();
        assert!(s.all_finite());
        assert!((s.data()[0] + s.data()[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5, 0.2, 0.3, 0.1], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 1]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]).unwrap();
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.norm_l1(), 10.0);
        assert!((t.norm_l2() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_columns() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.sum_rows().unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_scaled_inplace_is_axpy() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.add_scaled_inplace(&b, -0.5).unwrap();
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn serde_roundtrip() {
        // Uses the `PartialEq` + serde derives; exercised with a simple
        // hand-rolled binary check via bincode-like manual encode is out of
        // scope, so we go through serde's test-friendly JSON-less path:
        // Serialize into serde_value is unavailable offline; instead check
        // Clone + PartialEq semantics.
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let u = t.clone();
        assert_eq!(t, u);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn default_is_scalar_zero() {
        let t = Tensor::default();
        assert_eq!(t.item(), 0.0);
    }
}
