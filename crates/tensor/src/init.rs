//! Weight initialisation schemes.
//!
//! The FedZKT paper initialises all models with Glorot (Xavier)
//! initialisation (footnote 1 of Algorithm 1, citing Glorot & Bengio 2010);
//! Kaiming is provided for the ReLU-heavy generator.

use crate::rng::Prng;
use crate::Tensor;

/// An initialisation scheme for weight tensors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Glorot/Xavier uniform: `U(±sqrt(6 / (fan_in + fan_out)))` — the
    /// scheme the paper prescribes for every model.
    GlorotUniform,
    /// Kaiming/He uniform: `U(±sqrt(6 / fan_in))`, suited to ReLU nets.
    KaimingUniform,
    /// All zeros (bias default).
    Zeros,
    /// All ones (BatchNorm scale default).
    Ones,
    /// Normal with the given standard deviation.
    Normal(f32),
}

impl Init {
    /// Materialise a tensor of `shape` using this scheme.
    ///
    /// `fan_in`/`fan_out` are ignored by the constant schemes.
    pub fn build(self, shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut Prng) -> Tensor {
        match self {
            Init::GlorotUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::Zeros => Tensor::zeros(shape),
            Init::Ones => Tensor::ones(shape),
            Init::Normal(std) => Tensor::randn(shape, rng).mul_scalar(std),
        }
    }
}

/// Fan-in/fan-out of a linear layer `[out_features, in_features]`.
pub fn fan_in_out_linear(out_features: usize, in_features: usize) -> (usize, usize) {
    (in_features, out_features)
}

/// Fan-in/fan-out of a conv kernel `[out_c, in_c_per_group, kh, kw]`.
pub fn fan_in_out_conv2d(
    out_c: usize,
    in_c_per_group: usize,
    kh: usize,
    kw: usize,
) -> (usize, usize) {
    (in_c_per_group * kh * kw, out_c * kh * kw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn glorot_respects_bound() {
        let mut rng = seeded_rng(1);
        let (fan_in, fan_out) = (64, 32);
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        let w = Init::GlorotUniform.build(&[fan_out, fan_in], fan_in, fan_out, &mut rng);
        assert!(w.data().iter().all(|x| x.abs() <= bound));
        // Not degenerate: some mass away from zero.
        assert!(w.data().iter().any(|x| x.abs() > bound / 4.0));
    }

    #[test]
    fn kaiming_respects_bound() {
        let mut rng = seeded_rng(2);
        let bound = (6.0 / 100.0f32).sqrt();
        let w = Init::KaimingUniform.build(&[10, 100], 100, 10, &mut rng);
        assert!(w.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn constant_schemes() {
        let mut rng = seeded_rng(3);
        assert!(Init::Zeros.build(&[4], 1, 1, &mut rng).data().iter().all(|&x| x == 0.0));
        assert!(Init::Ones.build(&[4], 1, 1, &mut rng).data().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn fan_helpers() {
        assert_eq!(fan_in_out_linear(10, 20), (20, 10));
        assert_eq!(fan_in_out_conv2d(8, 3, 3, 3), (27, 72));
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = Init::GlorotUniform.build(&[3, 3], 3, 3, &mut seeded_rng(7));
        let b = Init::GlorotUniform.build(&[3, 3], 3, 3, &mut seeded_rng(7));
        assert_eq!(a, b);
    }
}
