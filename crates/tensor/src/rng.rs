//! Seeded random-number utilities.
//!
//! Every stochastic component of the reproduction (weight init, data
//! synthesis, client sampling, generator noise) draws from a [`Prng`] seeded
//! through [`seeded_rng`] / [`split_seed`], so whole federated runs are
//! reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The deterministic PRNG used across the workspace.
pub type Prng = StdRng;

/// Create a deterministic PRNG from a `u64` seed.
///
/// ```
/// use rand::RngExt;
/// let mut a = fedzkt_tensor::seeded_rng(7);
/// let mut b = fedzkt_tensor::seeded_rng(7);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> Prng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from a parent seed and a stream index.
///
/// Uses the SplitMix64 finaliser so nearby `(seed, stream)` pairs produce
/// decorrelated child seeds. Used to give each federated client, dataset and
/// round its own stream without threading a mutable RNG everywhere.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample one standard-normal variate via the Box–Muller transform.
///
/// `rand` itself only ships uniform distributions (the normal lives in the
/// separate `rand_distr` crate, which is outside the offline dependency set),
/// so we generate Gaussians directly.
pub fn standard_normal(rng: &mut impl RngExt) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn split_seed_decorrelates_streams() {
        let s0 = split_seed(1, 0);
        let s1 = split_seed(1, 1);
        let s2 = split_seed(2, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded_rng(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn standard_normal_is_finite() {
        let mut rng = seeded_rng(9);
        for _ in 0..10_000 {
            assert!(standard_normal(&mut rng).is_finite());
        }
    }
}
