//! The workspace's single GEMM kernel layer.
//!
//! Every matrix product in the workspace — `Tensor::matmul*`, the im2col
//! convolutions in `fedzkt-autograd`, and through them every linear-layer
//! forward/backward — lowers to one of the three kernels in this module.
//! There is deliberately **no other GEMM implementation anywhere in the
//! workspace**: this is the seam where future backends (SIMD, GPU) plug in.
//!
//! ## The accumulate-into contract
//!
//! All kernels *accumulate* into the caller-provided output slice:
//! `out += op(A) × op(B)`. Callers that want a plain product pass a
//! zero-filled `out`; callers accumulating a gradient (`dW += …`) pass the
//! running buffer directly and avoid a temporary. `out` must have exactly
//! `m * n` elements.
//!
//! ## Determinism
//!
//! For fixed operands each output element is accumulated in a fixed order
//! (ascending along the contraction dimension), independent of blocking and
//! of how rows are partitioned across threads. Results are therefore
//! bit-identical for every thread count — the property the federated
//! determinism suite (`tests/determinism.rs`) asserts end to end.
//!
//! ## Parallelism
//!
//! Kernels whose multiply–accumulate count reaches [`PAR_MIN_MACS`]
//! partition their output rows across up to [`crate::par::max_threads`]
//! scoped threads; smaller products stay on the calling thread, so tight
//! loops over tiny matrices never pay a spawn.
//!
//! The dense inner loops intentionally have no `a == 0.0` skip branch: on
//! the dense generator/activation matrices that dominate training it
//! defeats autovectorisation, and benchmarks showed the sparse inputs that
//! would profit (one-hot batches) are too small to matter.

use crate::par;

/// Contraction-dimension panel size: one `B` panel (`K_BLOCK × n` floats)
/// stays cache-resident while a worker streams its rows of `A` over it.
const K_BLOCK: usize = 128;

/// Minimum number of multiply–accumulates (`m * k * n`) before a kernel
/// forks; below this the spawn cost of scoped threads outweighs the work.
pub const PAR_MIN_MACS: usize = 1 << 20;

/// `out += A × B` with `A: [m, k]`, `B: [k, n]`, `out: [m, n]`, all dense
/// row-major.
///
/// # Panics
/// Debug-asserts the slice lengths implied by `(m, k, n)`.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| {
        // i–k–j with K panels: the B panel is reused across every row of
        // the worker's chunk; out[i][j] accumulates k in ascending order.
        for k0 in (0..k).step_by(K_BLOCK) {
            let k1 = (k0 + K_BLOCK).min(k);
            for (i, or) in rows.chunks_exact_mut(n).enumerate() {
                let ar = &a[(row0 + i) * k..(row0 + i + 1) * k];
                for t in k0..k1 {
                    let av = ar[t];
                    let br = &b[t * n..(t + 1) * n];
                    for (o, &bv) in or.iter_mut().zip(br) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
}

/// `out += A × Bᵀ` with `A: [m, k]`, `B: [n, k]`, `out: [m, n]`.
///
/// Both operands are traversed along contiguous rows (each output element is
/// a dot product of two rows), so no transpose is ever materialised.
///
/// # Panics
/// Debug-asserts the slice lengths implied by `(m, k, n)`.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| {
        for (i, or) in rows.chunks_exact_mut(n).enumerate() {
            let ar = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for (j, o) in or.iter_mut().enumerate() {
                let br = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in ar.iter().zip(br) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    });
}

/// `out += Aᵀ × B` with `A: [k, m]`, `B: [k, n]`, `out: [m, n]`.
///
/// # Panics
/// Debug-asserts the slice lengths implied by `(k, m, n)`.
pub fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| {
        // t outer keeps both source rows streaming; each out[i][j] still
        // accumulates t in ascending order whatever the row partition.
        for t in 0..k {
            let ar = &a[t * m..(t + 1) * m];
            let br = &b[t * n..(t + 1) * n];
            for (i, or) in rows.chunks_exact_mut(n).enumerate() {
                let av = ar[row0 + i];
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
    });
}

/// Run `body(first_row, row_chunk)` over `out`, forking across threads when
/// the product is large enough. `body` must compute each output row by the
/// same float sequence regardless of chunking (all three kernels do).
fn row_partitioned(
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    if m * n == 0 {
        return; // Nothing to write; k may still be 0 or huge, irrelevant.
    }
    let threads = if m * k * n >= PAR_MIN_MACS { par::max_threads() } else { 1 };
    par::for_each_chunk_mut(out, n, threads, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seeded_rng, Tensor};

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    out[i * n + j] += a[i * k + t] * b[t * n + j];
                }
            }
        }
        out
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        Tensor::randn(&[len.max(1)], &mut seeded_rng(seed)).data()[..len].to_vec()
    }

    /// Shapes covering the degenerate cases the kernels must not trip on:
    /// empty output rows/cols ([0, K] / [K, 0]), an empty contraction
    /// ([M, 0] × [0, N]), 1×1, and a few dense rectangles (one beyond
    /// `K_BLOCK` to exercise panelling).
    const SHAPES: &[(usize, usize, usize)] = &[
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (0, 0, 0),
        (1, 1, 1),
        (2, 3, 4),
        (5, 7, 3),
        (8, 8, 8),
        (13, 1, 9),
        (3, 150, 5),
    ];

    #[test]
    fn nn_matches_naive_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut out, m, k, n);
            let expected = naive_nn(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn nt_matches_nn_of_transpose_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = rand_vec(m * k, 3);
            let bt = rand_vec(n * k, 4); // B stored as [n, k]
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &bt, &mut out, m, k, n);
            let expected = naive_nn(&a, &transpose(&bt, n, k), m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_nn_of_transpose_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let at = rand_vec(k * m, 5); // A stored as [k, m]
            let b = rand_vec(k * n, 6);
            let mut out = vec![0.0f32; m * n];
            gemm_tn(&at, &b, &mut out, k, m, n);
            let expected = naive_nn(&transpose(&at, k, m), &b, m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-4, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_accumulate_instead_of_overwriting() {
        let a = [2.0f32];
        let b = [3.0f32];
        let mut out = [10.0f32];
        gemm_nn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 16.0);
        gemm_nt(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 22.0);
        gemm_tn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 28.0);
    }

    #[test]
    fn parallel_path_is_bit_identical_to_serial() {
        let _guard = crate::par::TEST_OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Big enough that m*k*n clears PAR_MIN_MACS and the row partition
        // actually engages.
        let (m, k, n) = (128, 128, 128);
        assert!(m * k * n >= PAR_MIN_MACS);
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let run = |threads: usize| {
            crate::par::set_threads(threads);
            let mut nn = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut nn, m, k, n);
            let mut nt = vec![0.0f32; m * n];
            gemm_nt(&a, &b, &mut nt, m, k, n);
            let mut tn = vec![0.0f32; m * n];
            gemm_tn(&a, &b, &mut tn, k, m, n);
            crate::par::set_threads(0);
            (nn, nt, tn)
        };
        let serial = run(1);
        for threads in [2usize, 4, 7] {
            let parallel = run(threads);
            for (s, p) in [(&serial.0, &parallel.0), (&serial.1, &parallel.1), (&serial.2, &parallel.2)] {
                for (x, y) in s.iter().zip(p.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn zero_values_are_not_skipped() {
        // -0.0 propagation: 1·(-0.0) summed from a +0.0 accumulator must
        // follow IEEE addition, not a skip branch. (+0.0) + (1 × -0.0) = +0.0,
        // and (-0.0) would be the branchy result of copying the product.
        let a = [1.0f32];
        let b = [-0.0f32];
        let mut out = [0.0f32];
        gemm_nn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits());
    }
}
