//! Convolution lowering: `im2col` / `col2im`.
//!
//! A 2-D convolution over one NCHW sample is computed as
//! `weight[OC, C·KH·KW] × im2col(x)[C·KH·KW, OH·OW]`. The backward pass
//! scatters gradients back with [`col2im`]. Grouped and depthwise
//! convolutions slice the channel dimension before lowering (handled in
//! `fedzkt-autograd`).

use crate::shape::conv_output_size;
use crate::Result;

/// Precomputed geometry for a 2-D convolution or pooling window over a
/// single sample of shape `[C, H, W]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same for both spatial dims).
    pub stride: usize,
    /// Zero padding (same for both spatial dims).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Compute the geometry, validating that the window fits.
    ///
    /// # Errors
    /// Returns [`crate::TensorError::InvalidGeometry`] when the kernel does
    /// not fit in the padded input or the stride is zero.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        kernel_h: usize,
        kernel_w: usize,
        stride: usize,
        pad: usize,
    ) -> Result<Self> {
        let out_h = conv_output_size(in_h, kernel_h, stride, pad)?;
        let out_w = conv_output_size(in_w, kernel_w, stride, pad)?;
        Ok(Conv2dGeometry {
            channels,
            in_h,
            in_w,
            kernel_h,
            kernel_w,
            stride,
            pad,
            out_h,
            out_w,
        })
    }

    /// Rows of the lowered column matrix: `C · KH · KW`.
    pub fn col_rows(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }

    /// Columns of the lowered column matrix: `OH · OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }

    /// Elements in one input sample: `C · H · W`.
    pub fn input_len(&self) -> usize {
        self.channels * self.in_h * self.in_w
    }
}

/// Lower one `[C, H, W]` sample into a `[C·KH·KW, OH·OW]` column matrix
/// (row-major), zero-filling out-of-bounds taps.
///
/// # Panics
/// Debug-asserts that `input` has exactly `geometry.input_len()` elements.
pub fn im2col(input: &[f32], g: &Conv2dGeometry) -> Vec<f32> {
    debug_assert_eq!(input.len(), g.input_len());
    // The single-sample lowering is the batch lowering with n = 1: for one
    // sample the sample-major column layout degenerates to [C·KH·KW, OH·OW].
    im2col_batch(input, 0, g.input_len(), 1, g)
}

/// Lower a whole batch of samples into one `[C·KH·KW, N·OH·OW]` column
/// matrix whose columns are sample-major: sample `s` occupies columns
/// `[s·OH·OW, (s+1)·OH·OW)`. One GEMM against this matrix convolves the
/// entire batch, which is how `fedzkt-autograd` lowers `conv2d` (one kernel
/// launch per channel group instead of one per sample per group).
///
/// * `batch` — the full input buffer (e.g. a whole `[N, C_all, H, W]`
///   tensor's data);
/// * `offset` — where sample 0's `[C, H, W]` slice begins within `batch`
///   (the channel-group offset for grouped convolutions);
/// * `sample_stride` — elements between consecutive samples (`C_all·H·W`);
/// * `n` — number of samples.
///
/// Rows are filled in parallel (each worker owns a contiguous row range)
/// when the matrix is large enough; the output is a pure per-element
/// function of the input, so it is bit-identical for every thread count.
///
/// # Panics
/// Panics when `batch` is too short for `offset + (n-1)·sample_stride +
/// input_len` elements.
pub fn im2col_batch(
    batch: &[f32],
    offset: usize,
    sample_stride: usize,
    n: usize,
    g: &Conv2dGeometry,
) -> Vec<f32> {
    if n > 0 {
        assert!(
            offset + (n - 1) * sample_stride + g.input_len() <= batch.len(),
            "im2col_batch: input buffer too short"
        );
    }
    let cols = g.col_cols();
    let mut out = vec![0.0f32; g.col_rows() * n * cols];
    let threads =
        if out.len() >= crate::par::PAR_MIN_ELEMS { crate::par::max_threads() } else { 1 };
    let (oh, ow) = (g.out_h, g.out_w);
    let hw = g.in_h * g.in_w;
    let ktaps = g.kernel_h * g.kernel_w;
    crate::par::for_each_chunk_mut(&mut out, n * cols, threads, |row0, chunk| {
        for (dr, dst_row) in chunk.chunks_mut(n * cols).enumerate() {
            let row = row0 + dr;
            let (c, kh, kw) = (row / ktaps, row % ktaps / g.kernel_w, row % g.kernel_w);
            for s in 0..n {
                let plane = &batch[offset + s * sample_stride + c * hw..][..hw];
                let dst = &mut dst_row[s * cols..(s + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let src_row = iy as usize * g.in_w;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        dst[oy * ow + ox] = plane[src_row + ix as usize];
                    }
                }
            }
        }
    });
    out
}

/// Lower a contiguous **column range** of the batch column matrix: fills
/// `out` (row-major `[C·KH·KW, width]`, `width = out.len() / col_rows`) with
/// global columns `col0 .. col0 + width` of the `[C·KH·KW, N·OH·OW]`
/// sample-major matrix that [`im2col_batch`] would produce.
///
/// This is the fused conv lowering's building block: the forward pass
/// builds and consumes the column matrix panel by panel instead of
/// materialising all `N·OH·OW` columns at once. Every element of `out` is
/// overwritten (out-of-bounds taps write an explicit `0.0`), so a panel
/// buffer can be reused across calls without re-zeroing.
///
/// Runs entirely on the calling thread — panels are the unit of
/// parallelism in the fused path, so the per-panel lowering must not fork.
///
/// # Panics
/// Panics when `out.len()` is not a multiple of `col_rows`, when the column
/// range overruns `n · col_cols`, or when `batch` is too short (as
/// [`im2col_batch`]).
pub fn im2col_panel(
    batch: &[f32],
    offset: usize,
    sample_stride: usize,
    n: usize,
    g: &Conv2dGeometry,
    col0: usize,
    out: &mut [f32],
) {
    let rows = g.col_rows();
    assert!(rows > 0 && out.len().is_multiple_of(rows), "panel must hold whole rows");
    let width = out.len() / rows;
    let cols = g.col_cols();
    assert!(col0 + width <= n * cols, "panel columns out of range");
    if width == 0 {
        return;
    }
    assert!(
        offset + (n - 1) * sample_stride + g.input_len() <= batch.len(),
        "im2col_panel: input buffer too short"
    );
    let ow = g.out_w;
    let hw = g.in_h * g.in_w;
    let ktaps = g.kernel_h * g.kernel_w;
    for (row, dst_row) in out.chunks_exact_mut(width).enumerate() {
        let (c, kh, kw) = (row / ktaps, row % ktaps / g.kernel_w, row % g.kernel_w);
        // Walk the global column range sample segment by sample segment,
        // emitting the same values im2col_batch writes at these columns.
        let mut cur = col0;
        while cur < col0 + width {
            let s = cur / cols;
            let p0 = cur - s * cols;
            let p1 = cols.min(p0 + (col0 + width - cur));
            let plane = &batch[offset + s * sample_stride + c * hw..][..hw];
            let dst = &mut dst_row[cur - col0..cur - col0 + (p1 - p0)];
            for oy in p0 / ow..=(p1 - 1) / ow {
                let seg0 = p0.max(oy * ow);
                let seg1 = p1.min((oy + 1) * ow);
                let seg = &mut dst[seg0 - p0..seg1 - p0];
                let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                if iy < 0 || iy >= g.in_h as isize {
                    seg.fill(0.0);
                    continue;
                }
                let src_row = iy as usize * g.in_w;
                for (d, ox) in seg.iter_mut().zip(seg0 - oy * ow..) {
                    let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                    *d = if ix < 0 || ix >= g.in_w as isize {
                        0.0
                    } else {
                        plane[src_row + ix as usize]
                    };
                }
            }
            cur += p1 - p0;
        }
    }
}

/// Scatter-accumulate a `[C·KH·KW, OH·OW]` column-matrix gradient back into a
/// `[C, H, W]` input gradient (the adjoint of [`im2col`]).
///
/// # Panics
/// Debug-asserts that `col` has exactly `geometry.col_rows() * col_cols()`
/// elements.
pub fn col2im(col: &[f32], g: &Conv2dGeometry) -> Vec<f32> {
    debug_assert_eq!(col.len(), g.col_rows() * g.col_cols());
    let mut input = vec![0.0f32; g.input_len()];
    let (oh, ow) = (g.out_h, g.out_w);
    let hw = g.in_h * g.in_w;
    let mut row = 0usize;
    for c in 0..g.channels {
        let plane = &mut input[c * hw..(c + 1) * hw];
        for kh in 0..g.kernel_h {
            for kw in 0..g.kernel_w {
                let src = &col[row * oh * ow..(row + 1) * oh * ow];
                for oy in 0..oh {
                    let iy = (oy * g.stride + kh) as isize - g.pad as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    let dst_row = iy as usize * g.in_w;
                    for ox in 0..ow {
                        let ix = (ox * g.stride + kw) as isize - g.pad as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        plane[dst_row + ix as usize] += src[oy * ow + ox];
                    }
                }
                row += 1;
            }
        }
    }
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{seeded_rng, Tensor};

    #[test]
    fn geometry_identity_conv() {
        // 3x3 kernel, stride 1, pad 1 preserves spatial dims.
        let g = Conv2dGeometry::new(2, 8, 8, 3, 3, 1, 1).unwrap();
        assert_eq!((g.out_h, g.out_w), (8, 8));
        assert_eq!(g.col_rows(), 2 * 9);
        assert_eq!(g.col_cols(), 64);
    }

    #[test]
    fn im2col_1x1_kernel_is_reshape() {
        let g = Conv2dGeometry::new(2, 3, 3, 1, 1, 1, 0).unwrap();
        let input: Vec<f32> = (0..18).map(|x| x as f32).collect();
        let col = im2col(&input, &g);
        assert_eq!(col, input);
    }

    #[test]
    fn im2col_known_values() {
        // 1 channel, 3x3 input, 2x2 kernel, stride 1, no padding.
        let g = Conv2dGeometry::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        #[rustfmt::skip]
        let input = vec![
            0.0, 1.0, 2.0,
            3.0, 4.0, 5.0,
            6.0, 7.0, 8.0,
        ];
        let col = im2col(&input, &g);
        // Rows: taps (0,0), (0,1), (1,0), (1,1); columns: output pixels.
        #[rustfmt::skip]
        let expected = vec![
            0.0, 1.0, 3.0, 4.0,
            1.0, 2.0, 4.0, 5.0,
            3.0, 4.0, 6.0, 7.0,
            4.0, 5.0, 7.0, 8.0,
        ];
        assert_eq!(col, expected);
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g = Conv2dGeometry::new(1, 2, 2, 3, 3, 1, 1).unwrap();
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let col = im2col(&input, &g);
        // Centre tap (kh=1, kw=1) row must reproduce the input.
        let row = 3 + 1; // kh * kw_count + kw with kh = kw = 1
        assert_eq!(&col[row * 4..(row + 1) * 4], &input[..]);
        // Top-left tap at output (0,0) reads padding.
        assert_eq!(col[0], 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is exactly what backprop requires.
        let mut rng = seeded_rng(5);
        let g = Conv2dGeometry::new(3, 6, 5, 3, 2, 2, 1).unwrap();
        let x = Tensor::randn(&[g.input_len()], &mut rng);
        let y = Tensor::randn(&[g.col_rows() * g.col_cols()], &mut rng);
        let lhs: f32 = im2col(x.data(), &g).iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(y.data(), &g)).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_batch_matches_per_sample_lowering() {
        let mut rng = seeded_rng(6);
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1, 1).unwrap();
        // Samples carry 3 channels overall; the lowered group starts at
        // channel 1 (offset = 1 plane), exercising grouped-conv slicing.
        let (n, c_all) = (3usize, 3usize);
        let sample_stride = c_all * 5 * 4;
        let batch = Tensor::randn(&[n * sample_stride], &mut rng);
        let offset = 5 * 4; // skip channel 0 of sample 0
        let big = im2col_batch(batch.data(), offset, sample_stride, n, &g);
        let cols = g.col_cols();
        for s in 0..n {
            let sample = &batch.data()[offset + s * sample_stride..][..g.input_len()];
            let single = im2col(sample, &g);
            for r in 0..g.col_rows() {
                assert_eq!(
                    &big[r * n * cols + s * cols..r * n * cols + (s + 1) * cols],
                    &single[r * cols..(r + 1) * cols],
                    "row {r}, sample {s}"
                );
            }
        }
    }

    #[test]
    fn im2col_panel_matches_batch_columns() {
        let mut rng = seeded_rng(7);
        let g = Conv2dGeometry::new(2, 5, 4, 3, 2, 1, 1).unwrap();
        let (n, c_all) = (3usize, 3usize);
        let sample_stride = c_all * 5 * 4;
        let batch = Tensor::randn(&[n * sample_stride], &mut rng);
        let offset = 5 * 4;
        let full = im2col_batch(batch.data(), offset, sample_stride, n, &g);
        let ncols = n * g.col_cols();
        let rows = g.col_rows();
        // Panel widths straddling sample boundaries, width 1, and the full
        // matrix; buffers pre-filled with garbage to prove full overwrite.
        for &(col0, width) in
            &[(0usize, 7usize), (5, 13), (g.col_cols() - 2, 5), (ncols - 1, 1), (0, ncols)]
        {
            let mut panel = vec![f32::NAN; rows * width];
            im2col_panel(batch.data(), offset, sample_stride, n, &g, col0, &mut panel);
            for r in 0..rows {
                for j in 0..width {
                    assert_eq!(
                        panel[r * width + j].to_bits(),
                        full[r * ncols + col0 + j].to_bits(),
                        "row {r} col {}",
                        col0 + j
                    );
                }
            }
        }
    }

    #[test]
    fn im2col_batch_empty_batch() {
        let g = Conv2dGeometry::new(1, 3, 3, 2, 2, 1, 0).unwrap();
        assert!(im2col_batch(&[], 0, 9, 0, &g).is_empty());
    }

    #[test]
    fn geometry_rejects_oversized_kernel() {
        assert!(Conv2dGeometry::new(1, 2, 2, 5, 5, 1, 0).is_err());
    }
}
