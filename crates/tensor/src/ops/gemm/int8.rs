//! Int8 GEMM with f32 accumulate: `i8 × i8 → i32 → f32`.
//!
//! Both operands are quantized per tensor with the codec's `QuantQ8` affine
//! format (`crate::ops::quant`, 256 levels, `scale = (max − min)/255`), the
//! level indices are centered to `i8` range (`q − 128`, widened to `i16` so
//! the inner loop needs no sign-extension work), and the product is an
//! **exact** integer dot accumulated in `i32` plus a closed-form affine
//! correction applied once per output element:
//!
//! ```text
//! â[i][t] = minA' + sA·qa[i][t]        (minA' = minA + 128·sA)
//! b̂[t][j] = minB' + sB·qb[t][j]
//! Σt â·b̂ = sA·sB·dot[i][j] + sA·minB'·rowsum(qa[i]) + sB·minA'·colsum(qb[j])
//!          + k·minA'·minB'
//! ```
//!
//! `rowsum`/`colsum` are precomputed in `i32`; the correction is combined
//! in `f64` and rounded once into the `f32` output. Because every term is
//! integer arithmetic or a fixed scalar expression, the result is exactly
//! reproducible for any thread count and any row partition — the int8 path
//! is *trivially* deterministic, with none of the FP-ordering care the f32
//! kernels need.
//!
//! All three layouts (`nn`/`nt`/`tn`) are normalized to one shape before
//! the kernel runs: the A operand as row-major `[m, k]` and the B operand
//! as row-major `[n, k]` (transposing whichever operand needs it, once,
//! before the row partition forks). Every output element is then one
//! contiguous·contiguous `i16` dot — the form LLVM turns into `vpmaddwd`
//! under AVX2, which measures ~2× the broadcast-style integer tile on the
//! same host. Integer accumulation is order-free, so the normalization
//! cannot change results.
//!
//! The error versus the f32 product is the codec's per-element `scale/2`
//! quantization bound accumulated over the contraction (property-tested in
//! `tests/properties.rs`). That is acceptable for inference scoring and
//! wrong for training, which is why `ComputeFormat::Int8` is only engaged
//! by inference phases (driver eval, the distillation game's no-grad
//! scoring passes).
//!
//! Overflow: centered levels are in `[-128, 127]`, so `|qa·qb| ≤ 16384` and
//! an `i32` accumulator is exact for `k ≤ 131071` — far beyond any layer in
//! the model zoo; debug-asserted at entry.

use super::row_partitioned;
use crate::ops::quant::{quant_range, quantize, Q8_LEVELS};

/// Largest contraction dimension the `i32` accumulator is exact for.
const K_MAX: usize = (i32::MAX / (128 * 128)) as usize;

/// Centered level offset: level indices `0..=255` shift to `-128..=127`.
const CENTER: i32 = 128;

/// One operand, quantized: centered levels plus the affine params needed
/// for the correction terms.
struct QuantMat {
    /// Centered level indices `q − 128`, one per source element, in the
    /// source layout. `i16` so the kernels widen cheaply to `i32`.
    q: Vec<i16>,
    /// Centered minimum `min + 128·scale` (f64 for the correction math).
    min_c: f64,
    /// Quantization step.
    scale: f64,
}

/// Quantize a whole operand. Dispatches to a lane-blocked AVX2-compiled
/// body when the host supports it (the scalar `quantize` call chain does
/// not vectorize under the baseline target, and operand quantization is a
/// measurable fraction of a 256³ int8 GEMM); both bodies produce
/// value-identical `(q, min, scale)`.
fn quantize_mat(data: &[f32]) -> QuantMat {
    #[cfg(target_arch = "x86_64")]
    if super::vector::available() {
        // SAFETY: gated on runtime AVX2 detection.
        let (q, min, scale) = unsafe { quantize_levels_avx2(data) };
        return QuantMat {
            q,
            min_c: f64::from(min) + f64::from(CENTER) * f64::from(scale),
            scale: f64::from(scale),
        };
    }
    let (min, scale) = quant_range(data, Q8_LEVELS);
    let q = data
        .iter()
        .map(|&v| (quantize(v, min, scale, Q8_LEVELS) as i32 - CENTER) as i16)
        .collect();
    QuantMat {
        q,
        min_c: f64::from(min) + f64::from(CENTER) * f64::from(scale),
        scale: f64::from(scale),
    }
}

/// Lane-blocked fused `quant_range` + `quantize` loop, compiled with AVX2
/// enabled so the divide/round/clamp chain vectorizes.
///
/// Value-identical to the scalar path: min/max over a multiset do not
/// depend on visit order (up to the sign of an IEEE zero, which the level
/// arithmetic cannot observe), and the per-element level expression is the
/// same `((v − min)/scale).round().clamp(..)` as [`quantize`].
///
/// # Safety
/// The caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn quantize_levels_avx2(data: &[f32]) -> (Vec<i16>, f32, f32) {
    const L: usize = 8;
    let mut mins = [f32::INFINITY; L];
    let mut maxs = [f32::NEG_INFINITY; L];
    let mut chunks = data.chunks_exact(L);
    for chunk in &mut chunks {
        for l in 0..L {
            let v = chunk[l];
            let lo = if v.is_finite() { v } else { f32::INFINITY };
            let hi = if v.is_finite() { v } else { f32::NEG_INFINITY };
            mins[l] = mins[l].min(lo);
            maxs[l] = maxs[l].max(hi);
        }
    }
    let mut min = mins.iter().copied().fold(f32::INFINITY, f32::min);
    let mut max = maxs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for &v in chunks.remainder() {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || !max.is_finite() {
        // All-non-finite range: the scalar path's (0, 0) — every level 0.
        return (vec![-(CENTER as i16); data.len()], 0.0, 0.0);
    }
    let scale = ((f64::from(max) - f64::from(min)) / f64::from(Q8_LEVELS)) as f32;
    if scale == 0.0 {
        return (vec![-(CENTER as i16); data.len()], min, 0.0);
    }
    let mut out = vec![0i16; data.len()];
    let mut src = data.chunks_exact(L);
    let mut dst = out.chunks_exact_mut(L);
    for (ci, co) in (&mut src).zip(&mut dst) {
        for l in 0..L {
            let v = if ci[l].is_nan() { min } else { ci[l] };
            co[l] = ((v - min) / scale).round().clamp(0.0, Q8_LEVELS) as u8 as i16
                - CENTER as i16;
        }
    }
    for (&v, o) in src.remainder().iter().zip(dst.into_remainder()) {
        let v = if v.is_nan() { min } else { v };
        *o = ((v - min) / scale).round().clamp(0.0, Q8_LEVELS) as u8 as i16 - CENTER as i16;
    }
    (out, min, scale)
}

/// Per-element affine correction constants shared by all three kernels.
struct Affine {
    /// Multiplies the integer dot: `sA·sB`.
    dot: f64,
    /// Multiplies the A row sum: `sA·minB'`.
    row: f64,
    /// Multiplies the B column sum: `sB·minA'`.
    col: f64,
    /// Constant term: `k·minA'·minB'`.
    base: f64,
}

impl Affine {
    fn new(qa: &QuantMat, qb: &QuantMat, k: usize) -> Affine {
        Affine {
            dot: qa.scale * qb.scale,
            row: qa.scale * qb.min_c,
            col: qb.scale * qa.min_c,
            base: k as f64 * qa.min_c * qb.min_c,
        }
    }

    /// `out += f32(dot·cdot + rs·crow + cs·ccol + base)`.
    #[inline(always)]
    fn apply(&self, out: &mut f32, dot: i32, rs: i32, cs: i32) {
        *out += (self.dot * f64::from(dot)
            + self.row * f64::from(rs)
            + self.col * f64::from(cs)
            + self.base) as f32;
    }
}

/// Sum each contiguous length-`k` row of `q`.
fn row_sums(q: &[i16], k: usize) -> Vec<i32> {
    if k == 0 {
        return vec![0; 0];
    }
    q.chunks_exact(k).map(|r| r.iter().map(|&v| i32::from(v)).sum()).collect()
}

/// Row-major `[rows, cols]` → row-major `[cols, rows]`.
fn transpose(q: &[i16], rows: usize, cols: usize) -> Vec<i16> {
    let mut out = vec![0i16; q.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = q[r * cols + c];
        }
    }
    out
}

/// Int8 `out += A × B` (`A: [m, k]`, `B: [k, n]`).
pub(super) fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(k <= K_MAX, "int8 gemm contraction {k} exceeds exact i32 range");
    if m * n == 0 || k == 0 {
        return; // Nothing to add: the affine correction is also k-scaled.
    }
    let (qa, qb) = (quantize_mat(a), quantize_mat(b));
    let aff = Affine::new(&qa, &qb, k);
    let qbt = transpose(&qb.q, k, n); // [n, k]: one row per output column.
    let rsums = row_sums(&qa.q, k);
    let csums = row_sums(&qbt, k);
    row_partitioned(out, m, k, n, |row0, rows| {
        dots_chunk(&qa.q, &qbt, row0, rows, k, n, &aff, &rsums, &csums);
    });
}

/// Int8 `out += A × Bᵀ` (`A: [m, k]`, `B: [n, k]`).
pub(super) fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert!(k <= K_MAX, "int8 gemm contraction {k} exceeds exact i32 range");
    if m * n == 0 || k == 0 {
        return;
    }
    let (qa, qb) = (quantize_mat(a), quantize_mat(b));
    let aff = Affine::new(&qa, &qb, k);
    // Both operands are already one contiguous length-k row per output
    // row/column — the kernel's native shape.
    let rsums = row_sums(&qa.q, k);
    let csums = row_sums(&qb.q, k);
    row_partitioned(out, m, k, n, |row0, rows| {
        dots_chunk(&qa.q, &qb.q, row0, rows, k, n, &aff, &rsums, &csums);
    });
}

/// Int8 `out += Aᵀ × B` (`A: [k, m]`, `B: [k, n]`).
pub(super) fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert!(k <= K_MAX, "int8 gemm contraction {k} exceeds exact i32 range");
    if m * n == 0 || k == 0 {
        return;
    }
    let (qa, qb) = (quantize_mat(a), quantize_mat(b));
    let aff = Affine::new(&qa, &qb, k);
    let qat = transpose(&qa.q, k, m); // [m, k]: one row per output row.
    let qbt = transpose(&qb.q, k, n); // [n, k]: one row per output column.
    let rsums = row_sums(&qat, k);
    let csums = row_sums(&qbt, k);
    row_partitioned(out, m, k, n, |row0, rows| {
        dots_chunk(&qat, &qbt, row0, rows, k, n, &aff, &rsums, &csums);
    });
}

/// One worker's rows of the shared integer kernel: operands normalized to
/// row-major `[m, k]` × row-major `[n, k]`, each output element one
/// contiguous `i16` dot plus the affine correction. Dispatches to an
/// AVX2-compiled copy of itself when the host supports it.
#[allow(clippy::too_many_arguments)]
fn dots_chunk(
    qa: &[i16],
    qbt: &[i16],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
    aff: &Affine,
    rsums: &[i32],
    csums: &[i32],
) {
    #[cfg(target_arch = "x86_64")]
    if super::vector::available() {
        // SAFETY: gated on runtime AVX2 detection.
        unsafe { dots_chunk_avx2(qa, qbt, row0, rows, k, n, aff, rsums, csums) };
        return;
    }
    dots_chunk_body(qa, qbt, row0, rows, k, n, aff, rsums, csums);
}

/// See [`dots_chunk`].
///
/// # Safety
/// The caller must ensure AVX2 is available.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn dots_chunk_avx2(
    qa: &[i16],
    qbt: &[i16],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
    aff: &Affine,
    rsums: &[i32],
    csums: &[i32],
) {
    dots_chunk_body(qa, qbt, row0, rows, k, n, aff, rsums, csums);
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dots_chunk_body(
    qa: &[i16],
    qbt: &[i16],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
    aff: &Affine,
    rsums: &[i32],
    csums: &[i32],
) {
    for (i, or) in rows.chunks_exact_mut(n).enumerate() {
        let ar = &qa[(row0 + i) * k..(row0 + i + 1) * k];
        for ((o, br), &cs) in or.iter_mut().zip(qbt.chunks_exact(k)).zip(csums) {
            let mut dot = 0i32;
            for (&x, &y) in ar.iter().zip(br) {
                dot += i32::from(x) * i32::from(y);
            }
            aff.apply(o, dot, rsums[row0 + i], cs);
        }
    }
}
