//! The workspace's single GEMM kernel layer.
//!
//! Every matrix product in the workspace — `Tensor::matmul*`, the im2col
//! convolutions in `fedzkt-autograd`, and through them every linear-layer
//! forward/backward — lowers to one of the three kernels in this module.
//! There is deliberately **no other GEMM implementation anywhere in the
//! workspace**: this is the seam where backends plug in, and three are
//! built in:
//!
//! | backend | module | selected when |
//! |---|---|---|
//! | scalar reference | [`scalar`] | always available; the baseline |
//! | vectorized f32 microkernels | `vector` | x86-64 with AVX2 at runtime |
//! | int8 integer kernels | `int8` | [`ComputeFormat::Int8`] scope |
//!
//! ## The accumulate-into contract
//!
//! All kernels *accumulate* into the caller-provided output slice:
//! `out += op(A) × op(B)`. Callers that want a plain product pass a
//! zero-filled `out`; callers accumulating a gradient (`dW += …`) pass the
//! running buffer directly and avoid a temporary. `out` must have exactly
//! `m * n` elements.
//!
//! ## Shape checks
//!
//! The public entry points assert every operand length against `(m, k, n)`
//! **in every build profile** — a mismatch panics at the call boundary with
//! the operand name and the full problem size instead of computing on a
//! mis-sized prefix or faulting deep inside a kernel. The checks are three
//! integer compares per call, negligible next to the kernel. Fixed-shape
//! hot loops that want even those compares gone go through
//! [`crate::typed`], whose const-generic views prove the lengths at
//! construction and enter below the guards.
//!
//! ## Determinism
//!
//! For fixed operands each output element is accumulated in a fixed order
//! (ascending along the contraction dimension), independent of blocking and
//! of how rows are partitioned across threads. Results are therefore
//! bit-identical for every thread count — the property the federated
//! determinism suite (`tests/determinism.rs`) asserts end to end.
//!
//! The vectorized `nn`/`tn` microkernels reproduce the scalar reference's
//! float sequence exactly (see `vector` module docs), so enabling them
//! never changes results. The vectorized `nt` kernel uses a documented
//! multi-accumulator reduction tree — a *different* deterministic rounding
//! than the scalar dot — and the int8 path quantizes, so which backend runs
//! is fixed per host (CPU features) and per scope (compute format), never
//! per thread count.
//!
//! ## Compute formats
//!
//! [`gemm_nn`]/[`gemm_nt`]/[`gemm_tn`] resolve the thread-local
//! [`ComputeFormat`](crate::compute) scope **once at entry, on the calling
//! thread**, before any row partitioning — worker threads do not inherit
//! the scope, so resolving early keeps a parallel product uniform. Code
//! that issues GEMMs from inside `par` workers (the fused conv lowering)
//! must capture the format outside the worker and call the explicit
//! [`gemm_nn_with`]-style variants.
//!
//! ## Parallelism
//!
//! Kernels whose multiply–accumulate count reaches [`PAR_MIN_MACS`]
//! partition their output rows across up to [`crate::par::max_threads`]
//! scoped threads; smaller products stay on the calling thread, so tight
//! loops over tiny matrices never pay a spawn.
//!
//! The dense inner loops intentionally have no `a == 0.0` skip branch: on
//! the dense generator/activation matrices that dominate training it
//! defeats autovectorisation, and benchmarks showed the sparse inputs that
//! would profit (one-hot batches) are too small to matter.
//!
//! ## Adding a microkernel (the add-a-backend guide)
//!
//! Mirroring the add-a-codec guide in `fedzkt-fl`, a new inner kernel
//! (a wider ISA, a different tile shape, a new integer format) slots in
//! without touching any caller:
//!
//! 1. **Write a chunk kernel**, not a full GEMM: a function with the shape
//!    `fn(a, b, row0, rows, k, n)` that computes output rows
//!    `row0..row0 + rows.len()/n`, accumulating into `rows`. The dispatch
//!    layer owns threading ([`row_partitioned`] hands each worker a chunk)
//!    — your kernel must be a pure function of its input rows.
//! 2. **State its numerics.** Either reproduce the scalar reference's
//!    per-element float sequence exactly (load-accumulate-store register
//!    tiles, ascending k, no FMA contraction — see `vector::tile`), in
//!    which case nothing else changes; or document the new fixed reduction
//!    (as `vector::dot_tree` does) and regenerate benchmark artifacts. A
//!    kernel whose result depends on thread count is a bug the
//!    `parallel_path_is_bit_identical_to_serial` test will catch.
//! 3. **Gate it.** CPU features are runtime-detected once (see
//!    `vector::available`); `#[target_feature]` functions are the only
//!    `unsafe` in the crate and each call site documents the detection
//!    guard. New *formats* (as opposed to faster f32 paths) get a
//!    [`ComputeFormat`] variant and a `match` arm in the `*_with` entry
//!    points instead.
//! 4. **Test + bench it.** Add the backend to the property suite
//!    (`tests/properties.rs` compares every path against the naive
//!    triple loop on remainder-heavy shapes) and a row to `bench_gemm` so
//!    `BENCH_gemm.json` tracks its GFLOPs against the scalar baseline.
//! 5. **Respect the typed shim contract.** The [`crate::typed`] wrappers
//!    enter through the `*_unchecked` seam *above* the format `match`, so a
//!    new backend wired into that `match` is automatically reachable from
//!    both the dynamic and the typed path — never add a kernel entry that
//!    bypasses `gemm_{nn,nt,tn}_unchecked`, or the two paths (and their
//!    bit-identity contract, pinned by `typed_matches_dynamic_bitwise` in
//!    `tests/properties.rs`) can diverge. Shape validation belongs in the
//!    public entries and the typed constructors only; kernels may assume
//!    proven lengths.

pub mod int8;
pub mod scalar;
pub mod vector;

use crate::compute::{current_format, ComputeFormat};
use crate::par;

/// Contraction-dimension panel size: one `B` panel (`K_BLOCK × n` floats)
/// stays cache-resident while a worker streams its rows of `A` over it.
const K_BLOCK: usize = 128;

/// Minimum number of multiply–accumulates (`m * k * n`) before a kernel
/// forks; below this the spawn cost of scoped threads outweighs the work.
pub const PAR_MIN_MACS: usize = 1 << 20;

/// Name of the f32 backend the dispatch layer selects on this host
/// (`"avx2"` or `"scalar"`), for benchmark metadata and diagnostics.
pub fn backend_name() -> &'static str {
    if vector_available() {
        "avx2"
    } else {
        "scalar"
    }
}

/// Whether the vectorized f32 microkernels are active on this host.
pub fn vector_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        vector::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Always-on entry guard: one compare per operand, with the cold panic
/// path outlined so the check costs a predictable branch next to an
/// `O(m·k·n)` kernel. The `typed` layer (`crate::typed`) proves lengths at
/// view construction and calls the `*_unchecked` seam directly, skipping
/// even these three compares.
#[inline(always)]
fn check_len(
    kernel: &'static str,
    operand: &'static str,
    got: usize,
    want: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if got != want {
        shape_panic(kernel, operand, got, want, m, k, n);
    }
}

#[cold]
#[inline(never)]
fn shape_panic(
    kernel: &'static str,
    operand: &'static str,
    got: usize,
    want: usize,
    m: usize,
    k: usize,
    n: usize,
) -> ! {
    panic!("{kernel}: {operand}.len() = {got}, expected {want} for (m={m}, k={k}, n={n})");
}

/// `out += A × B` with `A: [m, k]`, `B: [k, n]`, `out: [m, n]`, all dense
/// row-major, in the thread-local [`ComputeFormat`] scope.
///
/// # Panics
/// In every build profile, if a slice length disagrees with `(m, k, n)` —
/// the message names the operand, its length, and the full problem size.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nn_with(current_format(), a, b, out, m, k, n);
}

/// [`gemm_nn`] with an explicit compute format (for callers already inside
/// a `par` worker, where the thread-local scope is not inherited).
pub fn gemm_nn_with(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_len("gemm_nn", "a", a.len(), m * k, m, k, n);
    check_len("gemm_nn", "b", b.len(), k * n, m, k, n);
    check_len("gemm_nn", "out", out.len(), m * n, m, k, n);
    gemm_nn_unchecked(format, a, b, out, m, k, n);
}

/// Dispatch seam below the entry guards: callers must have proven the slice
/// lengths (`crate::typed` does so by construction). Threading, backend
/// selection, and the accumulate order are identical to [`gemm_nn_with`].
pub(crate) fn gemm_nn_unchecked(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match format {
        ComputeFormat::F32 => row_partitioned(out, m, k, n, |row0, rows| {
            #[cfg(target_arch = "x86_64")]
            if vector::available() {
                // SAFETY: gated on runtime AVX2 detection.
                unsafe { vector::nn_chunk_avx2(a, b, row0, rows, k, n) };
                return;
            }
            scalar::nn_chunk(a, b, row0, rows, k, n);
        }),
        ComputeFormat::Int8 => int8::gemm_nn(a, b, out, m, k, n),
    }
}

/// `out += A × Bᵀ` with `A: [m, k]`, `B: [n, k]`, `out: [m, n]`, in the
/// thread-local [`ComputeFormat`] scope.
///
/// Both operands are traversed along contiguous rows (each output element is
/// a dot product of two rows), so no transpose is ever materialised.
///
/// # Panics
/// In every build profile, if a slice length disagrees with `(m, k, n)` —
/// the message names the operand, its length, and the full problem size.
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nt_with(current_format(), a, b, out, m, k, n);
}

/// [`gemm_nt`] with an explicit compute format.
pub fn gemm_nt_with(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_len("gemm_nt", "a", a.len(), m * k, m, k, n);
    check_len("gemm_nt", "b", b.len(), n * k, m, k, n);
    check_len("gemm_nt", "out", out.len(), m * n, m, k, n);
    gemm_nt_unchecked(format, a, b, out, m, k, n);
}

/// Guard-free dispatch seam for [`gemm_nt_with`]; see [`gemm_nn_unchecked`].
pub(crate) fn gemm_nt_unchecked(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    match format {
        ComputeFormat::F32 => row_partitioned(out, m, k, n, |row0, rows| {
            #[cfg(target_arch = "x86_64")]
            if vector::available() {
                // SAFETY: gated on runtime AVX2 detection.
                unsafe { vector::nt_chunk_avx2(a, b, row0, rows, k, n) };
                return;
            }
            scalar::nt_chunk(a, b, row0, rows, k, n);
        }),
        ComputeFormat::Int8 => int8::gemm_nt(a, b, out, m, k, n),
    }
}

/// `out += Aᵀ × B` with `A: [k, m]`, `B: [k, n]`, `out: [m, n]`, in the
/// thread-local [`ComputeFormat`] scope.
///
/// # Panics
/// In every build profile, if a slice length disagrees with `(k, m, n)` —
/// the message names the operand, its length, and the full problem size.
pub fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    gemm_tn_with(current_format(), a, b, out, k, m, n);
}

/// [`gemm_tn`] with an explicit compute format.
pub fn gemm_tn_with(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    check_len("gemm_tn", "a", a.len(), k * m, m, k, n);
    check_len("gemm_tn", "b", b.len(), k * n, m, k, n);
    check_len("gemm_tn", "out", out.len(), m * n, m, k, n);
    gemm_tn_unchecked(format, a, b, out, k, m, n);
}

/// Guard-free dispatch seam for [`gemm_tn_with`]; see [`gemm_nn_unchecked`].
/// Argument order follows [`gemm_tn`]: `k` first.
pub(crate) fn gemm_tn_unchecked(
    format: ComputeFormat,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) {
    match format {
        ComputeFormat::F32 => row_partitioned(out, m, k, n, |row0, rows| {
            #[cfg(target_arch = "x86_64")]
            if vector::available() {
                // SAFETY: gated on runtime AVX2 detection.
                unsafe { vector::tn_chunk_avx2(a, b, row0, rows, k, n, m) };
                return;
            }
            scalar::tn_chunk(a, b, row0, rows, k, n, m);
        }),
        ComputeFormat::Int8 => int8::gemm_tn(a, b, out, k, m, n),
    }
}

/// Run `body(first_row, row_chunk)` over `out`, forking across threads when
/// the product is large enough. `body` must compute each output row by the
/// same float sequence regardless of chunking (all backends do).
fn row_partitioned(
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    body: impl Fn(usize, &mut [f32]) + Sync,
) {
    if m * n == 0 {
        return; // Nothing to write; k may still be 0 or huge, irrelevant.
    }
    let threads = if m * k * n >= PAR_MIN_MACS { par::max_threads() } else { 1 };
    par::for_each_chunk_mut(out, n, threads, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::with_format;
    use crate::{seeded_rng, Tensor};

    fn naive_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                for t in 0..k {
                    out[i * n + j] += a[i * k + t] * b[t * n + j];
                }
            }
        }
        out
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        Tensor::randn(&[len.max(1)], &mut seeded_rng(seed)).data()[..len].to_vec()
    }

    /// Shapes covering the degenerate cases the kernels must not trip on:
    /// empty output rows/cols ([0, K] / [K, 0]), an empty contraction
    /// ([M, 0] × [0, N]), 1×1, and dense rectangles — one beyond `K_BLOCK`
    /// to exercise panelling, and several straddling the microkernel tile
    /// (MR = 4 rows, NR = 16 columns) to exercise every remainder path.
    const SHAPES: &[(usize, usize, usize)] = &[
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (0, 0, 0),
        (1, 1, 1),
        (2, 3, 4),
        (5, 7, 3),
        (8, 8, 8),
        (13, 1, 9),
        (3, 150, 5),
        (4, 9, 16),
        (9, 17, 33),
        (12, 140, 48),
        (7, 130, 31),
    ];

    #[test]
    fn nn_matches_naive_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = rand_vec(m * k, 1);
            let b = rand_vec(k * n, 2);
            let mut out = vec![0.0f32; m * n];
            gemm_nn(&a, &b, &mut out, m, k, n);
            let expected = naive_nn(&a, &b, m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn nt_matches_nn_of_transpose_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let a = rand_vec(m * k, 3);
            let bt = rand_vec(n * k, 4); // B stored as [n, k]
            let mut out = vec![0.0f32; m * n];
            gemm_nt(&a, &bt, &mut out, m, k, n);
            let expected = naive_nn(&a, &transpose(&bt, n, k), m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn tn_matches_nn_of_transpose_on_all_shapes() {
        for &(m, k, n) in SHAPES {
            let at = rand_vec(k * m, 5); // A stored as [k, m]
            let b = rand_vec(k * n, 6);
            let mut out = vec![0.0f32; m * n];
            gemm_tn(&at, &b, &mut out, k, m, n);
            let expected = naive_nn(&transpose(&at, k, m), &b, m, k, n);
            for (x, y) in out.iter().zip(&expected) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    /// The dispatched `nn`/`tn` kernels (vectorized on AVX2 hosts) must be
    /// bit-identical to the scalar reference — the contract that lets CPU
    /// feature detection never change results.
    #[test]
    fn dispatched_nn_tn_bit_identical_to_scalar_reference() {
        for &(m, k, n) in SHAPES {
            let a = rand_vec(m * k, 11);
            let b = rand_vec(k * n, 12);
            let mut fast = vec![0.1f32; m * n];
            let mut reference = vec![0.1f32; m * n];
            gemm_nn(&a, &b, &mut fast, m, k, n);
            scalar::gemm_nn(&a, &b, &mut reference, m, k, n);
            for (x, y) in fast.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "nn ({m},{k},{n})");
            }
            let at = rand_vec(k * m, 13);
            let mut fast = vec![-0.3f32; m * n];
            let mut reference = vec![-0.3f32; m * n];
            gemm_tn(&at, &b, &mut fast, k, m, n);
            scalar::gemm_tn(&at, &b, &mut reference, k, m, n);
            for (x, y) in fast.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits(), "tn ({m},{k},{n})");
            }
        }
    }

    #[test]
    fn int8_format_approximates_f32_product() {
        let (m, k, n) = (9, 33, 17);
        let a = rand_vec(m * k, 21);
        let b = rand_vec(k * n, 22);
        let mut q = vec![0.0f32; m * n];
        with_format(ComputeFormat::Int8, || gemm_nn(&a, &b, &mut q, m, k, n));
        let exact = naive_nn(&a, &b, m, k, n);
        // Loose smoke bound here; tests/properties.rs pins the codec-derived
        // scale/2 accumulation bound per variant.
        for (x, y) in q.iter().zip(&exact) {
            assert!((x - y).abs() < 0.5, "{x} vs {y}");
        }
    }

    #[test]
    fn kernels_accumulate_instead_of_overwriting() {
        let a = [2.0f32];
        let b = [3.0f32];
        let mut out = [10.0f32];
        gemm_nn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 16.0);
        gemm_nt(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 22.0);
        gemm_tn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0], 28.0);
    }

    #[test]
    fn parallel_path_is_bit_identical_to_serial() {
        let _guard = crate::par::TEST_OVERRIDE_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Big enough that m*k*n clears PAR_MIN_MACS and the row partition
        // actually engages.
        let (m, k, n) = (128, 128, 128);
        assert!(m * k * n >= PAR_MIN_MACS);
        let a = rand_vec(m * k, 7);
        let b = rand_vec(k * n, 8);
        let run = |threads: usize, format: ComputeFormat| {
            crate::par::set_threads(threads);
            let mut nn = vec![0.0f32; m * n];
            gemm_nn_with(format, &a, &b, &mut nn, m, k, n);
            let mut nt = vec![0.0f32; m * n];
            gemm_nt_with(format, &a, &b, &mut nt, m, k, n);
            let mut tn = vec![0.0f32; m * n];
            gemm_tn_with(format, &a, &b, &mut tn, k, m, n);
            crate::par::set_threads(0);
            (nn, nt, tn)
        };
        for format in [ComputeFormat::F32, ComputeFormat::Int8] {
            let serial = run(1, format);
            for threads in [2usize, 4, 7] {
                let parallel = run(threads, format);
                for (s, p) in
                    [(&serial.0, &parallel.0), (&serial.1, &parallel.1), (&serial.2, &parallel.2)]
                {
                    for (x, y) in s.iter().zip(p.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} {format:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn zero_values_are_not_skipped() {
        // -0.0 propagation: 1·(-0.0) summed from a +0.0 accumulator must
        // follow IEEE addition, not a skip branch. (+0.0) + (1 × -0.0) = +0.0,
        // and (-0.0) would be the branchy result of copying the product.
        let a = [1.0f32];
        let b = [-0.0f32];
        let mut out = [0.0f32];
        gemm_nn(&a, &b, &mut out, 1, 1, 1);
        assert_eq!(out[0].to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn int8_scope_selects_int8_kernels() {
        // A constant×constant product is exact under affine quantization
        // (scale = 0), so the scoped call must agree with f32 exactly while
        // still travelling the int8 path (exercised via the scope).
        let a = [2.0f32; 6];
        let b = [3.0f32; 6];
        let mut out = [0.0f32; 4];
        with_format(ComputeFormat::Int8, || gemm_nn(&a, &b, &mut out, 2, 3, 2));
        assert_eq!(out, [18.0f32; 4]);
    }
}
