//! Register-tiled vectorized f32 microkernels (x86-64, AVX2).
//!
//! Pure-Rust, autovectorization-friendly fixed-width kernels: the inner
//! loops work on `[f32; LANES]` blocks with all trip counts known at
//! compile time, and the whole module is compiled twice — once at the
//! crate's baseline features and once under
//! `#[target_feature(enable = "avx2")]` — with the AVX2 version selected at
//! runtime by the dispatch layer in `super`. No intrinsics are written by
//! hand; LLVM vectorizes the fixed-shape loops. AVX2 deliberately does
//! **not** enable `fma`: fused multiply-add contracts `a*b + c` into one
//! differently-rounded operation, which would break bit-identity with the
//! scalar reference kernels.
//!
//! ## Bit-exactness (`nn`/`tn`)
//!
//! The `nn`/`tn` microkernel computes an `MR × NR` output tile per K panel
//! by **loading the output tile into register accumulators, accumulating
//! the panel's products in ascending-k order, and storing the tile back**.
//! Per output element that is the exact float sequence of the scalar
//! reference (`scalar::nn_chunk` / `tn_chunk`): one rounding per
//! multiply-add, k ascending, panel by panel. Lane tiling spans the N
//! dimension only, so vector width never changes the per-element order,
//! and the test suite asserts bit-identity against the scalar kernels.
//!
//! ## The `nt` reduction tree
//!
//! A row·row dot product has no N dimension to tile, so the vectorized
//! `nt` kernel uses `NT_ACCS = 32` partial accumulators with a **fixed,
//! documented reduction**: element `t` of the contraction accumulates into
//! lane `t mod 32` (ascending `t` within each lane), and the lanes are
//! combined by pairwise halving — 32 → 16 → 8 → 4 → 2 → 1, `acc[l] +=
//! acc[l + width]` at each step. This is a *different* (deterministic)
//! rounding sequence from the scalar single-accumulator dot: `gemm_nt`
//! results change bits when the vectorized path is active, which is why
//! the backend is fixed per host and benchmark artifacts were regenerated
//! when this module landed.

#![cfg(target_arch = "x86_64")]

use super::K_BLOCK;

/// Vector register width in f32 lanes the microkernels are shaped for
/// (AVX2 ymm = 8 × f32).
pub const LANES: usize = 8;

/// Microkernel tile rows: A rows processed together, sharing B loads.
const MR: usize = 4;

/// Microkernel tile columns: two LANES-wide vectors per row, so the
/// `MR × NR` accumulator block fills 8 of the 16 ymm registers.
const NR: usize = 2 * LANES;

/// Partial accumulators in the vectorized `nt` dot (4 × LANES).
const NT_ACCS: usize = 32;

/// Whether the running CPU supports the AVX2 microkernels.
pub fn available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// AVX2 entry for one worker's rows of `gemm_nn`.
///
/// # Safety
/// The caller must ensure AVX2 is available ([`available`] returned true).
#[target_feature(enable = "avx2")]
pub unsafe fn nn_chunk_avx2(
    a: &[f32],
    b: &[f32],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
) {
    blocked_chunk(APanel::RowMajor { a, k }, b, row0, rows, k, n);
}

/// AVX2 entry for one worker's rows of `gemm_tn` (`A` stored `[k, m]`).
///
/// # Safety
/// The caller must ensure AVX2 is available ([`available`] returned true).
#[target_feature(enable = "avx2")]
pub unsafe fn tn_chunk_avx2(
    a: &[f32],
    b: &[f32],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
    m: usize,
) {
    blocked_chunk(APanel::ColMajor { a, m }, b, row0, rows, k, n);
}

/// AVX2 entry for one worker's rows of `gemm_nt` (`B` stored `[n, k]`).
///
/// # Safety
/// The caller must ensure AVX2 is available ([`available`] returned true).
#[target_feature(enable = "avx2")]
pub unsafe fn nt_chunk_avx2(
    a: &[f32],
    b: &[f32],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
) {
    for (i, or) in rows.chunks_exact_mut(n).enumerate() {
        let ar = &a[(row0 + i) * k..(row0 + i + 1) * k];
        for (j, o) in or.iter_mut().enumerate() {
            *o += dot_tree(ar, &b[j * k..(j + 1) * k]);
        }
    }
}

/// How the microkernel reads its `A` operand when packing a panel.
enum APanel<'a> {
    /// `A: [m, k]` row-major (the `nn` case): panel rows are contiguous.
    RowMajor { a: &'a [f32], k: usize },
    /// `A: [k, m]` (the `tn` case): panel rows are strided gathers.
    ColMajor { a: &'a [f32], m: usize },
}

impl APanel<'_> {
    /// Copy `kl` contraction values of logical A row `i`, columns
    /// `k0..k0+kl`, into `dst`. Pure copies — packing never changes bits.
    #[inline(always)]
    fn pack_row(&self, i: usize, k0: usize, kl: usize, dst: &mut [f32]) {
        match *self {
            APanel::RowMajor { a, k } => {
                dst[..kl].copy_from_slice(&a[i * k + k0..i * k + k0 + kl]);
            }
            APanel::ColMajor { a, m } => {
                for (t, d) in dst[..kl].iter_mut().enumerate() {
                    *d = a[(k0 + t) * m + i];
                }
            }
        }
    }
}

/// Shared body of the `nn`/`tn` vectorized chunk kernels: K panels, MR-row
/// groups with a packed A panel, NR-column register tiles, scalar
/// remainders that replay the reference kernel's loop order exactly.
#[inline(always)]
fn blocked_chunk(a: APanel<'_>, b: &[f32], row0: usize, rows: &mut [f32], k: usize, n: usize) {
    let chunk_rows = rows.len().checked_div(n).unwrap_or(0);
    let n_main = n - n % NR;
    let mut pack = [0.0f32; MR * K_BLOCK];
    for k0 in (0..k).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(k);
        let kl = k1 - k0;
        let mut i0 = 0;
        while i0 + MR <= chunk_rows {
            for r in 0..MR {
                a.pack_row(row0 + i0 + r, k0, kl, &mut pack[r * kl..(r + 1) * kl]);
            }
            let mut j0 = 0;
            while j0 + NR <= n {
                tile(&pack, kl, b, k0, n, rows, i0, j0);
                j0 += NR;
            }
            if n_main < n {
                // Column remainder: scalar per row, ascending k — the same
                // per-element sequence as the reference kernel.
                for r in 0..MR {
                    let or = &mut rows[(i0 + r) * n + n_main..(i0 + r + 1) * n];
                    for (t, &av) in pack[r * kl..(r + 1) * kl].iter().enumerate() {
                        let br = &b[(k0 + t) * n + n_main..(k0 + t) * n + n];
                        for (o, &bv) in or.iter_mut().zip(br) {
                            *o += av * bv;
                        }
                    }
                }
            }
            i0 += MR;
        }
        // Row remainder (< MR rows): reference kernel loop order.
        for i in i0..chunk_rows {
            a.pack_row(row0 + i, k0, kl, &mut pack[..kl]);
            let or = &mut rows[i * n..(i + 1) * n];
            for (t, &av) in pack[..kl].iter().enumerate() {
                let br = &b[(k0 + t) * n..(k0 + t + 1) * n];
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// One `MR × NR` register tile: load the output tile into accumulators,
/// add the K panel's products in ascending-k order, store the tile back.
/// Loading `out` first (rather than summing into fresh zeros) keeps the
/// per-element rounding sequence identical to the scalar reference.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tile(
    pack: &[f32],
    kl: usize,
    b: &[f32],
    k0: usize,
    n: usize,
    rows: &mut [f32],
    i0: usize,
    j0: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, accr) in acc.iter_mut().enumerate() {
        accr.copy_from_slice(&rows[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR]);
    }
    for t in 0..kl {
        let br: &[f32; NR] = b[(k0 + t) * n + j0..].first_chunk::<NR>().unwrap();
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = pack[r * kl + t];
            for (x, &y) in accr.iter_mut().zip(br.iter()) {
                *x += av * y;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        rows[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR].copy_from_slice(accr);
    }
}

/// Multi-accumulator dot product with the fixed reduction tree documented
/// in the module docs: element `t` lands in lane `t mod NT_ACCS`, lanes
/// combine by pairwise halving.
#[inline(always)]
fn dot_tree(x: &[f32], y: &[f32]) -> f32 {
    let mut acc = [0.0f32; NT_ACCS];
    let mut xc = x.chunks_exact(NT_ACCS);
    let mut yc = y.chunks_exact(NT_ACCS);
    for (xs, ys) in (&mut xc).zip(&mut yc) {
        for (a, (&xv, &yv)) in acc.iter_mut().zip(xs.iter().zip(ys)) {
            *a += xv * yv;
        }
    }
    for (a, (&xv, &yv)) in acc.iter_mut().zip(xc.remainder().iter().zip(yc.remainder())) {
        *a += xv * yv;
    }
    let mut width = NT_ACCS / 2;
    while width > 0 {
        for l in 0..width {
            acc[l] += acc[l + width];
        }
        width /= 2;
    }
    acc[0]
}
