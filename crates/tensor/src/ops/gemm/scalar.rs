//! The scalar reference kernels — the workspace's original cache-blocked
//! GEMM bodies, kept verbatim as (a) the portable fallback on hosts without
//! the CPU features the vectorized microkernels require, and (b) the
//! baseline the benchmark harness and property tests compare every other
//! backend against.
//!
//! `gemm_nn`/`gemm_tn` here define the *bit-exact* float sequence the
//! vectorized microkernels must reproduce (each output element accumulates
//! the contraction dimension in ascending order, K-panel by K-panel).
//! `gemm_nt`'s single-accumulator dot is the scalar reference; the
//! vectorized `nt` kernel uses a documented multi-accumulator reduction
//! tree and is *not* bit-identical to this one (both are deterministic).

use super::{row_partitioned, K_BLOCK};

/// `out += A × B` on the scalar path; see [`super::gemm_nn`] for the
/// contract. Public so benchmarks and tests can pin the baseline.
pub fn gemm_nn(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| nn_chunk(a, b, row0, rows, k, n));
}

/// `out += A × Bᵀ` on the scalar path; see [`super::gemm_nt`].
pub fn gemm_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| nt_chunk(a, b, row0, rows, k, n));
}

/// `out += Aᵀ × B` on the scalar path; see [`super::gemm_tn`].
pub fn gemm_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    row_partitioned(out, m, k, n, |row0, rows| tn_chunk(a, b, row0, rows, k, n, m));
}

/// One worker's share of `gemm_nn`: rows `row0..` of the output.
pub(super) fn nn_chunk(a: &[f32], b: &[f32], row0: usize, rows: &mut [f32], k: usize, n: usize) {
    // i–k–j with K panels: the B panel is reused across every row of
    // the worker's chunk; out[i][j] accumulates k in ascending order.
    for k0 in (0..k).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(k);
        for (i, or) in rows.chunks_exact_mut(n).enumerate() {
            let ar = &a[(row0 + i) * k..(row0 + i + 1) * k];
            for t in k0..k1 {
                let av = ar[t];
                let br = &b[t * n..(t + 1) * n];
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// One worker's share of `gemm_nt`: single-accumulator row·row dots.
pub(super) fn nt_chunk(a: &[f32], b: &[f32], row0: usize, rows: &mut [f32], k: usize, n: usize) {
    for (i, or) in rows.chunks_exact_mut(n).enumerate() {
        let ar = &a[(row0 + i) * k..(row0 + i + 1) * k];
        for (j, o) in or.iter_mut().enumerate() {
            let br = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in ar.iter().zip(br) {
                acc += x * y;
            }
            *o += acc;
        }
    }
}

/// One worker's share of `gemm_tn`.
pub(super) fn tn_chunk(
    a: &[f32],
    b: &[f32],
    row0: usize,
    rows: &mut [f32],
    k: usize,
    n: usize,
    m: usize,
) {
    // t outer keeps both source rows streaming; each out[i][j] still
    // accumulates t in ascending order whatever the row partition.
    for t in 0..k {
        let ar = &a[t * m..(t + 1) * m];
        let br = &b[t * n..(t + 1) * n];
        for (i, or) in rows.chunks_exact_mut(n).enumerate() {
            let av = ar[row0 + i];
            for (o, &bv) in or.iter_mut().zip(br) {
                *o += av * bv;
            }
        }
    }
}
