//! Heavier tensor operations: matrix multiplication and convolution
//! lowering. Elementwise arithmetic and reductions live directly on
//! [`Tensor`](crate::Tensor).

mod image;
mod matmul;

pub use image::{col2im, im2col, Conv2dGeometry};
