//! Heavier tensor operations: matrix multiplication and convolution
//! lowering. Elementwise arithmetic and reductions live directly on
//! [`Tensor`](crate::Tensor).

pub mod gemm;
mod image;
mod matmul;
pub mod quant;

pub use image::{col2im, im2col, im2col_batch, im2col_panel, Conv2dGeometry};
