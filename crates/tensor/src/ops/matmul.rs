//! Cache-blocked matrix multiplication.
//!
//! The workspace's convolutions lower to GEMM via `im2col`, so this kernel
//! dominates training time. The implementation is a straightforward
//! `i-k-j` loop order (streaming over the output row while broadcasting one
//! `lhs` element), which vectorises well and avoids the pathological
//! column-stride access of the naive `i-j-k` order. No unsafe code.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product `[M, K] x [K, N] -> [M, N]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDims`] when inner dimensions disagree.
    ///
    /// ```
    /// use fedzkt_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), a.data());
    /// # Ok::<(), fedzkt_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the right operand transposed:
    /// `[M, K] x [N, K]^T -> [M, N]`.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose2d()?)` but without
    /// materialising the transpose; used heavily in linear-layer backward
    /// passes.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (n, k2) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let ar = &a[i * k..(i + 1) * k];
            let or = &mut out[i * n..(i + 1) * n];
            for (j, o) in or.iter_mut().enumerate() {
                let br = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for t in 0..k {
                    acc += ar[t] * br[t];
                }
                *o = acc;
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the left operand transposed:
    /// `[K, M]^T x [K, N] -> [M, N]`.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let a = self.data();
        let b = rhs.data();
        let mut out = vec![0.0f32; m * n];
        for t in 0..k {
            let ar = &a[t * m..(t + 1) * m];
            let br = &b[t * n..(t + 1) * n];
            for i in 0..m {
                let av = ar[i];
                if av == 0.0 {
                    continue;
                }
                let or = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in or.iter_mut().zip(br) {
                    *o += av * bv;
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.ndim() });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// `out += a[m,k] * b[k,n]` with `out` zero-initialised by the caller.
pub(crate) fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let or = &mut out[i * n..(i + 1) * n];
        for (t, &av) in ar.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let br = &b[t * n..(t + 1) * n];
            for (o, &bv) in or.iter_mut().zip(br) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..k {
                    acc += a.data()[i * k + t] * b.data()[t * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = seeded_rng(11);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = seeded_rng(12);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let b = Tensor::randn(&[5, 6], &mut rng);
        let expected = a.matmul(&b.transpose2d().unwrap()).unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &expected, 1e-4);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = seeded_rng(13);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        let expected = a.transpose2d().unwrap().matmul(&b).unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &expected, 1e-4);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDims { .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[0, 4]);
    }
}
