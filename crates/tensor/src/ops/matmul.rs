//! Matrix products on [`Tensor`], thin shape-checked wrappers over the
//! workspace's single GEMM layer ([`crate::ops::gemm`]).
//!
//! All three transpose variants validate shapes, allocate a zeroed output
//! and dispatch to the shared accumulate-into kernels, which handle cache
//! blocking and (for large products) row-partitioned multi-threading.

use super::gemm;
use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product `[M, K] x [K, N] -> [M, N]`.
    ///
    /// # Errors
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::MatmulDims`] when inner dimensions disagree.
    ///
    /// ```
    /// use fedzkt_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), a.data());
    /// # Ok::<(), fedzkt_tensor::TensorError>(())
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nn(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the right operand transposed:
    /// `[M, K] x [N, K]^T -> [M, N]`.
    ///
    /// Equivalent to `self.matmul(&rhs.transpose2d()?)` but without
    /// materialising the transpose; used heavily in linear-layer backward
    /// passes.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (n, k2) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_nt(self.data(), rhs.data(), &mut out, m, k, n);
        Tensor::from_vec(out, &[m, n])
    }

    /// Matrix product with the left operand transposed:
    /// `[K, M]^T x [K, N] -> [M, N]`.
    ///
    /// # Errors
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims {
                lhs: self.shape().to_vec(),
                rhs: rhs.shape().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        gemm::gemm_tn(self.data(), rhs.data(), &mut out, k, m, n);
        Tensor::from_vec(out, &[m, n])
    }
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.ndim() });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for t in 0..k {
                    acc += a.data()[i * k + t] * b.data()[t * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = seeded_rng(11);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = Tensor::randn(&[m, k], &mut rng);
            let b = Tensor::randn(&[k, n], &mut rng);
            assert_close(&a.matmul(&b).unwrap(), &naive_matmul(&a, &b), 1e-4);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = seeded_rng(12);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let b = Tensor::randn(&[5, 6], &mut rng);
        let expected = a.matmul(&b.transpose2d().unwrap()).unwrap();
        assert_close(&a.matmul_nt(&b).unwrap(), &expected, 1e-4);
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = seeded_rng(13);
        let a = Tensor::randn(&[6, 4], &mut rng);
        let b = Tensor::randn(&[6, 5], &mut rng);
        let expected = a.transpose2d().unwrap().matmul(&b).unwrap();
        assert_close(&a.matmul_tn(&b).unwrap(), &expected, 1e-4);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDims { .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn degenerate_shapes_for_all_variants() {
        // [0, K] x [K, N], [M, K] x [K, 0] and 1x1 through every transpose
        // variant — the kernels must produce correctly shaped (possibly
        // empty) outputs without touching memory.
        let cases: &[(&[usize], &[usize])] = &[(&[0, 3], &[3, 4]), (&[2, 3], &[3, 0]), (&[1, 1], &[1, 1])];
        for &(sa, sb) in cases {
            let a = Tensor::zeros(sa);
            let b = Tensor::zeros(sb);
            let c = a.matmul(&b).unwrap();
            assert_eq!(c.shape(), &[sa[0], sb[1]]);
        }
        // nt: [M, K] x [N, K]^T with M = 0, N = 0 and 1x1.
        for &(sa, sb) in &[([0usize, 3], [4usize, 3]), ([2, 3], [0, 3]), ([1, 1], [1, 1])] {
            let c = Tensor::zeros(&sa).matmul_nt(&Tensor::zeros(&sb)).unwrap();
            assert_eq!(c.shape(), &[sa[0], sb[0]]);
        }
        // tn: [K, M]^T x [K, N] with M = 0, N = 0, K = 0 and 1x1.
        for &(sa, sb) in &[([3usize, 0], [3usize, 4]), ([3, 2], [3, 0]), ([0, 2], [0, 3]), ([1, 1], [1, 1])] {
            let c = Tensor::zeros(&sa).matmul_tn(&Tensor::zeros(&sb)).unwrap();
            assert_eq!(c.shape(), &[sa[1], sb[1]]);
        }
    }

    #[test]
    fn matmul_with_zero_rows() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[0, 4]);
    }
}
