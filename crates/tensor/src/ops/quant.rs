//! Per-tensor affine quantization primitives.
//!
//! One definition of the affine range/quantize/dequantize arithmetic shared
//! by the two consumers of 8-bit quantization in the workspace:
//!
//! * the **wire codecs** in `fedzkt-fl` (`QuantQ8`/`QuantQ4` payload
//!   encodings), which historically owned these functions;
//! * the **int8 compute format** (`crate::ops::gemm` with
//!   [`crate::ComputeFormat::Int8`]), which quantizes GEMM operands with the
//!   exact same `(min, scale)` semantics so its error bound is the codec's
//!   familiar `scale/2` per element.
//!
//! The arithmetic is pure and scalar — same input, same bytes, on every
//! thread count — and applies the codec clamp policy to non-finite values:
//! the range is computed over finite elements only, NaN quantizes to the
//! minimum, and ±∞ saturate to the nearest end of the range.

/// Level count for 8-bit affine quantization: indices span `0..=255`.
pub const Q8_LEVELS: f32 = 255.0;

/// Per-tensor affine range `(min, scale)` over the **finite** elements of
/// `data`, with `scale = (max - min) / levels`; a constant or all-non-finite
/// tensor yields `scale == 0` and decodes exactly.
pub fn quant_range(data: &[f32], levels: f32) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in data {
        if v.is_finite() {
            min = min.min(v);
            max = max.max(v);
        }
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 0.0);
    }
    // f64 intermediate: (max - min) can overflow f32 for extreme ranges,
    // and an infinite scale would decode finite input to NaN (0 · ∞).
    (min, ((max as f64 - min as f64) / levels as f64) as f32)
}

/// Quantize one value to a level index in `[0, levels]`, applying the
/// non-finite clamp policy (NaN maps to the minimum).
pub fn quantize(v: f32, min: f32, scale: f32, levels: f32) -> u8 {
    if scale == 0.0 {
        return 0;
    }
    let v = if v.is_nan() { min } else { v };
    (((v - min) / scale).round().clamp(0.0, levels)) as u8
}

/// Reconstruct the value a level index represents: `min + scale · q`.
pub fn dequantize(q: u8, min: f32, scale: f32) -> f32 {
    min + scale * q as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_within_half_scale() {
        let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.37).sin() * 10.0).collect();
        let (min, scale) = quant_range(&data, Q8_LEVELS);
        for &v in &data {
            let q = quantize(v, min, scale, Q8_LEVELS);
            let back = dequantize(q, min, scale);
            assert!((back - v).abs() <= scale / 2.0 + 1e-6, "{v} -> {back} (scale {scale})");
        }
    }

    #[test]
    fn constant_tensor_has_zero_scale_and_exact_decode() {
        let data = [3.5f32; 9];
        let (min, scale) = quant_range(&data, Q8_LEVELS);
        assert_eq!((min, scale), (3.5, 0.0));
        assert_eq!(dequantize(quantize(3.5, min, scale, Q8_LEVELS), min, scale), 3.5);
    }

    #[test]
    fn non_finite_values_clamp() {
        let data = [1.0f32, f32::NAN, f32::INFINITY, 2.0];
        let (min, scale) = quant_range(&data, Q8_LEVELS);
        assert_eq!(min, 1.0);
        assert_eq!(quantize(f32::NAN, min, scale, Q8_LEVELS), 0);
        assert_eq!(quantize(f32::INFINITY, min, scale, Q8_LEVELS), 255);
        assert_eq!(quantize(f32::NEG_INFINITY, min, scale, Q8_LEVELS), 0);
    }

    #[test]
    fn all_non_finite_yields_zero_range() {
        assert_eq!(quant_range(&[f32::NAN, f32::INFINITY], Q8_LEVELS), (0.0, 0.0));
    }
}
