//! # fedzkt-tensor
//!
//! Dense `f32` tensor library underpinning the FedZKT reproduction.
//!
//! This crate provides the numerical substrate that the rest of the workspace
//! builds on: an owned, contiguous, row-major (NCHW for images) tensor type
//! with the operations needed to train convolutional neural networks on a
//! CPU — elementwise arithmetic, blocked matrix multiplication, reductions,
//! `im2col`/`col2im` convolution lowering, pooling geometry, weight
//! initialisation and seeded random sampling.
//!
//! It intentionally supports only `f32`: every model in the FedZKT paper is a
//! single-precision image classifier, and a single dtype keeps the autograd
//! tape (see `fedzkt-autograd`) simple and fast.
//!
//! ## Example
//!
//! ```
//! use fedzkt_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), fedzkt_tensor::TensorError>(())
//! ```

#![warn(missing_docs)]

pub mod compute;
mod error;
mod init;
pub mod ops;
pub mod par;
mod rng;
mod shape;
mod tensor;
pub mod typed;

pub use compute::ComputeFormat;
pub use error::TensorError;
pub use init::{fan_in_out_conv2d, fan_in_out_linear, Init};
pub use rng::{seeded_rng, split_seed, standard_normal, Prng};
pub use shape::{broadcastable_bias, conv_output_size, numel, same_shape, strides, Shape};
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
