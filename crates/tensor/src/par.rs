//! Deterministic fork–join parallelism for the workspace.
//!
//! This is the single execution-model seam every layer above threads
//! through: GEMM row partitioning, batched convolution lowering and
//! device-parallel federated training all dispatch here. The design is
//! deliberately minimal — scoped `std::thread` chunking with **no work
//! stealing** — because static partitioning is what makes the determinism
//! guarantee cheap to state:
//!
//! * work is split into *contiguous index ranges*, one per worker;
//! * every item (output row, sample, device) is computed by exactly the
//!   same sequence of floating-point operations regardless of which worker
//!   runs it;
//! * results are merged back in index order.
//!
//! Consequently every public helper in this module is bit-deterministic
//! with respect to the thread count: `threads = 1` and `threads = 64`
//! produce identical bytes. The test suite enforces this end to end (see
//! `tests/determinism.rs` at the workspace root).
//!
//! ## Thread-count resolution
//!
//! [`max_threads`] resolves, in order: a programmatic override set via
//! [`set_threads`], the `FEDZKT_THREADS` environment variable, and finally
//! [`std::thread::available_parallelism`]. Nested parallel regions run
//! serially (a worker that reaches another `par` call just executes it
//! inline), so device-level parallelism does not multiply with kernel-level
//! parallelism.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Programmatic thread-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on worker threads spawned by this module: nested parallel
    /// regions detect it and degrade to serial execution.
    static IN_PARALLEL: Cell<bool> = const { Cell::new(false) };
}

/// Override the workspace-wide thread count (0 clears the override and
/// returns resolution to `FEDZKT_THREADS` / available parallelism).
///
/// Intended for benchmarks and tests that compare thread counts within one
/// process; long-running programs should prefer the environment variable.
pub fn set_threads(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// The number of worker threads parallel regions may use.
///
/// Resolution order: [`set_threads`] override, then the `FEDZKT_THREADS`
/// environment variable (a positive integer), then
/// [`std::thread::available_parallelism`]. Never returns 0.
pub fn max_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(s) = std::env::var("FEDZKT_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Resolve a configured thread count: 0 means "workspace default"
/// ([`max_threads`]), any other value is used as-is. This is the single
/// definition of the resolution rule shared by every orchestrator config.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        max_threads()
    } else {
        configured
    }
}

/// Minimum number of output elements a memory-bound parallel region (im2col
/// lowering, col2im scatter) should cover before forking; below this the
/// scoped-thread spawn cost outweighs the copy work. Compute-bound GEMM uses
/// its own multiply–accumulate threshold (`ops::gemm::PAR_MIN_MACS`).
pub const PAR_MIN_ELEMS: usize = 1 << 16;

/// True when called from inside a worker spawned by this module.
pub fn in_parallel() -> bool {
    IN_PARALLEL.with(Cell::get)
}

fn mark_worker() {
    IN_PARALLEL.with(|f| f.set(true));
}

/// Split `data` into up to `threads` contiguous chunks of whole `unit`-sized
/// records and run `f(first_record_index, chunk)` on each chunk, possibly
/// concurrently.
///
/// `data.len()` must be a multiple of `unit`. Chunk boundaries depend on
/// `threads`, but since `f` receives the absolute index of its first record
/// and records are disjoint, any `f` that computes each record independently
/// is bit-deterministic with respect to the thread count.
///
/// Runs inline (single-threaded) when `threads <= 1`, when there are fewer
/// than two records, or when already inside a parallel region.
///
/// # Panics
/// Panics when `unit` is 0 while `data` is non-empty, when `data.len()` is
/// not a multiple of `unit`, or when a worker panics.
pub fn for_each_chunk_mut<T, F>(data: &mut [T], unit: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(unit > 0, "record size must be positive");
    assert!(data.len().is_multiple_of(unit), "data must hold whole records");
    let records = data.len() / unit;
    let workers = threads.min(records).max(1);
    if workers <= 1 || in_parallel() {
        f(0, data);
        return;
    }
    let per_worker = records.div_ceil(workers);
    std::thread::scope(|scope| {
        for (w, chunk) in data.chunks_mut(per_worker * unit).enumerate() {
            let f = &f;
            scope.spawn(move || {
                mark_worker();
                f(w * per_worker, chunk);
            });
        }
    });
}

/// Map `f` over `0..n`, returning results in index order.
///
/// Indices are split into up to `threads` contiguous ranges, each evaluated
/// on its own scoped thread; per-range result vectors are concatenated in
/// range order, so the output is identical to `(0..n).map(f).collect()` for
/// every thread count (provided `f(i)` itself is a pure function of `i`).
///
/// Runs inline when `threads <= 1`, `n < 2`, or when already inside a
/// parallel region.
///
/// # Panics
/// Panics when a worker panics.
pub fn map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(n).max(1);
    if workers <= 1 || in_parallel() {
        return (0..n).map(f).collect();
    }
    let per_worker = n.div_ceil(workers);
    // Rounding up per_worker can leave trailing workers with empty ranges;
    // don't spawn those.
    let workers = n.div_ceil(per_worker);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                let lo = w * per_worker;
                let hi = ((w + 1) * per_worker).min(n);
                scope.spawn(move || {
                    mark_worker();
                    (lo..hi).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Serialises unit tests that mutate the process-global [`set_threads`]
/// override, so they cannot race each other when libtest runs the crate's
/// tests concurrently. Lock it in any test that calls `set_threads`.
#[cfg(test)]
pub(crate) static TEST_OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_threads_is_positive_and_overridable() {
        let _guard =
            TEST_OVERRIDE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(max_threads() >= 1);
        set_threads(3);
        assert_eq!(max_threads(), 3);
        set_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn chunks_cover_all_records_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let mut data = vec![0u32; 7 * 4];
            for_each_chunk_mut(&mut data, 4, threads, |first, chunk| {
                for (r, rec) in chunk.chunks_mut(4).enumerate() {
                    for v in rec.iter_mut() {
                        *v += (first + r) as u32 + 1;
                    }
                }
            });
            let expected: Vec<u32> =
                (0..7).flat_map(|r| std::iter::repeat_n(r + 1, 4)).collect();
            assert_eq!(data, expected, "threads={threads}");
        }
    }

    #[test]
    fn chunks_handle_empty_and_single_record() {
        let mut empty: Vec<f32> = Vec::new();
        for_each_chunk_mut(&mut empty, 4, 4, |_, _| panic!("no records to visit"));
        let mut one = vec![0.0f32; 5];
        for_each_chunk_mut(&mut one, 5, 4, |first, chunk| {
            assert_eq!(first, 0);
            chunk[0] = 1.0;
        });
        assert_eq!(one[0], 1.0);
    }

    #[test]
    fn map_preserves_index_order_for_all_thread_counts() {
        let serial: Vec<usize> = (0..23).map(|i| i * i).collect();
        for threads in [1usize, 2, 4, 23, 64] {
            assert_eq!(map_indexed(23, threads, |i| i * i), serial, "threads={threads}");
        }
        assert!(map_indexed(0, 4, |i: usize| i).is_empty());
    }

    #[test]
    fn nested_regions_run_serially() {
        let out = map_indexed(4, 4, |i| {
            assert!(in_parallel());
            // The nested call must not spawn (and must still be correct).
            map_indexed(3, 4, move |j| i * 10 + j)
        });
        assert_eq!(out[1], vec![10, 11, 12]);
        assert!(!in_parallel());
    }

    #[test]
    #[should_panic(expected = "whole records")]
    fn rejects_partial_records() {
        let mut data = vec![0u8; 5];
        for_each_chunk_mut(&mut data, 2, 2, |_, _| {});
    }
}
