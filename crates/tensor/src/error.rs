use std::fmt;

/// Error type for tensor construction and shape-sensitive operations.
///
/// Every fallible public function in this crate returns
/// [`TensorError`](crate::TensorError) so callers can recover from shape
/// mismatches (the dominant failure mode when composing network layers)
/// instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The provided data length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two tensors that must share a shape do not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
    },
    /// The operation requires a different dimensionality.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor supplied.
        actual: usize,
    },
    /// Matrix multiplication inner dimensions disagree.
    MatmulDims {
        /// Shape of the left-hand matrix.
        lhs: Vec<usize>,
        /// Shape of the right-hand matrix.
        rhs: Vec<usize>,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// padded input).
    InvalidGeometry(String),
    /// Generic invalid-argument error with a human-readable reason.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape volume {expected}")
            }
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected {expected}, got {actual}")
            }
            TensorError::MatmulDims { lhs, rhs } => {
                write!(f, "matmul dimension mismatch: {lhs:?} x {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::ShapeMismatch { lhs: vec![2, 3], rhs: vec![3, 2] };
        let s = e.to_string();
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
