//! Shape algebra helpers shared by the tensor ops and by downstream crates
//! that need to reason about layer geometry without materialising tensors.

use crate::{Result, TensorError};

/// A tensor shape: the extent of each dimension, outermost first.
///
/// Shapes are plain `Vec<usize>` values wrapped for readability; images use
/// the NCHW convention `[batch, channels, height, width]`.
pub type Shape = Vec<usize>;

/// Number of elements implied by a shape (the product of all extents).
///
/// The empty shape `[]` denotes a scalar and has one element.
///
/// ```
/// assert_eq!(fedzkt_tensor::numel(&[2, 3, 4]), 24);
/// assert_eq!(fedzkt_tensor::numel(&[]), 1);
/// ```
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
///
/// `strides(&[2, 3, 4]) == [12, 4, 1]`; a scalar has no strides.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut out = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        out[i] = out[i + 1] * shape[i + 1];
    }
    out
}

/// Check that two shapes are identical, returning a descriptive error if not.
pub fn same_shape(lhs: &[usize], rhs: &[usize]) -> Result<()> {
    if lhs == rhs {
        Ok(())
    } else {
        Err(TensorError::ShapeMismatch { lhs: lhs.to_vec(), rhs: rhs.to_vec() })
    }
}

/// Check that `bias` can be broadcast over the last dimension of `shape`
/// (the only broadcast form this library supports, sufficient for linear and
/// convolution bias terms).
pub fn broadcastable_bias(shape: &[usize], bias: &[usize]) -> Result<()> {
    if bias.len() == 1 && !shape.is_empty() && bias[0] == shape[shape.len() - 1] {
        Ok(())
    } else {
        Err(TensorError::ShapeMismatch { lhs: shape.to_vec(), rhs: bias.to_vec() })
    }
}

/// Output spatial extent of a convolution or pooling window.
///
/// Returns `(input + 2 * pad - kernel) / stride + 1`, or an error when the
/// kernel does not fit in the padded input or `stride == 0`.
///
/// ```
/// // 28x28 image, 5x5 kernel, stride 1, no padding -> 24.
/// assert_eq!(fedzkt_tensor::conv_output_size(28, 5, 1, 0).unwrap(), 24);
/// ```
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, pad: usize) -> Result<usize> {
    if stride == 0 {
        return Err(TensorError::InvalidGeometry("stride must be positive".into()));
    }
    if kernel == 0 {
        return Err(TensorError::InvalidGeometry("kernel must be positive".into()));
    }
    let padded = input + 2 * pad;
    if padded < kernel {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel {kernel} larger than padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_of_scalar_is_one() {
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn numel_with_zero_dim_is_zero() {
        assert_eq!(numel(&[2, 0, 3]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn conv_output_size_basic() {
        assert_eq!(conv_output_size(32, 3, 1, 1).unwrap(), 32);
        assert_eq!(conv_output_size(32, 3, 2, 1).unwrap(), 16);
        assert_eq!(conv_output_size(28, 5, 1, 0).unwrap(), 24);
        assert_eq!(conv_output_size(4, 4, 1, 0).unwrap(), 1);
    }

    #[test]
    fn conv_output_size_rejects_bad_geometry() {
        assert!(conv_output_size(2, 5, 1, 0).is_err());
        assert!(conv_output_size(8, 3, 0, 1).is_err());
        assert!(conv_output_size(8, 0, 1, 1).is_err());
    }

    #[test]
    fn bias_broadcast_check() {
        assert!(broadcastable_bias(&[4, 10], &[10]).is_ok());
        assert!(broadcastable_bias(&[4, 10], &[4]).is_err());
        assert!(broadcastable_bias(&[], &[1]).is_err());
    }
}
