//! Const-generic typed views: compile-time shapes over dynamic buffers.
//!
//! The workspace's model zoo is heterogeneous at the *fleet* level but
//! every individual architecture runs a fixed set of layer shapes through
//! [`crate::ops::gemm`] thousands of times per round. This module makes
//! those shapes part of the type (the dfdx idiom: `Tensor2D<M, N>` with
//! dimensions as const generics) so that
//!
//! 1. **shape agreement is a compile-time fact** — feeding a
//!    `View2D<4, 8>` where a `View2D<8, 4>` is required, or wiring two
//!    layers with disagreeing widths in a model builder, fails to compile
//!    instead of panicking in round N;
//! 2. **runtime shape checks vanish** — a view proves `len == R * C` once
//!    at construction, so the typed GEMM wrappers enter the kernel
//!    dispatch *below* the always-on entry guards of the dynamic API;
//! 3. **kernels monomorphize per layer shape** — `K` and `N` become
//!    compile-time constants inside the instantiated wrapper.
//!
//! ## What stays dynamic
//!
//! The `StateDict`/`ModelSpec` boundary is untouched: tensors are still
//! dynamically shaped, and views *borrow* their buffers. Batch dimensions
//! are runtime values too — the `*_rows` wrappers pair a const feature
//! width with a dynamic row count (`Rows2D<C>`), which is exactly the
//! shape of a linear layer's forward/backward and of FedGKT's per-sample
//! `[n, d]`/`[n, C]` bundles.
//!
//! ## Bit-identity contract
//!
//! The typed wrappers are shims onto the *same* kernel dispatch as the
//! dynamic entry points — same backend selection, same threading, same
//! accumulation order — so typed and dynamic paths produce byte-identical
//! results. `tests/properties.rs` pins this per layout and per compute
//! format, and the scenario-level equivalence suite pins it end to end on
//! whole `RunLog`s. [`set_enabled`] exists purely as the seam those
//! comparisons (and `bench_gemm`) flip; it must never change numerics.
//!
//! ## Example
//!
//! ```
//! use fedzkt_tensor::typed::{View2D, ViewMut2D};
//!
//! let a = [1.0f32; 6]; // [2, 3]
//! let b = [2.0f32; 12]; // [3, 4]
//! let mut out = [0.0f32; 8]; // [2, 4]
//! fedzkt_tensor::typed::gemm_nn(
//!     View2D::<2, 3>::new(&a),
//!     View2D::<3, 4>::new(&b),
//!     ViewMut2D::<2, 4>::new(&mut out),
//! );
//! assert_eq!(out, [6.0f32; 8]);
//! ```
//!
//! Swapping the operand shapes is a type error, not a runtime panic:
//!
//! ```compile_fail
//! use fedzkt_tensor::typed::{View2D, ViewMut2D};
//!
//! let a = [0.0f32; 32];
//! let b = [0.0f32; 32];
//! let mut out = [0.0f32; 16];
//! fedzkt_tensor::typed::gemm_nn(
//!     View2D::<4, 8>::new(&a),
//!     View2D::<4, 8>::new(&b), // must be View2D::<8, 4>: does not compile
//!     ViewMut2D::<4, 4>::new(&mut out),
//! );
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

use crate::compute::{current_format, ComputeFormat};
use crate::ops::gemm;

/// Whether the statically-shaped fast paths are taken by the layers that
/// thread them under dynamic APIs (`fedzkt-nn` linear layers, the fused
/// conv panels, codec stride loops). Defaults to `true`.
static TYPED_ENABLED: AtomicBool = AtomicBool::new(true);

/// Toggle the typed fast paths (default: enabled).
///
/// This is a test/bench seam, not a tuning knob: the typed and dynamic
/// paths are bit-identical by contract, and the equivalence suites flip
/// this switch to prove it on whole runs. Global and racy-by-design
/// (relaxed atomic) — flip it only from test or bench harness code, around
/// whole runs, never mid-computation.
pub fn set_enabled(on: bool) {
    TYPED_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether layers should take the typed fast paths. See [`set_enabled`].
pub fn enabled() -> bool {
    TYPED_ENABLED.load(Ordering::Relaxed)
}

#[cold]
#[inline(never)]
fn view_panic(what: &'static str, rows: usize, cols: usize, got: usize) -> ! {
    panic!("{what}<{rows}, {cols}>: slice length {got}, expected {}", rows * cols);
}

/// Immutable `[R, C]` row-major view over an `f32` slice.
///
/// Construction proves `data.len() == R * C`; every later use of the view
/// — including the typed GEMM wrappers — relies on that invariant instead
/// of re-checking.
#[derive(Clone, Copy, Debug)]
pub struct View2D<'a, const R: usize, const C: usize> {
    data: &'a [f32],
}

impl<'a, const R: usize, const C: usize> View2D<'a, R, C> {
    /// Borrow `data` as an `[R, C]` matrix.
    ///
    /// # Panics
    /// If `data.len() != R * C` (the one check this layer ever performs,
    /// paid once per view instead of once per kernel call).
    pub fn new(data: &'a [f32]) -> Self {
        match Self::try_new(data) {
            Some(v) => v,
            None => view_panic("View2D", R, C, data.len()),
        }
    }

    /// Borrow `data` as an `[R, C]` matrix, or `None` on a length mismatch.
    pub fn try_new(data: &'a [f32]) -> Option<Self> {
        (data.len() == R * C).then_some(Self { data })
    }

    /// The underlying row-major slice (length `R * C` by construction).
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Row `i` as a fixed-size array reference.
    ///
    /// # Panics
    /// If `i >= R`.
    pub fn row(&self, i: usize) -> &'a [f32; C] {
        self.data[i * C..(i + 1) * C].try_into().expect("width proven at construction")
    }

    /// Forget the const row count, keeping the const width.
    pub fn into_rows(self) -> Rows2D<'a, C> {
        Rows2D { data: self.data, rows: R }
    }
}

/// Mutable `[R, C]` row-major view over an `f32` slice.
#[derive(Debug)]
pub struct ViewMut2D<'a, const R: usize, const C: usize> {
    data: &'a mut [f32],
}

impl<'a, const R: usize, const C: usize> ViewMut2D<'a, R, C> {
    /// Borrow `data` mutably as an `[R, C]` matrix.
    ///
    /// # Panics
    /// If `data.len() != R * C`.
    pub fn new(data: &'a mut [f32]) -> Self {
        let got = data.len();
        match Self::try_new(data) {
            Some(v) => v,
            None => view_panic("ViewMut2D", R, C, got),
        }
    }

    /// Borrow `data` mutably as an `[R, C]` matrix, or `None` on mismatch.
    pub fn try_new(data: &'a mut [f32]) -> Option<Self> {
        (data.len() == R * C).then_some(Self { data })
    }

    /// The underlying row-major slice (length `R * C` by construction).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data
    }

    /// Row `i` as a fixed-size mutable array reference.
    ///
    /// # Panics
    /// If `i >= R`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32; C] {
        (&mut self.data[i * C..(i + 1) * C]).try_into().expect("width proven at construction")
    }

    /// Reborrow, so a view can be passed to a consuming wrapper and reused.
    pub fn reborrow(&mut self) -> ViewMut2D<'_, R, C> {
        ViewMut2D { data: self.data }
    }

    /// Forget the const row count, keeping the const width.
    pub fn into_rows(self) -> RowsMut2D<'a, C> {
        RowsMut2D { data: self.data, rows: R }
    }
}

#[cold]
#[inline(never)]
fn rows_panic(what: &'static str, cols: usize, got: usize) -> ! {
    panic!("{what}<{cols}>: slice length {got} is not a multiple of the column width {cols}");
}

#[cold]
#[inline(never)]
fn rows_with_panic(what: &'static str, cols: usize, rows: usize, got: usize) -> ! {
    panic!("{what}<{cols}>: slice length {got}, expected {} for {rows} rows", rows * cols);
}

/// Immutable view with a **const column width** and a **dynamic row
/// count** — the shape of a batch: `[batch, features]`, an im2col panel's
/// `[k, FUSE_PANEL]`, a FedGKT bundle's `[n, d]`.
///
/// Construction proves `data.len() == rows * C` (deriving `rows` by exact
/// division in [`Rows2D::new`]); only row-count *agreement* between
/// operands remains a runtime fact, checked once per typed GEMM call.
#[derive(Clone, Copy, Debug)]
pub struct Rows2D<'a, const C: usize> {
    data: &'a [f32],
    rows: usize,
}

impl<'a, const C: usize> Rows2D<'a, C> {
    /// Borrow `data` as `[data.len() / C, C]`.
    ///
    /// # Panics
    /// If `data.len()` is not a multiple of `C`. Requires `C > 0` (a
    /// compile-time error otherwise); use [`Rows2D::with_rows`] for
    /// zero-width views.
    pub fn new(data: &'a [f32]) -> Self {
        const {
            assert!(C > 0, "Rows2D::new cannot infer a row count for C = 0; use with_rows");
        }
        if !data.len().is_multiple_of(C) {
            rows_panic("Rows2D", C, data.len());
        }
        Self { data, rows: data.len() / C }
    }

    /// Borrow `data` as `[rows, C]` with an explicit row count (this form
    /// also supports `C == 0`).
    ///
    /// # Panics
    /// If `data.len() != rows * C`.
    pub fn with_rows(data: &'a [f32], rows: usize) -> Self {
        if data.len() != rows * C {
            rows_with_panic("Rows2D", C, rows, data.len());
        }
        Self { data, rows }
    }

    /// Split `data` into its largest exact `[_, C]` prefix and the
    /// remainder (shorter than one row) — the fixed-stride loop helper the
    /// codecs use to walk pairs/quads with the width proven once.
    pub fn split(data: &'a [f32]) -> (Self, &'a [f32]) {
        const {
            assert!(C > 0, "Rows2D::split needs a nonzero column width");
        }
        let exact = data.len() - data.len() % C;
        let (head, tail) = data.split_at(exact);
        (Self { data: head, rows: exact / C }, tail)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The underlying row-major slice (length `rows * C` by construction).
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// Row `i` as a fixed-size array reference.
    ///
    /// # Panics
    /// If `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &'a [f32; C] {
        assert!(i < self.rows, "Rows2D<{C}>: row {i} out of {} rows", self.rows);
        self.data[i * C..i * C + C].try_into().expect("width proven at construction")
    }

    /// Iterate the rows as fixed-size array references.
    pub fn iter(&self) -> impl Iterator<Item = &'a [f32; C]> + '_ {
        (0..self.rows).map(|i| self.row(i))
    }
}

/// Mutable counterpart of [`Rows2D`]: const column width, dynamic rows.
#[derive(Debug)]
pub struct RowsMut2D<'a, const C: usize> {
    data: &'a mut [f32],
    rows: usize,
}

impl<'a, const C: usize> RowsMut2D<'a, C> {
    /// Borrow `data` mutably as `[data.len() / C, C]`.
    ///
    /// # Panics
    /// If `data.len()` is not a multiple of `C`. Requires `C > 0` (a
    /// compile-time error otherwise); use [`RowsMut2D::with_rows`] for
    /// zero-width views.
    pub fn new(data: &'a mut [f32]) -> Self {
        const {
            assert!(C > 0, "RowsMut2D::new cannot infer a row count for C = 0; use with_rows");
        }
        if !data.len().is_multiple_of(C) {
            rows_panic("RowsMut2D", C, data.len());
        }
        let rows = data.len() / C;
        Self { data, rows }
    }

    /// Borrow `data` mutably as `[rows, C]` with an explicit row count
    /// (this form also supports `C == 0`).
    ///
    /// # Panics
    /// If `data.len() != rows * C`.
    pub fn with_rows(data: &'a mut [f32], rows: usize) -> Self {
        if data.len() != rows * C {
            rows_with_panic("RowsMut2D", C, rows, data.len());
        }
        Self { data, rows }
    }

    /// Split `data` into its largest exact `[_, C]` mutable prefix and the
    /// remainder (shorter than one row).
    pub fn split(data: &'a mut [f32]) -> (Self, &'a mut [f32]) {
        const {
            assert!(C > 0, "RowsMut2D::split needs a nonzero column width");
        }
        let exact = data.len() - data.len() % C;
        let (head, tail) = data.split_at_mut(exact);
        let rows = exact / C;
        (Self { data: head, rows }, tail)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The underlying row-major slice (length `rows * C` by construction).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data
    }

    /// Row `i` as a fixed-size mutable array reference.
    ///
    /// # Panics
    /// If `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32; C] {
        assert!(i < self.rows, "RowsMut2D<{C}>: row {i} out of {} rows", self.rows);
        (&mut self.data[i * C..i * C + C]).try_into().expect("width proven at construction")
    }

    /// Iterate the rows as fixed-size mutable array references.
    ///
    /// Yields nothing for `C == 0` views (there is no data to mutate).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut [f32; C]> + '_ {
        // `chunks_exact_mut` rejects a zero chunk size; a C == 0 view holds
        // an empty slice, so `max(1)` yields the same (empty) iteration.
        self.data.chunks_exact_mut(C.max(1)).map(|c| c.try_into().expect("exact chunks"))
    }

    /// Reborrow, so a view can be passed to a consuming wrapper and reused.
    pub fn reborrow(&mut self) -> RowsMut2D<'_, C> {
        RowsMut2D { data: self.data, rows: self.rows }
    }
}

#[cold]
#[inline(never)]
fn rows_mismatch(kernel: &'static str, left: &'static str, lr: usize, right: &'static str, rr: usize) -> ! {
    panic!("{kernel}: {left} has {lr} rows but {right} has {rr}");
}

// ---------------------------------------------------------------------------
// Fully static wrappers: every dimension is a const generic, no runtime
// checks at all — lengths were proven at view construction and shape
// agreement is enforced by unification of M/K/N across the operand types.
// ---------------------------------------------------------------------------

/// Typed `out += A × B` (`A: [M, K]`, `B: [K, N]`, `out: [M, N]`) in the
/// thread-local [`ComputeFormat`] scope. Zero runtime shape checks.
pub fn gemm_nn<const M: usize, const K: usize, const N: usize>(
    a: View2D<M, K>,
    b: View2D<K, N>,
    out: ViewMut2D<M, N>,
) {
    gemm_nn_with(current_format(), a, b, out);
}

/// [`gemm_nn`] with an explicit compute format.
pub fn gemm_nn_with<const M: usize, const K: usize, const N: usize>(
    format: ComputeFormat,
    a: View2D<M, K>,
    b: View2D<K, N>,
    out: ViewMut2D<M, N>,
) {
    gemm::gemm_nn_unchecked(format, a.data, b.data, out.data, M, K, N);
}

/// Typed `out += A × Bᵀ` (`A: [M, K]`, `B: [N, K]`, `out: [M, N]`) in the
/// thread-local [`ComputeFormat`] scope. Zero runtime shape checks.
pub fn gemm_nt<const M: usize, const K: usize, const N: usize>(
    a: View2D<M, K>,
    b: View2D<N, K>,
    out: ViewMut2D<M, N>,
) {
    gemm_nt_with(current_format(), a, b, out);
}

/// [`gemm_nt`] with an explicit compute format.
pub fn gemm_nt_with<const M: usize, const K: usize, const N: usize>(
    format: ComputeFormat,
    a: View2D<M, K>,
    b: View2D<N, K>,
    out: ViewMut2D<M, N>,
) {
    gemm::gemm_nt_unchecked(format, a.data, b.data, out.data, M, K, N);
}

/// Typed `out += Aᵀ × B` (`A: [K, M]`, `B: [K, N]`, `out: [M, N]`) in the
/// thread-local [`ComputeFormat`] scope. Zero runtime shape checks.
///
/// Unlike the dynamic [`crate::ops::gemm::gemm_tn`], whose argument order
/// leads with `k`, the const parameters here keep the uniform `M, K, N`
/// order — the types carry the storage layout.
pub fn gemm_tn<const M: usize, const K: usize, const N: usize>(
    a: View2D<K, M>,
    b: View2D<K, N>,
    out: ViewMut2D<M, N>,
) {
    gemm_tn_with(current_format(), a, b, out);
}

/// [`gemm_tn`] with an explicit compute format.
pub fn gemm_tn_with<const M: usize, const K: usize, const N: usize>(
    format: ComputeFormat,
    a: View2D<K, M>,
    b: View2D<K, N>,
    out: ViewMut2D<M, N>,
) {
    gemm::gemm_tn_unchecked(format, a.data, b.data, out.data, K, M, N);
}

// ---------------------------------------------------------------------------
// Batch-dynamic wrappers: the row count (a batch or contraction size) is a
// runtime value, the feature widths are const. One row-count agreement
// compare per call is the entire runtime cost; the per-operand length
// checks are still gone.
// ---------------------------------------------------------------------------

/// Typed linear-forward product: `out += A × Bᵀ` with a dynamic batch —
/// `A: [batch, K]`, `B: [N, K]` (a weight matrix), `out: [batch, N]`.
///
/// # Panics
/// If `a` and `out` disagree on the batch row count.
pub fn gemm_nt_rows<const K: usize, const N: usize>(
    a: Rows2D<K>,
    b: View2D<N, K>,
    out: RowsMut2D<N>,
) {
    gemm_nt_rows_with(current_format(), a, b, out);
}

/// [`gemm_nt_rows`] with an explicit compute format.
pub fn gemm_nt_rows_with<const K: usize, const N: usize>(
    format: ComputeFormat,
    a: Rows2D<K>,
    b: View2D<N, K>,
    out: RowsMut2D<N>,
) {
    if a.rows != out.rows {
        rows_mismatch("gemm_nt_rows", "a", a.rows, "out", out.rows);
    }
    gemm::gemm_nt_unchecked(format, a.data, b.data, out.data, a.rows, K, N);
}

/// Typed linear-backward input gradient: `out += A × B` with a dynamic
/// batch — `A: [batch, K]`, `B: [K, N]`, `out: [batch, N]`.
///
/// # Panics
/// If `a` and `out` disagree on the batch row count.
pub fn gemm_nn_rows<const K: usize, const N: usize>(
    a: Rows2D<K>,
    b: View2D<K, N>,
    out: RowsMut2D<N>,
) {
    gemm_nn_rows_with(current_format(), a, b, out);
}

/// [`gemm_nn_rows`] with an explicit compute format.
pub fn gemm_nn_rows_with<const K: usize, const N: usize>(
    format: ComputeFormat,
    a: Rows2D<K>,
    b: View2D<K, N>,
    out: RowsMut2D<N>,
) {
    if a.rows != out.rows {
        rows_mismatch("gemm_nn_rows", "a", a.rows, "out", out.rows);
    }
    gemm::gemm_nn_unchecked(format, a.data, b.data, out.data, a.rows, K, N);
}

/// Typed linear-backward weight gradient: `out += Aᵀ × B` with a dynamic
/// contraction (the batch) — `A: [batch, M]`, `B: [batch, N]`,
/// `out: [M, N]`.
///
/// # Panics
/// If `a` and `b` disagree on the batch row count.
pub fn gemm_tn_rows<const M: usize, const N: usize>(
    a: Rows2D<M>,
    b: Rows2D<N>,
    out: ViewMut2D<M, N>,
) {
    gemm_tn_rows_with(current_format(), a, b, out);
}

/// [`gemm_tn_rows`] with an explicit compute format.
pub fn gemm_tn_rows_with<const M: usize, const N: usize>(
    format: ComputeFormat,
    a: Rows2D<M>,
    b: Rows2D<N>,
    out: ViewMut2D<M, N>,
) {
    if a.rows != b.rows {
        rows_mismatch("gemm_tn_rows", "a", a.rows, "b", b.rows);
    }
    gemm::gemm_tn_unchecked(format, a.data, b.data, out.data, a.rows, M, N);
}

/// Typed im2col-panel product: `out += A × B` where only the panel width
/// `N` is const — `A: [m, k]` (a weight group, the one dynamic operand,
/// checked here), `B: [k, N]` (a full `FUSE_PANEL`-wide im2col panel),
/// `out: [m, N]`.
///
/// Takes an explicit format because the fused conv lowering calls it from
/// inside `par` workers, where the thread-local scope is not inherited.
///
/// # Panics
/// If `a.len() != m * k` for the `m`/`k` implied by `out`/`b` row counts.
pub fn gemm_nn_cols_with<const N: usize>(
    format: ComputeFormat,
    a: &[f32],
    b: Rows2D<N>,
    out: RowsMut2D<N>,
) {
    let (m, k) = (out.rows, b.rows);
    if a.len() != m * k {
        rows_with_panic("gemm_nn_cols: a as Rows2D", k, m, a.len());
    }
    gemm::gemm_nn_unchecked(format, a, b.data, out.data, m, k, N);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::gemm::{gemm_nn as dyn_nn, gemm_nt as dyn_nt, gemm_tn as dyn_tn};
    use crate::{seeded_rng, Tensor};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        Tensor::randn(&[len.max(1)], &mut seeded_rng(seed)).data()[..len].to_vec()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn typed_nn_bit_identical_to_dynamic() {
        const M: usize = 5;
        const K: usize = 7;
        const N: usize = 3;
        let a = rand_vec(M * K, 1);
        let b = rand_vec(K * N, 2);
        let mut typed = vec![0.5f32; M * N];
        let mut dynamic = typed.clone();
        gemm_nn(View2D::<M, K>::new(&a), View2D::<K, N>::new(&b), ViewMut2D::new(&mut typed));
        dyn_nn(&a, &b, &mut dynamic, M, K, N);
        assert_eq!(bits(&typed), bits(&dynamic));
    }

    #[test]
    fn typed_nt_and_tn_bit_identical_to_dynamic() {
        const M: usize = 4;
        const K: usize = 9;
        const N: usize = 16;
        let a = rand_vec(M * K, 3);
        let bt = rand_vec(N * K, 4);
        let mut typed = vec![0.0f32; M * N];
        let mut dynamic = typed.clone();
        gemm_nt(View2D::<M, K>::new(&a), View2D::<N, K>::new(&bt), ViewMut2D::new(&mut typed));
        dyn_nt(&a, &bt, &mut dynamic, M, K, N);
        assert_eq!(bits(&typed), bits(&dynamic));

        let at = rand_vec(K * M, 5);
        let b = rand_vec(K * N, 6);
        let mut typed = vec![-1.0f32; M * N];
        let mut dynamic = typed.clone();
        gemm_tn(View2D::<K, M>::new(&at), View2D::<K, N>::new(&b), ViewMut2D::new(&mut typed));
        dyn_tn(&at, &b, &mut dynamic, K, M, N);
        assert_eq!(bits(&typed), bits(&dynamic));
    }

    /// Zero-extent edge cases per transpose variant: an empty output
    /// (`M == 0` / `N == 0`) and an empty contraction (`K == 0`) must be
    /// well-defined no-ops under the accumulate contract.
    #[test]
    fn zero_extent_static_views() {
        // M == 0: no output rows.
        gemm_nn(View2D::<0, 3>::new(&[]), View2D::<3, 4>::new(&[1.0; 12]), ViewMut2D::new(&mut []));
        // K == 0: accumulate nothing, output untouched.
        let mut out = [7.0f32; 12];
        gemm_nn(View2D::<3, 0>::new(&[]), View2D::<0, 4>::new(&[]), ViewMut2D::new(&mut out));
        assert_eq!(out, [7.0f32; 12]);
        let mut out = [2.0f32; 12];
        gemm_nt(View2D::<3, 0>::new(&[]), View2D::<4, 0>::new(&[]), ViewMut2D::new(&mut out));
        assert_eq!(out, [2.0f32; 12]);
        let mut out = [-3.0f32; 12];
        gemm_tn(View2D::<0, 3>::new(&[]), View2D::<0, 4>::new(&[]), ViewMut2D::new(&mut out));
        assert_eq!(out, [-3.0f32; 12]);
        // N == 0: zero-width output.
        gemm_nt(View2D::<3, 2>::new(&[1.0; 6]), View2D::<0, 2>::new(&[]), ViewMut2D::new(&mut []));
        gemm_tn(View2D::<2, 3>::new(&[1.0; 6]), View2D::<2, 0>::new(&[]), ViewMut2D::new(&mut []));
    }

    /// Zero-extent rows views: the `n = 0` FedGKT bundle shape (`[0, d]`)
    /// through every batch-dynamic wrapper.
    #[test]
    fn zero_extent_rows_views() {
        let w = rand_vec(6, 7); // [3, 2] or [2, 3] weight as needed
        gemm_nt_rows(Rows2D::<2>::new(&[]), View2D::<3, 2>::new(&w), RowsMut2D::<3>::new(&mut []));
        gemm_nn_rows(Rows2D::<2>::new(&[]), View2D::<2, 3>::new(&w), RowsMut2D::<3>::new(&mut []));
        // Empty batch as contraction: dW accumulates nothing.
        let mut dw = [4.0f32; 6];
        gemm_tn_rows(Rows2D::<2>::new(&[]), Rows2D::<3>::new(&[]), ViewMut2D::<2, 3>::new(&mut dw));
        assert_eq!(dw, [4.0f32; 6]);
        // Zero-width rows via with_rows (C == 0 with a positive row count).
        let empty = Rows2D::<0>::with_rows(&[], 5);
        assert_eq!(empty.rows(), 5);
        assert_eq!(empty.row(3), &[0.0f32; 0]);
        // Panel wrapper with zero panel rows (k == 0) and zero out rows.
        let mut og = [9.0f32; 8];
        gemm_nn_cols_with(
            ComputeFormat::F32,
            &[],
            Rows2D::<4>::new(&[]),
            RowsMut2D::<4>::new(&mut og),
        );
        assert_eq!(og, [9.0f32; 8]);
        gemm_nn_cols_with(
            ComputeFormat::F32,
            &[],
            Rows2D::<4>::new(&w[..4]),
            RowsMut2D::<4>::new(&mut []),
        );
    }

    #[test]
    fn rows_wrappers_bit_identical_to_dynamic() {
        const K: usize = 6;
        const N: usize = 5;
        for m in [1usize, 3, 17] {
            let x = rand_vec(m * K, 10 + m as u64);
            let w = rand_vec(N * K, 20 + m as u64);
            let mut typed = vec![0.25f32; m * N];
            let mut dynamic = typed.clone();
            gemm_nt_rows(Rows2D::<K>::new(&x), View2D::<N, K>::new(&w), RowsMut2D::new(&mut typed));
            dyn_nt(&x, &w, &mut dynamic, m, K, N);
            assert_eq!(bits(&typed), bits(&dynamic), "nt m={m}");

            let g = rand_vec(m * K, 30 + m as u64);
            let wf = rand_vec(K * N, 40 + m as u64);
            let mut typed = vec![0.0f32; m * N];
            let mut dynamic = typed.clone();
            gemm_nn_rows(
                Rows2D::<K>::new(&g),
                View2D::<K, N>::new(&wf),
                RowsMut2D::new(&mut typed),
            );
            dyn_nn(&g, &wf, &mut dynamic, m, K, N);
            assert_eq!(bits(&typed), bits(&dynamic), "nn m={m}");

            let gk = rand_vec(m * K, 50 + m as u64);
            let xn = rand_vec(m * N, 60 + m as u64);
            let mut typed = vec![1.5f32; K * N];
            let mut dynamic = typed.clone();
            gemm_tn_rows(Rows2D::<K>::new(&gk), Rows2D::<N>::new(&xn), ViewMut2D::new(&mut typed));
            dyn_tn(&gk, &xn, &mut dynamic, m, K, N);
            assert_eq!(bits(&typed), bits(&dynamic), "tn m={m}");
        }
    }

    #[test]
    fn view_constructors_panic_with_shape_message() {
        let err = std::panic::catch_unwind(|| View2D::<2, 3>::new(&[0.0; 5])).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("View2D<2, 3>") && msg.contains('5'), "{msg}");
        let err = std::panic::catch_unwind(|| Rows2D::<4>::new(&[0.0; 6])).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("Rows2D<4>") && msg.contains('6'), "{msg}");
        assert!(View2D::<2, 3>::try_new(&[0.0; 6]).is_some());
        assert!(View2D::<2, 3>::try_new(&[0.0; 7]).is_none());
    }

    #[test]
    fn rows_mismatch_panics_with_row_counts() {
        let err = std::panic::catch_unwind(|| {
            let x = [0.0f32; 6]; // 3 rows of 2
            let w = [0.0f32; 6]; // View2D<3, 2>
            let mut out = [0.0f32; 6]; // 2 rows of 3: disagrees with x's 3 rows
            gemm_nt_rows(
                Rows2D::<2>::new(&x),
                View2D::<3, 2>::new(&w),
                RowsMut2D::<3>::new(&mut out),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("gemm_nt_rows") && msg.contains('3') && msg.contains('2'), "{msg}");
    }

    #[test]
    fn split_walks_exact_prefix_and_remainder() {
        let data = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let (pairs, tail) = Rows2D::<2>::split(&data);
        assert_eq!(pairs.rows(), 2);
        assert_eq!(pairs.row(0), &[1.0, 2.0]);
        assert_eq!(pairs.row(1), &[3.0, 4.0]);
        assert_eq!(tail, &[5.0]);
        assert_eq!(pairs.iter().count(), 2);

        let mut data = [0.0f32; 5];
        let (mut pairs, tail) = RowsMut2D::<2>::split(&mut data);
        for (i, row) in pairs.iter_mut().enumerate() {
            row[0] = i as f32;
            row[1] = -(i as f32);
        }
        tail[0] = 9.0;
        assert_eq!(data, [0.0, -0.0, 1.0, -1.0, 9.0]);
    }

    #[test]
    fn toggle_round_trips() {
        assert!(enabled(), "typed paths default to enabled");
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
