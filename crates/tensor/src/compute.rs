//! Selectable numeric formats for the dense compute kernels.
//!
//! The GEMM layer (`crate::ops::gemm`) can evaluate matrix products either in
//! plain `f32` or in a quantized int8 format (`i8 × i8 → i32` integer dot with
//! an `f32` affine correction — see `ops::gemm::int8`). Training always runs in
//! `f32`; the int8 format exists for inference-heavy phases (server-side
//! distillation scoring, accuracy evaluation) where the activations and
//! weights tolerate 8-bit affine quantization and the integer kernel is
//! faster on wide machines.
//!
//! The active format is a **thread-local scope**, not a global: callers wrap
//! an inference region in [`with_format`] and every GEMM issued from that
//! thread inside the closure uses the requested format. Worker threads forked
//! by `crate::par` do **not** inherit the scope — the GEMM entry points
//! resolve the format *once on the calling thread* before partitioning work,
//! so a parallel product still computes uniformly in the scoped format. Code
//! that dispatches GEMMs from inside `par` workers (e.g. the fused conv
//! lowering) must capture [`current_format`] outside the worker and call the
//! explicit `gemm_*_with` variants.

use std::cell::Cell;

/// Numeric format used by the GEMM kernels for a scoped region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ComputeFormat {
    /// IEEE single precision everywhere — the default, used for all training.
    #[default]
    F32,
    /// Per-tensor affine int8 quantization of both operands with an exact
    /// `i32` integer dot and `f32` affine correction. Inference only: the
    /// quantization error (bounded by the codec-style `scale/2` per element)
    /// is acceptable for scoring but would corrupt gradient accumulation.
    Int8,
}

impl ComputeFormat {
    /// Canonical lower-case name, matching the scenario JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            ComputeFormat::F32 => "f32",
            ComputeFormat::Int8 => "int8",
        }
    }

    /// Parse the canonical name produced by [`ComputeFormat::as_str`].
    pub fn parse(s: &str) -> Option<ComputeFormat> {
        match s {
            "f32" => Some(ComputeFormat::F32),
            "int8" => Some(ComputeFormat::Int8),
            _ => None,
        }
    }
}

thread_local! {
    static ACTIVE: Cell<ComputeFormat> = const { Cell::new(ComputeFormat::F32) };
}

/// The compute format active on this thread ([`ComputeFormat::F32`] unless
/// inside a [`with_format`] scope).
pub fn current_format() -> ComputeFormat {
    ACTIVE.with(Cell::get)
}

/// Run `f` with `format` active on this thread, restoring the previous format
/// afterwards (including on unwind). Scopes nest; the innermost wins.
pub fn with_format<R>(format: ComputeFormat, f: impl FnOnce() -> R) -> R {
    struct Restore(ComputeFormat);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(ACTIVE.with(|c| c.replace(format)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_f32() {
        assert_eq!(current_format(), ComputeFormat::F32);
        assert_eq!(ComputeFormat::default(), ComputeFormat::F32);
    }

    #[test]
    fn scopes_nest_and_restore() {
        with_format(ComputeFormat::Int8, || {
            assert_eq!(current_format(), ComputeFormat::Int8);
            with_format(ComputeFormat::F32, || {
                assert_eq!(current_format(), ComputeFormat::F32);
            });
            assert_eq!(current_format(), ComputeFormat::Int8);
        });
        assert_eq!(current_format(), ComputeFormat::F32);
    }

    #[test]
    fn scope_restores_on_unwind() {
        let caught = std::panic::catch_unwind(|| {
            with_format(ComputeFormat::Int8, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(current_format(), ComputeFormat::F32);
    }

    #[test]
    fn parse_roundtrips() {
        for f in [ComputeFormat::F32, ComputeFormat::Int8] {
            assert_eq!(ComputeFormat::parse(f.as_str()), Some(f));
        }
        assert_eq!(ComputeFormat::parse("fp16"), None);
    }

    #[test]
    fn scope_is_thread_local() {
        with_format(ComputeFormat::Int8, || {
            let seen = std::thread::spawn(current_format).join().unwrap();
            assert_eq!(seen, ComputeFormat::F32);
        });
    }
}
