//! Property-based tests for the tensor substrate.

use fedzkt_tensor::ops::{col2im, im2col, Conv2dGeometry};
use fedzkt_tensor::{conv_output_size, seeded_rng, Tensor};
use proptest::prelude::*;

fn small_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, proptest::collection::vec(-10.0f32..10.0, max_dim * max_dim))
        .prop_map(|(r, c, mut data)| {
            data.truncate(r * c);
            while data.len() < r * c {
                data.push(0.5);
            }
            Tensor::from_vec(data, &[r, c]).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in small_tensor(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(a in small_tensor(6)) {
        let b = a.map(|x| x.sin());
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_scalar_distributes(a in small_tensor(5), s in -3.0f32..3.0) {
        let lhs = a.add(&a).unwrap().mul_scalar(s);
        let rhs = a.mul_scalar(s).add(&a.mul_scalar(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_preserves_data(a in small_tensor(5)) {
        let n = a.len();
        let r = a.reshape(&[n]).unwrap();
        prop_assert_eq!(r.data(), a.data());
    }

    #[test]
    fn softmax_rows_is_a_distribution(a in small_tensor(6)) {
        let s = a.softmax_rows().unwrap();
        let d = a.shape()[1];
        for row in 0..a.shape()[0] {
            let slice = &s.data()[row * d..(row + 1) * d];
            let sum: f32 = slice.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(slice.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in small_tensor(5), shift in -50.0f32..50.0) {
        let s1 = a.softmax_rows().unwrap();
        let s2 = a.add_scalar(shift).softmax_rows().unwrap();
        for (x, y) in s1.data().iter().zip(s2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..500) {
        let mut rng = seeded_rng(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let c = Tensor::randn(&[4, 2], &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500) {
        // (A B)^T == B^T A^T
        let mut rng = seeded_rng(seed);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose2d().unwrap();
        let rhs = b
            .transpose2d().unwrap()
            .matmul(&a.transpose2d().unwrap())
            .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_output_size_monotone_in_padding(
        input in 3usize..24, kernel in 1usize..4, stride in 1usize..3, pad in 0usize..3,
    ) {
        prop_assume!(input + 2 * pad >= kernel);
        let base = conv_output_size(input, kernel, stride, pad).unwrap();
        let more = conv_output_size(input, kernel, stride, pad + 1).unwrap();
        prop_assert!(more >= base);
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..200, c in 1usize..3, h in 3usize..8, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k);
        let g = Conv2dGeometry::new(c, h, h, k, k, stride, pad).unwrap();
        let mut rng = seeded_rng(seed);
        let x = Tensor::randn(&[g.input_len()], &mut rng);
        let y = Tensor::randn(&[g.col_rows() * g.col_cols()], &mut rng);
        let lhs: f32 = im2col(x.data(), &g).iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(y.data(), &g)).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn gather_matches_slice(start in 0usize..3, len in 1usize..3) {
        let t = Tensor::from_vec((0..30).map(|x| x as f32).collect(), &[6, 5]).unwrap();
        let end = (start + len).min(6);
        let idx: Vec<usize> = (start..end).collect();
        let gathered = t.gather_first(&idx).unwrap();
        let sliced = t.slice_first(start, end).unwrap();
        prop_assert_eq!(gathered.data(), sliced.data());
    }
}
