//! Property-based tests for the tensor substrate.

use fedzkt_tensor::ops::quant::{quant_range, Q8_LEVELS};
use fedzkt_tensor::ops::{col2im, gemm, im2col, Conv2dGeometry};
use fedzkt_tensor::typed::{self, Rows2D, RowsMut2D, View2D, ViewMut2D};
use fedzkt_tensor::{conv_output_size, seeded_rng, ComputeFormat, Tensor};
use proptest::prelude::*;

fn small_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, proptest::collection::vec(-10.0f32..10.0, max_dim * max_dim))
        .prop_map(|(r, c, mut data)| {
            data.truncate(r * c);
            while data.len() < r * c {
                data.push(0.5);
            }
            Tensor::from_vec(data, &[r, c]).unwrap()
        })
}

/// Zero-initialized `len`-element output run through `f` (the GEMM
/// contract is accumulate-into).
fn run_f32(f: impl FnOnce(&mut [f32]), len: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; len];
    f(&mut out);
    out
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// f64 triple-loop `A[m,k] × B[k,n]` reference.
fn naive_nn64(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for t in 0..k {
            let av = f64::from(a[i * k + t]);
            for j in 0..n {
                out[i * n + j] += av * f64::from(b[t * n + j]);
            }
        }
    }
    out
}

/// f64 triple-loop `A[m,k] × B[n,k]ᵀ` reference.
fn naive_nt64(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            for t in 0..k {
                out[i * n + j] += f64::from(a[i * k + t]) * f64::from(b[j * k + t]);
            }
        }
    }
    out
}

/// f64 triple-loop `A[k,m]ᵀ × B[k,n]` reference.
fn naive_tn64(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; m * n];
    for t in 0..k {
        for i in 0..m {
            let av = f64::from(a[t * m + i]);
            for j in 0..n {
                out[i * n + j] += av * f64::from(b[t * n + j]);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(a in small_tensor(6)) {
        let b = a.map(|x| x * 0.5 - 1.0);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(a in small_tensor(6)) {
        let b = a.map(|x| x.sin());
        let back = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn mul_scalar_distributes(a in small_tensor(5), s in -3.0f32..3.0) {
        let lhs = a.add(&a).unwrap().mul_scalar(s);
        let rhs = a.mul_scalar(s).add(&a.mul_scalar(s)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn reshape_preserves_data(a in small_tensor(5)) {
        let n = a.len();
        let r = a.reshape(&[n]).unwrap();
        prop_assert_eq!(r.data(), a.data());
    }

    #[test]
    fn softmax_rows_is_a_distribution(a in small_tensor(6)) {
        let s = a.softmax_rows().unwrap();
        let d = a.shape()[1];
        for row in 0..a.shape()[0] {
            let slice = &s.data()[row * d..(row + 1) * d];
            let sum: f32 = slice.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(slice.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in small_tensor(5), shift in -50.0f32..50.0) {
        let s1 = a.softmax_rows().unwrap();
        let s2 = a.add_scalar(shift).softmax_rows().unwrap();
        for (x, y) in s1.data().iter().zip(s2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_add(seed in 0u64..500) {
        let mut rng = seeded_rng(seed);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 2], &mut rng);
        let c = Tensor::randn(&[4, 2], &mut rng);
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500) {
        // (A B)^T == B^T A^T
        let mut rng = seeded_rng(seed);
        let a = Tensor::randn(&[3, 5], &mut rng);
        let b = Tensor::randn(&[5, 4], &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose2d().unwrap();
        let rhs = b
            .transpose2d().unwrap()
            .matmul(&a.transpose2d().unwrap())
            .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn conv_output_size_monotone_in_padding(
        input in 3usize..24, kernel in 1usize..4, stride in 1usize..3, pad in 0usize..3,
    ) {
        prop_assume!(input + 2 * pad >= kernel);
        let base = conv_output_size(input, kernel, stride, pad).unwrap();
        let more = conv_output_size(input, kernel, stride, pad + 1).unwrap();
        prop_assert!(more >= base);
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..200, c in 1usize..3, h in 3usize..8, k in 1usize..4,
        stride in 1usize..3, pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k);
        let g = Conv2dGeometry::new(c, h, h, k, k, stride, pad).unwrap();
        let mut rng = seeded_rng(seed);
        let x = Tensor::randn(&[g.input_len()], &mut rng);
        let y = Tensor::randn(&[g.col_rows() * g.col_cols()], &mut rng);
        let lhs: f32 = im2col(x.data(), &g).iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data().iter().zip(col2im(y.data(), &g)).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn gemm_variants_match_naive_reference(
        seed in 0u64..500, m in 0usize..34, k in 0usize..34, n in 0usize..34,
    ) {
        // Shapes deliberately sweep 0 (empty), 1 (degenerate) and sizes
        // not divisible by the microkernel lane/tile widths (8/16), so
        // every remainder path in the vectorized kernels is exercised.
        let mut rng = seeded_rng(seed);
        let a_nn = Tensor::randn(&[m.max(1), k.max(1)], &mut rng);
        let b_nn = Tensor::randn(&[k.max(1), n.max(1)], &mut rng);
        let a = &a_nn.data()[..m * k];
        let b = &b_nn.data()[..k * n];
        let bt = &b_nn.data()[..n * k]; // reinterpret as [n, k] for nt
        let at = &a_nn.data()[..k * m]; // reinterpret as [k, m] for tn

        for (label, out, reference) in [
            ("nn", run_f32(|o| gemm::gemm_nn(a, b, o, m, k, n), m * n), naive_nn64(a, b, m, k, n)),
            ("nt", run_f32(|o| gemm::gemm_nt(a, bt, o, m, k, n), m * n), naive_nt64(a, bt, m, k, n)),
            ("tn", run_f32(|o| gemm::gemm_tn(at, b, o, k, m, n), m * n), naive_tn64(at, b, k, m, n)),
        ] {
            for (&x, &r) in out.iter().zip(&reference) {
                prop_assert!(
                    (f64::from(x) - r).abs() < 1e-3 * (1.0 + r.abs()),
                    "{label}: {x} vs {r} at m={m} k={k} n={n}"
                );
            }
        }

        // The dispatched nn/tn paths promise bit-identity with the scalar
        // reference kernels (the nt reduction tree is documented to differ).
        let s_nn = run_f32(|o| gemm::scalar::gemm_nn(a, b, o, m, k, n), m * n);
        let d_nn = run_f32(|o| gemm::gemm_nn(a, b, o, m, k, n), m * n);
        prop_assert_eq!(bits(&s_nn), bits(&d_nn), "nn dispatch drifted from scalar");
        let s_tn = run_f32(|o| gemm::scalar::gemm_tn(at, b, o, k, m, n), m * n);
        let d_tn = run_f32(|o| gemm::gemm_tn(at, b, o, k, m, n), m * n);
        prop_assert_eq!(bits(&s_tn), bits(&d_tn), "tn dispatch drifted from scalar");
    }

    #[test]
    fn int8_gemm_error_is_within_accumulated_quant_bound(
        seed in 0u64..500, m in 0usize..20, k in 0usize..34, n in 0usize..20,
    ) {
        // Per element the codec quantization error is scale/2 (see the
        // roundtrip test in ops::quant); accumulated over the contraction
        // the product error is bounded by
        //   k · (sA·bmax/2 + amax·sB/2 + sA·sB/4),
        // plus a small slack for the f32/f64 rounding in the affine
        // correction and the reference itself.
        let mut rng = seeded_rng(seed);
        let a_t = Tensor::randn(&[m.max(1), k.max(1)], &mut rng);
        let b_t = Tensor::randn(&[k.max(1), n.max(1)], &mut rng);
        let a = &a_t.data()[..m * k];
        let b = &b_t.data()[..k * n];
        let out = run_f32(|o| gemm::gemm_nn_with(ComputeFormat::Int8, a, b, o, m, k, n), m * n);
        let reference = naive_nn64(a, b, m, k, n);
        let (_, sa) = quant_range(a, Q8_LEVELS);
        let (_, sb) = quant_range(b, Q8_LEVELS);
        let amax = a.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let bmax = b.iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let (sa, sb, amax, bmax) =
            (f64::from(sa), f64::from(sb), f64::from(amax), f64::from(bmax));
        let bound = k as f64 * (sa * bmax / 2.0 + amax * sb / 2.0 + sa * sb / 4.0);
        for (&x, &r) in out.iter().zip(&reference) {
            let tol = bound * 1.001 + 1e-4 * (1.0 + r.abs());
            prop_assert!(
                (f64::from(x) - r).abs() <= tol,
                "int8: {x} vs {r}, bound {bound} at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn typed_matches_dynamic_bitwise(
        seed in 0u64..500, shape_idx in 0usize..12, batch in 0usize..20, fmt in 0usize..2,
    ) {
        // The typed shims promise *bit* identity with the dynamic entries:
        // they land on the same `gemm_*_unchecked` dispatch with the same
        // `(m, k, n)`, so not a single rounding step may differ. Checked
        // for all three layouts and both compute formats, over a shape
        // table that sweeps zero extents, degenerate 1s, and sizes off the
        // microkernel lane/tile widths — plus the batch-dynamic `*_rows`
        // wrapper with a random batch.
        let format = if fmt == 1 { ComputeFormat::Int8 } else { ComputeFormat::F32 };
        macro_rules! case {
            ($m:literal, $k:literal, $n:literal) => {{
                const M: usize = $m;
                const K: usize = $k;
                const N: usize = $n;
                let mut rng = seeded_rng(seed);
                let a_t = Tensor::randn(&[(M * K).max(1)], &mut rng);
                let b_t = Tensor::randn(&[(K * N).max(1)], &mut rng);
                let bt_t = Tensor::randn(&[(N * K).max(1)], &mut rng);
                let at_t = Tensor::randn(&[(K * M).max(1)], &mut rng);
                let ab_t = Tensor::randn(&[(batch * K).max(1)], &mut rng);
                let a = &a_t.data()[..M * K];
                let b = &b_t.data()[..K * N];
                let bt = &bt_t.data()[..N * K];
                let at = &at_t.data()[..K * M];
                let ab = &ab_t.data()[..batch * K];

                let d_nn = run_f32(|o| gemm::gemm_nn_with(format, a, b, o, M, K, N), M * N);
                let t_nn = run_f32(
                    |o| typed::gemm_nn_with::<M, K, N>(
                        format, View2D::new(a), View2D::new(b), ViewMut2D::new(o),
                    ),
                    M * N,
                );
                prop_assert_eq!(bits(&d_nn), bits(&t_nn), "nn m={} k={} n={}", M, K, N);

                let d_nt = run_f32(|o| gemm::gemm_nt_with(format, a, bt, o, M, K, N), M * N);
                let t_nt = run_f32(
                    |o| typed::gemm_nt_with::<M, K, N>(
                        format, View2D::new(a), View2D::new(bt), ViewMut2D::new(o),
                    ),
                    M * N,
                );
                prop_assert_eq!(bits(&d_nt), bits(&t_nt), "nt m={} k={} n={}", M, K, N);

                let d_tn = run_f32(|o| gemm::gemm_tn_with(format, at, b, o, K, M, N), M * N);
                let t_tn = run_f32(
                    |o| typed::gemm_tn_with::<M, K, N>(
                        format, View2D::new(at), View2D::new(b), ViewMut2D::new(o),
                    ),
                    M * N,
                );
                prop_assert_eq!(bits(&d_tn), bits(&t_tn), "tn m={} k={} n={}", M, K, N);

                let d_rows =
                    run_f32(|o| gemm::gemm_nt_with(format, ab, bt, o, batch, K, N), batch * N);
                let t_rows = run_f32(
                    |o| typed::gemm_nt_rows_with::<K, N>(
                        format,
                        Rows2D::with_rows(ab, batch),
                        View2D::new(bt),
                        RowsMut2D::with_rows(o, batch),
                    ),
                    batch * N,
                );
                prop_assert_eq!(
                    bits(&d_rows), bits(&t_rows), "nt_rows batch={} k={} n={}", batch, K, N
                );
            }};
        }
        match shape_idx {
            0 => case!(0, 3, 4),
            1 => case!(3, 0, 4),
            2 => case!(3, 4, 0),
            3 => case!(1, 1, 1),
            4 => case!(2, 3, 4),
            5 => case!(5, 8, 3),
            6 => case!(8, 8, 8),
            7 => case!(7, 16, 9),
            8 => case!(17, 5, 33),
            9 => case!(12, 34, 7),
            10 => case!(33, 9, 17),
            _ => case!(4, 64, 10),
        }
    }

    #[test]
    fn gather_matches_slice(start in 0usize..3, len in 1usize..3) {
        let t = Tensor::from_vec((0..30).map(|x| x as f32).collect(), &[6, 5]).unwrap();
        let end = (start + len).min(6);
        let idx: Vec<usize> = (start..end).collect();
        let gathered = t.gather_first(&idx).unwrap();
        let sliced = t.slice_first(start, end).unwrap();
        prop_assert_eq!(gathered.data(), sliced.data());
    }
}
