//! Regression tests for the always-on GEMM shape guards.
//!
//! The `debug_assert_eq!` length guards in `ops::gemm` were compiled out
//! of release builds, so a mis-sized operand silently read or wrote out
//! of whatever the slice happened to hold (issue: release-mode GEMM shape
//! checks missing). The guards are now unconditional entry asserts; these
//! tests pin that they fire **in every build profile** — CI runs this
//! file under `--release` — and that the panic message names the kernel,
//! the offending operand, and the full `(m, k, n)` problem size.

use std::panic::{catch_unwind, AssertUnwindSafe};

use fedzkt_tensor::ops::gemm;

/// Run `f` and return the panic payload as a string; panics if `f` does
/// not panic.
fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = catch_unwind(f).expect_err("expected a shape panic");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string")
}

#[test]
fn gemm_nn_rejects_mis_sized_out_with_shape_message() {
    // The headline case from the issue: `out` one element short. In the
    // old release build this wrote m·n − 1 elements and silently dropped
    // the last row's tail; now it must panic before touching anything.
    let a = vec![1.0f32; 3 * 4];
    let b = vec![1.0f32; 4 * 5];
    let mut out = vec![0.0f32; 3 * 5 - 1];
    let msg = panic_message(AssertUnwindSafe(|| {
        gemm::gemm_nn(&a, &b, &mut out, 3, 4, 5);
    }));
    assert!(msg.contains("gemm_nn"), "{msg}");
    assert!(msg.contains("out.len() = 14"), "{msg}");
    assert!(msg.contains("expected 15"), "{msg}");
    assert!(msg.contains("(m=3, k=4, n=5)"), "{msg}");
}

#[test]
fn gemm_nn_rejects_mis_sized_a_and_b() {
    let good_a = vec![0.0f32; 2 * 3];
    let good_b = vec![0.0f32; 3 * 4];
    let short_a = vec![0.0f32; 2 * 3 - 2];
    let short_b = vec![0.0f32; 3 * 4 + 1];

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_nn(&short_a, &good_b, &mut out, 2, 3, 4);
    }));
    assert!(msg.contains("gemm_nn") && msg.contains("a.len() = 4"), "{msg}");

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_nn(&good_a, &short_b, &mut out, 2, 3, 4);
    }));
    assert!(msg.contains("gemm_nn") && msg.contains("b.len() = 13"), "{msg}");
}

#[test]
fn gemm_nt_rejects_mis_sized_operands() {
    // B is stored [n, k] here; the guard must use the transposed extent.
    let a = vec![0.0f32; 2 * 3];
    let bt = vec![0.0f32; 4 * 3];

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_nt(&a[..5], &bt, &mut out, 2, 3, 4);
    }));
    assert!(msg.contains("gemm_nt") && msg.contains("a.len() = 5"), "{msg}");

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_nt(&a, &bt[..11], &mut out, 2, 3, 4);
    }));
    assert!(msg.contains("gemm_nt") && msg.contains("b.len() = 11"), "{msg}");

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4 + 3];
        gemm::gemm_nt(&a, &bt, &mut out, 2, 3, 4);
    }));
    assert!(msg.contains("gemm_nt") && msg.contains("out.len() = 11"), "{msg}");
    assert!(msg.contains("(m=2, k=3, n=4)"), "{msg}");
}

#[test]
fn gemm_tn_rejects_mis_sized_operands() {
    // A is stored [k, m] and the dynamic argument order leads with k;
    // the message must still report the logical (m, k, n).
    let at = vec![0.0f32; 3 * 2];
    let b = vec![0.0f32; 3 * 4];

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_tn(&at[..4], &b, &mut out, 3, 2, 4);
    }));
    assert!(msg.contains("gemm_tn") && msg.contains("a.len() = 4"), "{msg}");
    assert!(msg.contains("expected 6"), "{msg}");
    assert!(msg.contains("(m=2, k=3, n=4)"), "{msg}");

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 2 * 4];
        gemm::gemm_tn(&at, &b[..7], &mut out, 3, 2, 4);
    }));
    assert!(msg.contains("gemm_tn") && msg.contains("b.len() = 7"), "{msg}");

    let msg = panic_message(AssertUnwindSafe(|| {
        let mut out = vec![0.0f32; 0];
        gemm::gemm_tn(&at, &b, &mut out, 3, 2, 4);
    }));
    assert!(msg.contains("gemm_tn") && msg.contains("out.len() = 0"), "{msg}");
}

#[test]
fn guards_fire_for_both_compute_formats() {
    use fedzkt_tensor::ComputeFormat;
    // The check sits above the format dispatch, so int8 is guarded too.
    let a = vec![0.0f32; 2 * 2];
    let b = vec![0.0f32; 2 * 2];
    for format in [ComputeFormat::F32, ComputeFormat::Int8] {
        let msg = panic_message(AssertUnwindSafe(|| {
            let mut out = vec![0.0f32; 3];
            gemm::gemm_nn_with(format, &a, &b, &mut out, 2, 2, 2);
        }));
        assert!(msg.contains("out.len() = 3"), "{format:?}: {msg}");
    }
}

#[test]
fn well_sized_zero_extent_calls_do_not_panic() {
    // m·n == 0 and k == 0 are valid problems, not shape errors: the
    // guards accept exactly-sized operands, including non-empty ones on
    // the extents that are still non-zero (b is [k, n] even when m == 0).
    let b = vec![0.0f32; 3 * 4];
    let mut out = vec![0.0f32; 0];
    gemm::gemm_nn(&[], &b, &mut out, 0, 3, 4);
    gemm::gemm_nt(&[], &b, &mut out, 0, 3, 4); // b reinterpreted [n=4, k=3]
    gemm::gemm_tn(&[], &b, &mut out, 3, 0, 4);
    let mut out = vec![0.5f32; 6];
    gemm::gemm_nn(&[], &[], &mut out, 2, 0, 3); // k == 0: out unchanged
    assert!(out.iter().all(|&v| v == 0.5));
}
