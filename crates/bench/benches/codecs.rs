//! Microbenchmarks of the wire-format payload codecs: encode/decode
//! throughput over a realistic on-device model state dict. Encoding sits
//! on the round's critical path for every device, so a codec that saves
//! 4× the bytes must not cost more than the transfer it avoids.

use criterion::{criterion_group, criterion_main, Criterion};
use fedzkt_fl::{CodecSpec, PayloadCodec};
use fedzkt_models::ModelSpec;
use fedzkt_nn::state_dict;
use std::hint::black_box;

/// The paper zoo's largest small-dataset member, at quickstart geometry.
fn payload() -> fedzkt_nn::StateDict {
    let model = ModelSpec::LeNet { scale: 1.0, deep: true }.build(1, 10, 12, 7);
    state_dict(model.as_ref())
}

fn codecs() -> [CodecSpec; 4] {
    [
        CodecSpec::Raw,
        CodecSpec::QuantQ8,
        CodecSpec::QuantQ4,
        CodecSpec::TopK { density: 0.1 },
    ]
}

fn bench_encode(c: &mut Criterion) {
    let sd = payload();
    let mut group = c.benchmark_group("codec_encode");
    group.sample_size(20);
    for codec in codecs() {
        group.bench_function(codec.name(), |bench| {
            bench.iter(|| black_box(codec.encode(&sd)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let sd = payload();
    let mut group = c.benchmark_group("codec_decode");
    group.sample_size(20);
    for codec in codecs() {
        let bytes = codec.encode(&sd);
        group.bench_function(codec.name(), |bench| {
            bench.iter(|| black_box(codec.decode(&bytes).expect("self-encoded payload")));
        });
    }
    group.finish();
}

criterion_group!(codec_benches, bench_encode, bench_decode);
criterion_main!(codec_benches);
