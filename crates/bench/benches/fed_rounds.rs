//! End-to-end round benchmarks: one FedZKT round (device update +
//! adversarial distillation + bidirectional transfer) vs one FedAvg round,
//! at tiny scale — the ablation for the paper's "compute-intensive work
//! lives at the server" design claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_bench::{build_workload, Tier};
use fedzkt_core::{FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::{FedAvg, FedAvgConfig};
use fedzkt_models::ModelSpec;
use std::hint::black_box;

fn bench_fedzkt_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group.sample_size(10);
    let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    group.bench_function("fedzkt_tiny", |bench| {
        bench.iter(|| {
            let mut fed = FedZkt::new(&w.zoo, &w.train, &w.shards, w.test.clone(), w.fedzkt);
            black_box(fed.round(0))
        });
    });
    group.bench_function("fedavg_tiny", |bench| {
        bench.iter(|| {
            let mut fed = FedAvg::new(
                ModelSpec::Mlp { hidden: 16 },
                &w.train,
                &w.shards,
                w.test.clone(),
                FedAvgConfig { rounds: 1, local_epochs: 1, batch_size: 16, ..Default::default() },
            );
            black_box(fed.round(0))
        });
    });
    group.finish();
}

/// Device-parallel local training across thread counts (the device update is
/// the embarrassingly parallel phase of a round; results are bit-identical
/// for every thread count, only wall-clock varies).
fn bench_round_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    group.sample_size(10);
    let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let cfg = FedZktConfig { threads: t, ..w.fedzkt };
                let mut fed = FedZkt::new(&w.zoo, &w.train, &w.shards, w.test.clone(), cfg);
                black_box(fed.round(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedzkt_round, bench_round_threads);
criterion_main!(benches);
