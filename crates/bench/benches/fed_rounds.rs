//! End-to-end round benchmarks: one FedZKT round (device update +
//! adversarial distillation + bidirectional transfer) vs one FedAvg round,
//! at tiny scale — the ablation for the paper's "compute-intensive work
//! lives at the server" design claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_core::{FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::{FedAvg, FedAvgConfig, SimConfig, Simulation};
use fedzkt_models::ModelSpec;
use fedzkt_scenario::{Materialized, Scenario, Tier};
use std::hint::black_box;

/// The tiny-tier standard scenario, materialized once per benchmark group.
fn tiny() -> (Scenario, Materialized, FedZktConfig) {
    let sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    let m = sc.materialize().expect("tiny scenario materializes");
    let cfg = *sc.fedzkt_cfg().expect("standard scenarios run fedzkt");
    (sc, m, cfg)
}

fn bench_fedzkt_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group.sample_size(10);
    let (sc, m, cfg) = tiny();
    group.bench_function("fedzkt_tiny", |bench| {
        bench.iter(|| {
            let fed = FedZkt::new(&m.zoo, &m.train, &m.shards, cfg, &sc.sim);
            let mut sim = Simulation::builder(fed, m.test.clone(), sc.sim).build();
            black_box(sim.round(0))
        });
    });
    group.bench_function("fedavg_tiny", |bench| {
        bench.iter(|| {
            let sim_cfg = SimConfig { rounds: 1, ..sc.sim };
            let fed = FedAvg::new(
                ModelSpec::Mlp { hidden: 16 },
                &m.train,
                &m.shards,
                FedAvgConfig { local_epochs: 1, batch_size: 16, ..Default::default() },
                &sim_cfg,
            );
            let mut sim = Simulation::builder(fed, m.test.clone(), sim_cfg).build();
            black_box(sim.round(0))
        });
    });
    group.finish();
}

/// Device-parallel local training across thread counts (the device update is
/// the embarrassingly parallel phase of a round; results are bit-identical
/// for every thread count, only wall-clock varies).
fn bench_round_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    group.sample_size(10);
    let (sc, m, cfg) = tiny();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let sim_cfg = SimConfig { threads: t, ..sc.sim };
                let fed = FedZkt::new(&m.zoo, &m.train, &m.shards, cfg, &sim_cfg);
                let mut sim = Simulation::builder(fed, m.test.clone(), sim_cfg).build();
                black_box(sim.round(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedzkt_round, bench_round_threads);
criterion_main!(benches);
