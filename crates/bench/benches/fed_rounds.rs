//! End-to-end round benchmarks: one FedZKT round (device update +
//! adversarial distillation + bidirectional transfer) vs one FedAvg round,
//! at tiny scale — the ablation for the paper's "compute-intensive work
//! lives at the server" design claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_bench::{build_workload, Tier};
use fedzkt_core::FedZkt;
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::{FedAvg, FedAvgConfig, SimConfig, Simulation};
use fedzkt_models::ModelSpec;
use std::hint::black_box;

fn bench_fedzkt_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group.sample_size(10);
    let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    group.bench_function("fedzkt_tiny", |bench| {
        bench.iter(|| {
            let fed = FedZkt::new(&w.zoo, &w.train, &w.shards, w.fedzkt, &w.sim);
            let mut sim = Simulation::builder(fed, w.test.clone(), w.sim).build();
            black_box(sim.round(0))
        });
    });
    group.bench_function("fedavg_tiny", |bench| {
        bench.iter(|| {
            let sim_cfg = SimConfig { rounds: 1, ..w.sim };
            let fed = FedAvg::new(
                ModelSpec::Mlp { hidden: 16 },
                &w.train,
                &w.shards,
                FedAvgConfig { local_epochs: 1, batch_size: 16, ..Default::default() },
                &sim_cfg,
            );
            let mut sim = Simulation::builder(fed, w.test.clone(), sim_cfg).build();
            black_box(sim.round(0))
        });
    });
    group.finish();
}

/// Device-parallel local training across thread counts (the device update is
/// the embarrassingly parallel phase of a round; results are bit-identical
/// for every thread count, only wall-clock varies).
fn bench_round_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    group.sample_size(10);
    let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let sim_cfg = SimConfig { threads: t, ..w.sim };
                let fed = FedZkt::new(&w.zoo, &w.train, &w.shards, w.fedzkt, &sim_cfg);
                let mut sim = Simulation::builder(fed, w.test.clone(), sim_cfg).build();
                black_box(sim.round(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedzkt_round, bench_round_threads);
criterion_main!(benches);
