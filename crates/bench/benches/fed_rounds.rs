//! End-to-end round benchmarks: one FedZKT round (device update +
//! adversarial distillation + bidirectional transfer) vs one FedAvg round,
//! at tiny scale — the ablation for the paper's "compute-intensive work
//! lives at the server" design claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_core::{FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::{FedAvg, FedAvgConfig, FedEt, FedGkt, SimConfig, Simulation};
use fedzkt_models::ModelSpec;
use fedzkt_scenario::{standard_algorithm, Algo, Materialized, Scenario, Tier};
use std::hint::black_box;

/// The tiny-tier standard scenario, materialized once per benchmark group.
fn tiny() -> (Scenario, Materialized, FedZktConfig) {
    let sc = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
    let m = sc.materialize().expect("tiny scenario materializes");
    let cfg = *sc.fedzkt_cfg().expect("standard scenarios run fedzkt");
    (sc, m, cfg)
}

fn bench_fedzkt_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round");
    group.sample_size(10);
    let (sc, m, cfg) = tiny();
    group.bench_function("fedzkt_tiny", |bench| {
        bench.iter(|| {
            let fed = FedZkt::new(&m.zoo, &m.train, &m.shards, cfg, &sc.sim);
            let mut sim = Simulation::builder(fed, m.test.clone(), sc.sim).build();
            black_box(sim.round(0))
        });
    });
    group.bench_function("fedavg_tiny", |bench| {
        bench.iter(|| {
            let sim_cfg = SimConfig { rounds: 1, ..sc.sim };
            let fed = FedAvg::new(
                ModelSpec::Mlp { hidden: 16 },
                &m.train,
                &m.shards,
                FedAvgConfig { local_epochs: 1, batch_size: 16, ..Default::default() },
                &sim_cfg,
            );
            let mut sim = Simulation::builder(fed, m.test.clone(), sim_cfg).build();
            black_box(sim.round(0))
        });
    });
    group.finish();
}

/// One round of each knowledge-transfer algorithm at its standard tiny
/// config — where the work sits (device ensemble distillation for Fed-ET,
/// server-side head training for FedGKT) relative to the FedZKT/FedAvg
/// rows above.
fn bench_knowledge_transfer_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_kt");
    group.sample_size(10);
    let base = Scenario::standard(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);

    let mut fedet_sc = base.clone();
    fedet_sc.algorithm = standard_algorithm(&base, "fedet").expect("known algorithm");
    let m = fedet_sc.materialize().expect("fedet scenario materializes");
    let public = m.public.clone().expect("materialize provides a public set for fedet");
    let Algo::FedEt { cfg, .. } = fedet_sc.algorithm else { unreachable!() };
    group.bench_function("fedet_tiny", |bench| {
        bench.iter(|| {
            let fed = FedEt::new(&m.zoo, &m.train, &m.shards, public.clone(), cfg, &fedet_sc.sim);
            let mut sim = Simulation::builder(fed, m.test.clone(), fedet_sc.sim).build();
            black_box(sim.round(0))
        });
    });

    let mut gkt_sc = base.clone();
    gkt_sc.algorithm = standard_algorithm(&base, "fedgkt").expect("known algorithm");
    let mg = gkt_sc.materialize().expect("fedgkt scenario materializes");
    let Algo::FedGkt(cfg) = gkt_sc.algorithm else { unreachable!() };
    group.bench_function("fedgkt_tiny", |bench| {
        bench.iter(|| {
            let fed = FedGkt::new(&mg.zoo, &mg.train, &mg.shards, cfg, &gkt_sc.sim);
            let mut sim = Simulation::builder(fed, mg.test.clone(), gkt_sc.sim).build();
            black_box(sim.round(0))
        });
    });
    group.finish();
}

/// Device-parallel local training across thread counts (the device update is
/// the embarrassingly parallel phase of a round; results are bit-identical
/// for every thread count, only wall-clock varies).
fn bench_round_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_threads");
    group.sample_size(10);
    let (sc, m, cfg) = tiny();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            bench.iter(|| {
                let sim_cfg = SimConfig { threads: t, ..sc.sim };
                let fed = FedZkt::new(&m.zoo, &m.train, &m.shards, cfg, &sim_cfg);
                let mut sim = Simulation::builder(fed, m.test.clone(), sim_cfg).build();
                black_box(sim.round(0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fedzkt_round, bench_knowledge_transfer_round, bench_round_threads);
criterion_main!(benches);
