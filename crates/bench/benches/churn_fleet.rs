//! Microbenchmarks of the churn evaluator at fleet scale. The
//! availability scan runs once per round over every *registered* device
//! (the same order as participation sampling), while the dropout and
//! link draws run only for the ~10^3 *sampled* devices — so the scan
//! must stay a few ns per device and the per-device draws must be cheap
//! enough to vanish next to one mini-batch of local training. Both are
//! pure functions of `(spec, device, round)`: no state is built up
//! between iterations, and memory stays O(active) however large the
//! registered population grows.

use criterion::{criterion_group, criterion_main, Criterion};
use fedzkt_fl::{ChurnProcess, ChurnSpec, ParticipationSampler};
use std::hint::black_box;

/// Every dynamic knob on at once — the worst case per query: arrival,
/// lifetime, and duty bits all consulted, plus dropout and link draws.
fn dynamic_spec() -> ChurnSpec {
    ChurnSpec {
        seed: 7,
        arrival_window: 4,
        mean_lifetime: 24.0,
        duty_period: 3,
        duty_on: 2,
        dropout: 0.1,
        bandwidth_floor: 0.5,
    }
}

fn bench_availability_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_available_scan");
    group.sample_size(10);
    for registered in [10_000usize, 1_000_000] {
        let process = ChurnProcess::new(dynamic_spec(), registered);
        group.bench_function(format!("{registered}"), |bench| {
            bench.iter(|| black_box(process.available(2).len()));
        });
    }
    group.finish();
}

fn bench_sampled_draws(c: &mut Criterion) {
    // Dropout + link draws for ~1k sampled devices per round, as in
    // mega-fleet: the cost that actually rides the round's critical path.
    let mut group = c.benchmark_group("churn_draws_1k_sampled");
    group.sample_size(20);
    for registered in [10_000usize, 1_000_000] {
        let process = ChurnProcess::new(dynamic_spec(), registered);
        let sampler = ParticipationSampler::new(registered, 1000.0 / registered as f32, 7);
        let active = sampler.active(0);
        group.bench_function(format!("{registered}"), |bench| {
            bench.iter(|| {
                let mut acc = 0.0f64;
                for &k in &active {
                    if let Some(fraction) = process.dropout(k, 0) {
                        acc += fraction;
                    }
                    acc += process.link_scale(k, 0);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(churn_fleet_benches, bench_availability_scan, bench_sampled_draws);
criterion_main!(churn_fleet_benches);
