//! Microbenchmarks of the tensor substrate: GEMM and im2col dominate
//! training time, so their throughput bounds every experiment above.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_tensor::ops::{gemm, im2col, Conv2dGeometry};
use fedzkt_tensor::{par, seeded_rng, ComputeFormat, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    for &n in &[16usize, 64, 128] {
        let mut rng = seeded_rng(1);
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| black_box(a.matmul(&b).unwrap()));
        });
    }
    group.finish();
}

fn bench_matmul_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_variants");
    group.sample_size(20);
    let mut rng = seeded_rng(2);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    group.bench_function("nn", |bench| bench.iter(|| black_box(a.matmul(&b).unwrap())));
    group.bench_function("nt", |bench| bench.iter(|| black_box(a.matmul_nt(&b).unwrap())));
    group.bench_function("tn", |bench| bench.iter(|| black_box(a.matmul_tn(&b).unwrap())));
    group.finish();
}

/// The unified kernel layer across thread counts: a 256^3 product is well
/// above `gemm::PAR_MIN_MACS`, so each thread count exercises the actual row
/// partition (results are bit-identical by design; only throughput varies).
fn bench_gemm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_threads");
    group.sample_size(10);
    let n = 256usize;
    let mut rng = seeded_rng(5);
    let a = Tensor::randn(&[n, n], &mut rng);
    let b = Tensor::randn(&[n, n], &mut rng);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bench, &t| {
            par::set_threads(t);
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                gemm::gemm_nn(a.data(), b.data(), &mut out, n, n, n);
                black_box(out)
            });
            par::set_threads(0);
        });
    }
    group.finish();
}

/// The inner-kernel layer head to head: for each layout, the scalar
/// reference kernel, the runtime-dispatched (vectorized where available)
/// kernel, and the int8 quantized path — all single-threaded so the rows
/// measure the microkernels, not the partitioner.
fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(10);
    let n = 128usize;
    let mut rng = seeded_rng(6);
    let a = Tensor::randn(&[n, n], &mut rng);
    let b = Tensor::randn(&[n, n], &mut rng);
    par::set_threads(1);
    type Kernel = fn(&[f32], &[f32], &mut [f32], usize, usize, usize);
    let scalar: [(&str, Kernel); 3] = [
        ("nn_scalar", gemm::scalar::gemm_nn),
        ("nt_scalar", gemm::scalar::gemm_nt),
        ("tn_scalar", gemm::scalar::gemm_tn),
    ];
    let dispatched: [(&str, Kernel); 3] =
        [("nn", gemm::gemm_nn), ("nt", gemm::gemm_nt), ("tn", gemm::gemm_tn)];
    for (name, kernel) in scalar.into_iter().chain(dispatched) {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                kernel(a.data(), b.data(), &mut out, n, n, n);
                black_box(out)
            });
        });
    }
    type KernelWith = fn(ComputeFormat, &[f32], &[f32], &mut [f32], usize, usize, usize);
    let int8: [(&str, KernelWith); 3] = [
        ("nn_int8", gemm::gemm_nn_with),
        ("nt_int8", gemm::gemm_nt_with),
        ("tn_int8", gemm::gemm_tn_with),
    ];
    for (name, kernel) in int8 {
        group.bench_function(name, |bench| {
            bench.iter(|| {
                let mut out = vec![0.0f32; n * n];
                kernel(ComputeFormat::Int8, a.data(), b.data(), &mut out, n, n, n);
                black_box(out)
            });
        });
    }
    par::set_threads(0);
    group.finish();
}

criterion_group!(gemm_benches, bench_gemm_threads, bench_gemm_kernels);

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group.sample_size(20);
    for &(ch, img) in &[(3usize, 16usize), (16, 16), (16, 32)] {
        let g = Conv2dGeometry::new(ch, img, img, 3, 3, 1, 1).unwrap();
        let mut rng = seeded_rng(3);
        let x = Tensor::randn(&[g.input_len()], &mut rng);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("c{ch}_i{img}")),
            &g,
            |bench, g| {
                bench.iter(|| black_box(im2col(x.data(), g)));
            },
        );
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = seeded_rng(4);
    let x = Tensor::randn(&[256, 10], &mut rng);
    c.bench_function("softmax_rows_256x10", |bench| {
        bench.iter(|| black_box(x.softmax_rows().unwrap()));
    });
}

criterion_group!(benches, bench_matmul, bench_matmul_variants, bench_im2col, bench_softmax);
criterion_main!(benches, gemm_benches);
