//! Layer- and model-level benchmarks: forward/backward cost of the zoo
//! members and the generator (the unit of work inside every distillation
//! iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use fedzkt_autograd::Var;
use fedzkt_models::{GeneratorSpec, ModelSpec};
use fedzkt_nn::Module;
use fedzkt_tensor::{seeded_rng, Tensor};
use std::hint::black_box;

const IMG: usize = 16;
const BATCH: usize = 16;

fn bench_zoo_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("zoo_forward");
    group.sample_size(10);
    let mut rng = seeded_rng(1);
    let x = Tensor::randn(&[BATCH, 3, IMG, IMG], &mut rng);
    for spec in ModelSpec::paper_zoo_cifar() {
        let model = spec.build(3, 10, IMG, 7);
        group.bench_function(spec.name(), |bench| {
            bench.iter(|| {
                black_box(
                    fedzkt_autograd::no_grad(|| model.forward(&Var::constant(x.clone())))
                        .value_clone(),
                )
            });
        });
    }
    group.finish();
}

fn bench_zoo_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("zoo_forward_backward");
    group.sample_size(10);
    let mut rng = seeded_rng(2);
    let x = Tensor::randn(&[BATCH, 3, IMG, IMG], &mut rng);
    for spec in [ModelSpec::ShuffleNetV2 { size: 0.5 }, ModelSpec::LeNet { scale: 1.0, deep: true }] {
        let model = spec.build(3, 10, IMG, 7);
        group.bench_function(spec.name(), |bench| {
            bench.iter(|| {
                let y = model.forward(&Var::constant(x.clone()));
                let loss = y.square().sum_all();
                loss.backward();
                for p in model.params() {
                    p.zero_grad();
                }
                let out = loss.value().item();
                black_box(out)
            });
        });
    }
    group.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    let g = GeneratorSpec { z_dim: 32, ngf: 8 }.build(3, IMG, 3);
    let mut rng = seeded_rng(3);
    let z = g.sample_z(BATCH, &mut rng);
    group.bench_function("forward", |bench| {
        bench.iter(|| {
            black_box(fedzkt_autograd::no_grad(|| g.forward(&Var::constant(z.clone()))).value_clone())
        });
    });
    group.bench_function("forward_backward", |bench| {
        bench.iter(|| {
            let out = g.forward(&Var::constant(z.clone()));
            let loss = out.square().sum_all();
            loss.backward();
            for p in g.params() {
                p.zero_grad();
            }
            let item = loss.value().item();
            black_box(item)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_zoo_forward, bench_zoo_backward, bench_generator);
criterion_main!(benches);
