//! Microbenchmarks of the lazy-fleet substrate: registry construction and
//! per-round checkout/release bookkeeping at cross-device population sizes,
//! and the streaming aggregation fold against the collect-then-average
//! batch form it replaced. The registry work rides the round's critical
//! path once per sampled device, so it must stay trivially cheap next to
//! even one mini-batch of training.

use criterion::{criterion_group, criterion_main, Criterion};
use fedzkt_fl::{average_state_dicts, DeviceRegistry, ParticipationSampler, StreamingAverage};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{state_dict, StateDict};
use std::hint::black_box;

fn bench_registry_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_new");
    group.sample_size(20);
    for registered in [10_000usize, 1_000_000] {
        group.bench_function(format!("{registered}"), |bench| {
            bench.iter(|| black_box(DeviceRegistry::new(registered)));
        });
    }
    group.finish();
}

fn bench_registry_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_round_1k_sampled");
    group.sample_size(20);
    for registered in [10_000usize, 1_000_000] {
        // ~1k sampled per round regardless of population, as in mega-fleet.
        let sampler = ParticipationSampler::new(registered, 1000.0 / registered as f32, 7);
        let active = sampler.active(0);
        let mut reg = DeviceRegistry::new(registered);
        group.bench_function(format!("{registered}"), |bench| {
            bench.iter(|| {
                for &k in &active {
                    reg.checkout(k);
                }
                for &k in &active {
                    reg.release(k);
                }
                black_box(reg.peak_resident())
            });
        });
    }
    group.finish();
}

/// A mid-sized zoo member's state, the unit the server folds per uplink.
fn uplinks(n: usize) -> Vec<StateDict> {
    (0..n)
        .map(|k| state_dict(ModelSpec::Mlp { hidden: 64 }.build(1, 10, 12, 40 + k as u64).as_ref()))
        .collect()
}

fn bench_aggregation(c: &mut Criterion) {
    let states = uplinks(32);
    let weights: Vec<f32> = (0..states.len()).map(|k| 1.0 + k as f32).collect();
    let total: f32 = weights.iter().sum();
    let mut group = c.benchmark_group("aggregate_32_uplinks");
    group.sample_size(20);
    group.bench_function("batch", |bench| {
        bench.iter(|| {
            let weighted: Vec<(f32, &StateDict)> =
                weights.iter().copied().zip(states.iter()).collect();
            black_box(average_state_dicts(&weighted))
        });
    });
    group.bench_function("streaming", |bench| {
        bench.iter(|| {
            let mut avg = StreamingAverage::new(total);
            for (w, sd) in weights.iter().zip(&states) {
                avg.fold(*w, sd);
            }
            black_box(avg.finish())
        });
    });
    group.finish();
}

criterion_group!(lazy_fleet_benches, bench_registry_construction, bench_registry_round, bench_aggregation);
criterion_main!(lazy_fleet_benches);
