//! Data-pipeline benchmarks: synthetic dataset generation and the three
//! partitioners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedzkt_data::{DataFamily, Partition, SynthConfig};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_generate");
    group.sample_size(10);
    for family in [DataFamily::MnistLike, DataFamily::Cifar10Like] {
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &family,
            |bench, &family| {
                bench.iter(|| {
                    let cfg = SynthConfig {
                        family,
                        img: 16,
                        train_n: 256,
                        test_n: 64,
                        seed: 1,
                        ..Default::default()
                    };
                    black_box(cfg.generate())
                });
            },
        );
    }
    group.finish();
}

fn bench_partitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    group.sample_size(20);
    let labels: Vec<usize> = (0..10_000).map(|i| i % 10).collect();
    for (name, partition) in [
        ("iid", Partition::Iid),
        ("quantity_c2", Partition::QuantitySkew { classes_per_device: 2 }),
        ("dirichlet_b05", Partition::Dirichlet { beta: 0.5 }),
    ] {
        group.bench_function(name, |bench| {
            bench.iter(|| black_box(partition.split(&labels, 10, 10, 7).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_partitions);
criterion_main!(benches);
