//! Figure 3 — learning curves of FedZKT and FedMD (CIFAR-10, IID, public =
//! CIFAR-100-like). Expected shape: FedMD leads early (public-data
//! bootstrap), FedZKT crosses over and finishes higher.

use fedzkt_bench::{banner, pct, ExpOptions};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 3: learning curves (CIFAR-10, IID)", &opts);
    let scenario = opts.scenario(DataFamily::Cifar10Like, Partition::Iid);
    let zkt = scenario.run().expect("fedzkt leg");
    let md = scenario
        .fedmd_counterpart(opts.tier, DataFamily::Cifar100Like)
        .run()
        .expect("fedmd leg");

    println!("{:>6} {:>12} {:>12}", "round", "FedMD", "FedZKT");
    let mut csv = String::from("round,fedmd,fedzkt\n");
    let n = zkt.rounds.len().max(md.rounds.len());
    for i in 0..n {
        let m = md.rounds.get(i).map(|r| r.avg_device_accuracy).unwrap_or(f32::NAN);
        let z = zkt.rounds.get(i).map(|r| r.avg_device_accuracy).unwrap_or(f32::NAN);
        println!("{:>6} {:>12} {:>12}", i + 1, pct(m), pct(z));
        csv.push_str(&format!("{},{:.4},{:.4}\n", i + 1, m, z));
    }
    println!(
        "\nfinal: FedMD {}  FedZKT {}",
        pct(md.final_accuracy()),
        pct(zkt.final_accuracy())
    );
    opts.write_csv("fig3.csv", &csv);
}
