//! Ablations of FedZKT's design choices beyond the paper's own tables
//! (DESIGN.md §6): the transfer learning rate, reuse of the adversarially
//! trained generator for Eq. 8, and the server distillation budget `nD`.

use fedzkt_bench::{banner, pct, ExpOptions};
use fedzkt_core::FedZktConfig;
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Ablations: transfer LR, generator reuse, distillation budget", &opts);
    let base = opts.scenario(DataFamily::MnistLike, Partition::Iid);
    let base_cfg = *base.fedzkt_cfg().expect("standard scenarios run fedzkt");
    let run_variant = |edit: &dyn Fn(&mut FedZktConfig)| -> f32 {
        let mut cell = base.clone();
        edit(cell.fedzkt_cfg_mut().expect("standard scenarios run fedzkt"));
        cell.run().expect("buildable cell").final_accuracy()
    };
    let mut csv = String::from("ablation,setting,final_accuracy\n");

    println!("-- transfer learning rate (Eq. 8 step size) --");
    for lr in [0.002f32, 0.01, 0.05] {
        let acc = run_variant(&|cfg| cfg.transfer_lr = lr);
        println!("  transfer_lr = {lr:<6}: {}", pct(acc));
        csv.push_str(&format!("transfer_lr,{lr},{acc:.4}\n"));
    }

    println!("-- generator for the global->device transfer --");
    for (label, fresh) in [("trained (paper)", false), ("fresh random", true)] {
        let acc = run_variant(&|cfg| cfg.fresh_generator_for_transfer = fresh);
        println!("  {label:<16}: {}", pct(acc));
        csv.push_str(&format!("transfer_generator,{label},{acc:.4}\n"));
    }

    println!("-- server distillation budget nD --");
    for scale in [0usize, 1, 2] {
        let n_d = base_cfg.distill_iters * scale;
        let acc = run_variant(&|cfg| {
            cfg.distill_iters = n_d;
            cfg.transfer_iters = n_d;
        });
        println!("  nD = {n_d:<4}: {}", pct(acc));
        csv.push_str(&format!("distill_iters,{n_d},{acc:.4}\n"));
    }

    opts.write_csv("ablation.csv", &csv);
}
