//! Table IV — effect of the ℓ2 regularization (Eq. 9) on on-device
//! training under non-IID data (CIFAR-10). Expected shape: the regularized
//! runs win in both skew scenarios.

use fedzkt_bench::{banner, pct, ExpOptions};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Table IV: l2 regularization under non-IID (CIFAR-10)", &opts);
    println!("{:<12} {:>18} {:>18}", "Scenario", "no regularization", "l2 regularization");
    let mut csv = String::from("scenario,prox_mu,final_accuracy\n");
    let scenarios: [(&str, Partition); 2] = [
        ("C = 5", Partition::QuantitySkew { classes_per_device: 5 }),
        ("beta = 0.5", Partition::Dirichlet { beta: 0.5 }),
    ];
    for (label, partition) in scenarios {
        let base = opts.scenario(DataFamily::Cifar10Like, partition);
        let run_with_mu = |mu: f32| -> f32 {
            let mut cell = base.clone();
            cell.fedzkt_cfg_mut().expect("standard scenarios run fedzkt").prox_mu = mu;
            cell.run().expect("buildable cell").final_accuracy()
        };
        let without = run_with_mu(0.0);
        let with = run_with_mu(1.0);
        println!("{:<12} {:>18} {:>18}", label, pct(without), pct(with));
        csv.push_str(&format!("{label},0.0,{without:.4}\n{label},1.0,{with:.4}\n"));
    }
    opts.write_csv("table4.csv", &csv);
}
