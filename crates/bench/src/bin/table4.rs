//! Table IV — effect of the ℓ2 regularization (Eq. 9) on on-device
//! training under non-IID data (CIFAR-10). Expected shape: the regularized
//! runs win in both skew scenarios.

use fedzkt_bench::{banner, build_workload, pct, run_fedzkt, ExpOptions};
use fedzkt_core::FedZktConfig;
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Table IV: l2 regularization under non-IID (CIFAR-10)", &opts);
    println!("{:<12} {:>18} {:>18}", "Scenario", "no regularization", "l2 regularization");
    let mut csv = String::from("scenario,prox_mu,final_accuracy\n");
    let scenarios: [(&str, Partition); 2] = [
        ("C = 5", Partition::QuantitySkew { classes_per_device: 5 }),
        ("beta = 0.5", Partition::Dirichlet { beta: 0.5 }),
    ];
    for (label, partition) in scenarios {
        let workload = build_workload(DataFamily::Cifar10Like, partition, opts.tier, opts.seed);
        let without = run_fedzkt(&workload, workload.sim, FedZktConfig { prox_mu: 0.0, ..workload.fedzkt })
            .final_accuracy();
        let with = run_fedzkt(&workload, workload.sim, FedZktConfig { prox_mu: 1.0, ..workload.fedzkt })
            .final_accuracy();
        println!("{:<12} {:>18} {:>18}", label, pct(without), pct(with));
        csv.push_str(&format!("{label},0.0,{without:.4}\n{label},1.0,{with:.4}\n"));
    }
    opts.write_csv("table4.csv", &csv);
}
