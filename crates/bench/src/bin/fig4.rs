//! Figure 4 — accuracy under non-IID on-device data across all four
//! private families: (a)–(d) quantity-based label imbalance (c classes per
//! device), (e)–(h) distribution-based label imbalance (Dirichlet β).
//! Expected shape: FedZKT above FedMD almost everywhere; both improve as
//! c/β grow.
//!
//! Extra flag: `--skew quantity|dirichlet|both` (default both).

use fedzkt_bench::{banner, fedmd_public_family, pct, ExpOptions};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    let skew = opts.extra_value("--skew").unwrap_or("both").to_string();
    banner("Figure 4: non-IID label imbalance", &opts);

    let families = [
        DataFamily::MnistLike,
        DataFamily::FashionLike,
        DataFamily::KmnistLike,
        DataFamily::Cifar10Like,
    ];
    let mut csv = String::from("family,skew,parameter,fedmd,fedzkt\n");

    if skew == "quantity" || skew == "both" {
        println!("-- (a)-(d) quantity-based label imbalance: accuracy vs c --");
        for family in families {
            println!("[{}]", family.name());
            println!("{:>6} {:>12} {:>12}", "c", "FedMD", "FedZKT");
            for c in [2usize, 3, 4, 5] {
                let (md, zkt) =
                    run_pair(family, Partition::QuantitySkew { classes_per_device: c }, &opts);
                println!("{:>6} {:>12} {:>12}", c, pct(md), pct(zkt));
                csv.push_str(&format!(
                    "{},quantity,{},{:.4},{:.4}\n",
                    family.name(),
                    c,
                    md,
                    zkt
                ));
            }
        }
    }
    if skew == "dirichlet" || skew == "both" {
        println!("-- (e)-(h) distribution-based label imbalance: accuracy vs beta --");
        for family in families {
            println!("[{}]", family.name());
            println!("{:>6} {:>12} {:>12}", "beta", "FedMD", "FedZKT");
            for beta in [0.1f32, 0.5, 1.0, 5.0] {
                let (md, zkt) = run_pair(family, Partition::Dirichlet { beta }, &opts);
                println!("{:>6} {:>12} {:>12}", beta, pct(md), pct(zkt));
                csv.push_str(&format!(
                    "{},dirichlet,{},{:.4},{:.4}\n",
                    family.name(),
                    beta,
                    md,
                    zkt
                ));
            }
        }
    }
    opts.write_csv("fig4.csv", &csv);
}

fn run_pair(family: DataFamily, partition: Partition, opts: &ExpOptions) -> (f32, f32) {
    let mut scenario = opts.scenario(family, partition);
    let md_scenario = scenario.fedmd_counterpart(opts.tier, fedmd_public_family(family));
    // Non-IID runs enable the paper's ℓ2 regularizer (Eq. 9).
    scenario.fedzkt_cfg_mut().expect("standard scenarios run fedzkt").prox_mu = 1.0;
    let zkt = scenario.run().expect("fedzkt leg");
    let md = md_scenario.run().expect("fedmd leg");
    (md.final_accuracy(), zkt.final_accuracy())
}
