//! Algorithm-family baseline: final accuracy, uplink traffic and
//! simulated wall-clock for the four knowledge-transfer algorithms
//! (FedZKT, FedMD, Fed-ET, FedGKT) on one miniaturized heterogeneous
//! CIFAR-like workload — same data, same partition, same Models A–E zoo,
//! same simulated hardware, only the algorithm swapped. Emits
//! `BENCH_algos.json` (current directory, or the path given as the first
//! positional argument) so later PRs can compare the accuracy/traffic
//! trade-off against a committed baseline.
//!
//! Everything in the JSON except `wall_seconds` is *simulated* and
//! bit-deterministic (threads are pinned to 1): accuracy, per-round
//! uplink/downlink bytes and `sim_seconds` reproduce exactly on any host.
//!
//! Run with `cargo run --release -p fedzkt_bench --bin bench_algos`.

use fedzkt_data::{DataFamily, Partition};
use fedzkt_scenario::{
    standard_algorithm, ResourceAssignment, ResourceSpec, Scenario, Tier,
};
use std::time::Instant;

/// The shared workload every algorithm runs: the `hetero-cifar` preset's
/// shape miniaturized (Quick-tier data, half the rounds), with
/// quantity-skewed shards and simulated heterogeneous hardware so
/// `sim_seconds` reflects compute *and* transfer time per algorithm.
fn base_scenario() -> Scenario {
    let mut sc = Scenario::standard(
        DataFamily::Cifar10Like,
        Partition::QuantitySkew { classes_per_device: 5 },
        Tier::Quick,
        7,
    );
    sc.set_device_count(5);
    sc.sim.rounds = 4;
    sc.sim.threads = 1;
    sc.resources = Some(ResourceSpec {
        assignment: ResourceAssignment::Heterogeneous { seed: 7 },
        bandwidth: None,
        server_seconds: 1.0,
    });
    sc
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_algos.json".to_string());

    let mut rows = String::new();
    let algos = ["fedzkt", "fedmd", "fedet", "fedgkt"];
    for (i, name) in algos.iter().enumerate() {
        let mut cell = base_scenario();
        cell.algorithm = standard_algorithm(&cell, name)
            .expect("every benched algorithm has a standard config");
        cell.name = format!("bench-{name}");
        cell.validate().expect("the bench scenario is well-formed");
        let t0 = Instant::now();
        let log = cell.run().expect("the bench scenario runs");
        let wall = t0.elapsed().as_secs_f64();
        let upload: u64 = log.rounds.iter().map(|r| r.upload_bytes).sum();
        let download: u64 = log.rounds.iter().map(|r| r.download_bytes).sum();
        let sim_seconds: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
        eprintln!(
            "{name:<7} final {:.2}%  up {upload} B  down {download} B  sim {sim_seconds:.1} s  \
             wall {wall:.2} s",
            100.0 * log.final_accuracy()
        );
        rows.push_str(&format!(
            "    \"{name}\": {{ \"final_accuracy\": {:.4}, \"best_accuracy\": {:.4}, \
             \"upload_bytes\": {upload}, \"download_bytes\": {download}, \
             \"sim_seconds\": {sim_seconds:.2}, \"wall_seconds\": {wall:.3} }}{}\n",
            log.final_accuracy(),
            log.best_accuracy(),
            if i + 1 < algos.len() { "," } else { "" }
        ));
    }

    let base = base_scenario();
    let json = format!(
        r#"{{
  "generated_by": "cargo run --release -p fedzkt_bench --bin bench_algos",
  "workload": {{
    "family": "{family}",
    "partition": "{partition}",
    "devices": {devices},
    "rounds": {rounds},
    "img": {img},
    "train_n": {train_n},
    "test_n": {test_n},
    "seed": {seed}
  }},
  "algorithms": {{
{rows}  }},
  "note": "One shared hetero-cifar workload, only the algorithm swapped (each at its standard config for this scale). All fields except wall_seconds are simulated and bit-deterministic across hosts and thread counts: accuracy and traffic come from the seeded run, sim_seconds from the simulated hardware clock. Traffic profiles differ by design: FedZKT downlinks generator weights, FedMD exchanges logits over a public corpus, Fed-ET ships full device models both ways, FedGKT uplinks per-sample features+logits but downlinks only soft labels."
}}
"#,
        family = base.data.family.name(),
        partition = base.partition,
        devices = base.devices(),
        rounds = base.sim.rounds,
        img = base.data.img,
        train_n = base.data.train_n,
        test_n = base.data.test_n,
        seed = base.sim.seed,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_algos.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
