//! Execution-model performance baseline: GEMM kernel throughput per
//! backend (scalar reference vs the dispatched vectorized path) and per
//! compute format (f32 vs int8) for all three variants (nn/nt/tn),
//! conv-forward lowering strategies (fused panel vs fully-materialized
//! im2col, batched vs per-sample), and end-to-end round throughput across
//! worker-thread counts. Emits `BENCH_gemm.json` (current directory, or
//! the path given as the first positional argument) so later PRs can
//! compare against a committed baseline.
//!
//! Run with `cargo run --release -p fedzkt_bench --bin bench_gemm`.
//! Pass `--quick` for a CI-sized smoke run (fewer repetitions, small
//! round benchmark) — quick output is for sanity, not for committing.

use fedzkt_autograd::{no_grad, Var};
use fedzkt_core::{FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Partition, SynthConfig};
use fedzkt_fl::{SimConfig, Simulation};
use fedzkt_models::{GeneratorSpec, ModelSpec};
use fedzkt_tensor::ops::{gemm, im2col, im2col_batch, Conv2dGeometry};
use fedzkt_tensor::typed::{Rows2D, RowsMut2D, View2D};
use fedzkt_tensor::{par, seeded_rng, ComputeFormat, Tensor};
use std::hint::black_box;
use std::time::Instant;

/// Median-of-runs wall-clock seconds for `f`, after one warmup call.
fn time_median(runs: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Which implementation a kernel row times.
#[derive(Clone, Copy)]
enum Impl {
    /// The always-available scalar reference kernels.
    Scalar,
    /// The public dispatched f32 path (vectorized where the host supports
    /// it — see `backend` in the emitted JSON).
    Dispatched,
    /// The int8 compute format through the same public entry points.
    Int8,
}

/// Single-threaded GEMM seconds for one (variant, implementation) cell at
/// size `n`³. All three variants are benchmarked on square operands so
/// the GFLOP/s columns are directly comparable.
fn kernel_seconds(variant: &str, imp: Impl, n: usize, runs: usize) -> f64 {
    let mut rng = seeded_rng(1);
    let a = Tensor::randn(&[n, n], &mut rng);
    let b = Tensor::randn(&[n, n], &mut rng);
    par::set_threads(1);
    let secs = time_median(runs, || {
        let mut out = vec![0.0f32; n * n];
        let (a, b) = (a.data(), b.data());
        match imp {
            Impl::Scalar => match variant {
                "nn" => gemm::scalar::gemm_nn(a, b, &mut out, n, n, n),
                "nt" => gemm::scalar::gemm_nt(a, b, &mut out, n, n, n),
                _ => gemm::scalar::gemm_tn(a, b, &mut out, n, n, n),
            },
            Impl::Dispatched => match variant {
                "nn" => gemm::gemm_nn(a, b, &mut out, n, n, n),
                "nt" => gemm::gemm_nt(a, b, &mut out, n, n, n),
                _ => gemm::gemm_tn(a, b, &mut out, n, n, n),
            },
            Impl::Int8 => {
                let f = ComputeFormat::Int8;
                match variant {
                    "nn" => gemm::gemm_nn_with(f, a, b, &mut out, n, n, n),
                    "nt" => gemm::gemm_nt_with(f, a, b, &mut out, n, n, n),
                    _ => gemm::gemm_tn_with(f, a, b, &mut out, n, n, n),
                }
            }
        }
        black_box(&out);
    });
    par::set_threads(0);
    secs
}

fn gemm_seconds(n: usize, threads: usize, runs: usize) -> f64 {
    let mut rng = seeded_rng(1);
    let a = Tensor::randn(&[n, n], &mut rng);
    let b = Tensor::randn(&[n, n], &mut rng);
    par::set_threads(threads);
    let secs = time_median(runs, || {
        let mut out = vec![0.0f32; n * n];
        gemm::gemm_nn(a.data(), b.data(), &mut out, n, n, n);
        black_box(&out);
    });
    par::set_threads(0);
    secs
}

fn round_seconds(devices: usize, threads: usize, runs: usize) -> f64 {
    let (train, test) = SynthConfig {
        family: DataFamily::MnistLike,
        img: 8,
        train_n: 256,
        test_n: 64,
        classes: 4,
        seed: 3,
        ..Default::default()
    }
    .generate();
    let shards = Partition::Iid.split(train.labels(), 4, devices, 5).expect("iid split");
    let zoo = ModelSpec::assign_round_robin(
        &[
            ModelSpec::Mlp { hidden: 16 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::LeNet { scale: 0.5, deep: false },
        ],
        devices,
    );
    let sim_cfg = SimConfig { rounds: 1, seed: 1, threads, ..Default::default() };
    let cfg = FedZktConfig {
        local_epochs: 2,
        distill_iters: 4,
        transfer_iters: 4,
        device_batch: 16,
        distill_batch: 8,
        generator: GeneratorSpec { z_dim: 16, ngf: 4 },
        global_model: ModelSpec::SmallCnn { base_channels: 4 },
        ..Default::default()
    };
    // Construction (dataset clone, model/generator builds) is identical for
    // every thread count and single-threaded; keep it out of the timed
    // region so the ratio reflects the round itself.
    let run_one = || {
        let fed = FedZkt::new(&zoo, &train, &shards, cfg, &sim_cfg);
        let mut sim = Simulation::builder(fed, test.clone(), sim_cfg).build();
        let t0 = Instant::now();
        black_box(sim.round(0));
        t0.elapsed().as_secs_f64()
    };
    run_one();
    let mut samples: Vec<f64> = (0..runs).map(|_| run_one()).collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Typed-vs-dynamic linear-forward rows over the paper zoo's recurring
/// dense layer shapes (the widths in `fedzkt_nn::typed`'s dispatch
/// table), batch 16, single-threaded. The typed wrappers replace the
/// three per-operand length guards with compile-time facts, so the
/// contract is *parity*: `typed_vs_dynamic` hovering at 1.0 is the
/// zero-cost-shim claim, measured. Each cell times `reps` back-to-back
/// calls to lift tiny layers out of timer noise.
fn typed_linear_rows(runs: usize) -> String {
    let batch = 16usize;
    par::set_threads(1);
    let mut rows = String::new();
    macro_rules! layer {
        ($label:expr, $in:literal, $out:literal, $last:expr) => {{
            const IN: usize = $in;
            const OUT: usize = $out;
            let mut rng = seeded_rng(4);
            let x = Tensor::randn(&[batch, IN], &mut rng);
            let w = Tensor::randn(&[OUT, IN], &mut rng);
            // Enough repetitions that a cell is ~ms-scale even for the
            // smallest head layers.
            let reps = (2_000_000 / (batch * IN * OUT)).max(64);
            let dynamic = time_median(runs, || {
                let mut out = vec![0.0f32; batch * OUT];
                for _ in 0..reps {
                    gemm::gemm_nt(x.data(), w.data(), &mut out, batch, IN, OUT);
                }
                black_box(&out);
            });
            let typed = time_median(runs, || {
                let mut out = vec![0.0f32; batch * OUT];
                let wv = View2D::<OUT, IN>::new(w.data());
                for _ in 0..reps {
                    fedzkt_tensor::typed::gemm_nt_rows::<IN, OUT>(
                        Rows2D::with_rows(x.data(), batch),
                        wv,
                        RowsMut2D::with_rows(&mut out, batch),
                    );
                }
                black_box(&out);
            });
            let per_call_d = dynamic / reps as f64 * 1e9;
            let per_call_t = typed / reps as f64 * 1e9;
            eprintln!(
                "linear {label} [{batch}, {IN}] x [{OUT}, {IN}]T: dynamic {per_call_d:.0} ns, \
                 typed {per_call_t:.0} ns ({:.3}x)",
                per_call_d / per_call_t,
                label = $label,
            );
            rows.push_str(&format!(
                "    \"{}\": {{ \"in\": {IN}, \"out\": {OUT}, \"dynamic_ns\": {per_call_d:.1}, \"typed_ns\": {per_call_t:.1}, \"typed_vs_dynamic\": {:.3} }}{}\n",
                $label,
                per_call_d / per_call_t,
                if $last { "" } else { "," }
            ));
        }};
    }
    layer!("mlp_hidden_64_64", 64, 64, false);
    layer!("mlp_taper_64_32", 64, 32, false);
    layer!("lenet_fc_120_84", 120, 84, false);
    layer!("lenet_head_84_10", 84, 10, false);
    layer!("fedgkt_server_head_32_64", 32, 64, false);
    layer!("mlp_head_64_10", 64, 10, true);
    par::set_threads(0);
    rows
}

/// Forward conv lowering over an 8-sample batch, all single-threaded so
/// the comparison isolates the lowering strategy from the row partition:
///
/// * `fused` — the production path (`Var::conv2d`, panel-by-panel im2col
///   consumed straight by the GEMM, no full column matrix);
/// * `batched` — one fully-materialized whole-batch im2col + one GEMM
///   (the pre-fusion strategy);
/// * `per_sample` — one im2col + GEMM per sample (the pre-batching
///   strategy).
fn conv_lowering_seconds(runs: usize) -> (f64, f64, f64) {
    let (n, c, hw, oc) = (8usize, 8usize, 16usize, 16usize);
    let g = Conv2dGeometry::new(c, hw, hw, 3, 3, 1, 1).expect("conv geometry");
    let mut rng = seeded_rng(2);
    let x = Tensor::randn(&[n, c, hw, hw], &mut rng);
    let w = Tensor::randn(&[oc, c, 3, 3], &mut rng);
    let kvol = g.col_rows();
    let cols = g.col_cols();
    par::set_threads(1);
    let fused = {
        let xv = Var::constant(x.clone());
        let wv = Var::constant(w.clone());
        time_median(runs, || {
            let y = no_grad(|| xv.conv2d(&wv, 1, 1, 1));
            black_box(y.value_clone());
        })
    };
    let batched = time_median(runs, || {
        let col = im2col_batch(x.data(), 0, c * hw * hw, n, &g);
        let mut out = vec![0.0f32; oc * n * cols];
        gemm::gemm_nn(w.data(), &col, &mut out, oc, kvol, n * cols);
        black_box(&out);
    });
    let per_sample = time_median(runs, || {
        for s in 0..n {
            let col = im2col(&x.data()[s * c * hw * hw..(s + 1) * c * hw * hw], &g);
            let mut out = vec![0.0f32; oc * cols];
            gemm::gemm_nn(w.data(), &col, &mut out, oc, kvol, cols);
            black_box(&out);
        }
    });
    par::set_threads(0);
    (fused, batched, per_sample)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_gemm.json".to_string());
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("host parallelism: {host_cpus}, backend: {}", gemm::backend_name());

    let n = 256usize;
    let gflop = 2.0 * (n * n * n) as f64 / 1e9;
    let kernel_runs = if quick { 3 } else { 9 };

    // Per-kernel backend/format matrix: 3 variants × {scalar, dispatched,
    // int8}, single-threaded 256³.
    let mut kernel_rows = String::new();
    for (i, variant) in ["nn", "nt", "tn"].iter().enumerate() {
        let s = kernel_seconds(variant, Impl::Scalar, n, kernel_runs);
        let v = kernel_seconds(variant, Impl::Dispatched, n, kernel_runs);
        let q = kernel_seconds(variant, Impl::Int8, n, kernel_runs);
        eprintln!(
            "gemm_{variant} {n}^3 (1 thread): scalar {:.2}, {} {:.2}, int8 {:.2} GFLOP/s",
            gflop / s,
            gemm::backend_name(),
            gflop / v,
            gflop / q
        );
        kernel_rows.push_str(&format!(
            "    \"{variant}\": {{ \"scalar_gflops\": {:.3}, \"dispatched_gflops\": {:.3}, \"int8_gflops\": {:.3}, \"dispatched_vs_scalar\": {:.3}, \"int8_vs_scalar\": {:.3} }}{}\n",
            gflop / s,
            gflop / v,
            gflop / q,
            s / v,
            s / q,
            if i + 1 < 3 { "," } else { "" }
        ));
    }

    let typed_rows = typed_linear_rows(kernel_runs);

    let g1 = gemm_seconds(n, 1, kernel_runs);
    let g4 = gemm_seconds(n, 4, kernel_runs);
    eprintln!("gemm {n}^3: 1 thread {:.2} GFLOP/s, 4 threads {:.2} GFLOP/s", gflop / g1, gflop / g4);

    let (conv_fused, conv_batched, conv_per_sample) = conv_lowering_seconds(kernel_runs);
    eprintln!(
        "conv lowering: fused {:.3} ms, batched {:.3} ms, per-sample {:.3} ms",
        conv_fused * 1e3,
        conv_batched * 1e3,
        conv_per_sample * 1e3
    );

    let devices = if quick { 4usize } else { 8usize };
    let round_runs = if quick { 1 } else { 3 };
    let r1 = round_seconds(devices, 1, round_runs);
    let r4 = round_seconds(devices, 4, round_runs);
    eprintln!("FedZkt round ({devices} devices): 1 thread {r1:.2} s, 4 threads {r4:.2} s");

    let json = format!(
        r#"{{
  "generated_by": "cargo run --release -p fedzkt_bench --bin bench_gemm",
  "host_cpus": {host_cpus},
  "backend": "{backend}",
  "gemm_kernels_256_threads_1": {{
{kernel_rows}  }},
  "typed_linear_forward_batch16_threads_1": {{
{typed_rows}  }},
  "gemm_256x256x256": {{
    "threads_1": {{ "seconds": {g1:.6}, "gflops": {gf1:.3} }},
    "threads_4": {{ "seconds": {g4:.6}, "gflops": {gf4:.3} }},
    "speedup_4_vs_1": {gsp:.3}
  }},
  "conv2d_lowering_n8_c8_16x16_oc16": {{
    "fused_seconds": {cf:.6},
    "batched_seconds": {cb:.6},
    "per_sample_seconds": {cp:.6},
    "speedup_fused_vs_batched": {cfs:.3},
    "speedup_batched_vs_per_sample": {csp:.3}
  }},
  "fedzkt_round_{devices}_devices": {{
    "threads_1_seconds": {r1:.4},
    "threads_4_seconds": {r4:.4},
    "speedup_4_vs_1": {rsp:.3}
  }},
  "note": "Thread-count speedups are bounded by host_cpus: on a single-core host threads_4 cannot beat threads_1; re-run on a multi-core host for the parallel baseline. Results are bit-identical across thread counts by construction. The dispatched rows use the runtime-detected backend above; on a host without AVX2 they equal the scalar rows. The typed_linear rows compare the dynamic guarded entry against the const-generic typed wrapper on identical kernels: typed_vs_dynamic near 1.0 is the zero-cost-shim contract (small deviations are timer noise on microsecond layers)."
}}
"#,
        backend = gemm::backend_name(),
        gf1 = gflop / g1,
        gf4 = gflop / g4,
        gsp = g1 / g4,
        cf = conv_fused,
        cb = conv_batched,
        cp = conv_per_sample,
        cfs = conv_batched / conv_fused,
        csp = conv_per_sample / conv_batched,
        rsp = r1 / r4,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_gemm.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
