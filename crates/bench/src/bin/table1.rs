//! Table I — average global/device accuracy under IID data:
//! FedZKT vs FedMD on four private families, including FedMD's sensitivity
//! to the public dataset (CIFAR-100-like vs SVHN-like publics).

use fedzkt_bench::{banner, fedmd_public_family, pct, ExpOptions};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Table I: FedZKT vs FedMD, IID on-device data", &opts);
    let mut csv = String::from("private,public,algorithm,final_accuracy,best_accuracy\n");
    println!(
        "{:<10} {:<10} {:>14} {:>14}",
        "On-Device", "Public", "FedMD", "FedZKT"
    );

    let cases: Vec<(DataFamily, Vec<DataFamily>)> = vec![
        (DataFamily::MnistLike, vec![fedmd_public_family(DataFamily::MnistLike)]),
        (DataFamily::FashionLike, vec![fedmd_public_family(DataFamily::FashionLike)]),
        (DataFamily::KmnistLike, vec![fedmd_public_family(DataFamily::KmnistLike)]),
        (DataFamily::Cifar10Like, vec![DataFamily::Cifar100Like, DataFamily::SvhnLike]),
    ];

    for (private, publics) in cases {
        let scenario = opts.scenario(private, Partition::Iid);
        let zkt_log = scenario.run().expect("fedzkt leg");
        let zkt_acc = zkt_log.final_accuracy();
        csv.push_str(&format!(
            "{},-,FedZKT,{:.4},{:.4}\n",
            private.name(),
            zkt_acc,
            zkt_log.best_accuracy()
        ));
        for (i, public_family) in publics.iter().enumerate() {
            let md_log = scenario
                .fedmd_counterpart(opts.tier, *public_family)
                .run()
                .expect("fedmd leg");
            let md_acc = md_log.final_accuracy();
            csv.push_str(&format!(
                "{},{},FedMD,{:.4},{:.4}\n",
                private.name(),
                public_family.name(),
                md_acc,
                md_log.best_accuracy()
            ));
            // Paper layout: FedZKT printed on the first public-dataset row.
            let zkt_cell = if i == 0 { pct(zkt_acc) } else { String::new() };
            println!(
                "{:<10} {:<10} {:>14} {:>14}",
                private.name(),
                public_family.name(),
                pct(md_acc),
                zkt_cell
            );
        }
    }
    opts.write_csv("table1.csv", &csv);
}
