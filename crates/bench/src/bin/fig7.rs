//! Figure 7 — effect of the device count K ∈ {5, 10, 15, 20} (MNIST and
//! CIFAR-10, IID). Expected shape: subtle effect (a few points of
//! accuracy), smaller K slightly ahead.

use fedzkt_bench::{banner, pct, ExpOptions, Tier};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 7: effect of device number (MNIST & CIFAR-10, IID)", &opts);
    let ks = [5usize, 10, 15, 20];
    let mut csv = String::from("family,devices,round,accuracy\n");
    for family in [DataFamily::MnistLike, DataFamily::Cifar10Like] {
        println!("[{}]", family.name());
        print!("{:>6}", "round");
        for k in ks {
            print!(" {:>12}", format!("{k} devices"));
        }
        println!();
        let mut base = opts.scenario(family, Partition::Iid);
        if opts.tier == Tier::Quick {
            // Up to 20 devices per run: cap rounds to bound the sweep's
            // quick-tier cost.
            base.sim.rounds = base.sim.rounds.min(6);
        }
        let logs: Vec<_> = ks
            .iter()
            .map(|&k| {
                let mut cell = base.clone();
                cell.set_device_count(k);
                cell.run().expect("buildable scenario")
            })
            .collect();
        let rounds = logs[0].rounds.len();
        for r in 0..rounds {
            print!("{:>6}", r + 1);
            for (ki, log) in logs.iter().enumerate() {
                let acc = log.rounds[r].avg_device_accuracy;
                print!(" {:>12}", pct(acc));
                csv.push_str(&format!("{},{},{},{acc:.4}\n", family.name(), ks[ki], r + 1));
            }
            println!();
        }
        print!("{:>6}", "final");
        for log in &logs {
            print!(" {:>12}", pct(log.final_accuracy()));
        }
        println!("\n");
    }
    opts.write_csv("fig7.csv", &csv);
}
