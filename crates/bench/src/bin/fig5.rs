//! Figure 5 — per-device learning curves under heterogeneous architectures
//! (CIFAR-10, IID): ten devices, two per Model A–E of Table V (grouped by
//! architecture in device order). Expected shape: the two LeNet devices
//! (Model E) plateau below the ShuffleNetV2/MobileNetV2 devices.

use fedzkt_bench::{banner, pct, ExpOptions, Scale};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 5: per-device learning curves (CIFAR-10, IID, Models A-E)", &opts);
    let mut scale = Scale::for_family(DataFamily::Cifar10Like, opts.tier);
    scale.devices = 10; // the paper's setup for this figure
    let scenario = opts.scenario_scaled(DataFamily::Cifar10Like, Partition::Iid, scale);
    let zoo = scenario.device_specs();
    let log = scenario.run().expect("buildable scenario");

    // Header: device/model names.
    print!("{:>6}", "round");
    for (i, spec) in zoo.iter().enumerate() {
        print!(" dev{:<2}:{:<18}", i + 1, spec.name());
    }
    println!();
    let mut csv = String::from("round");
    for i in 0..zoo.len() {
        csv.push_str(&format!(",device{}", i + 1));
    }
    csv.push('\n');
    for r in &log.rounds {
        print!("{:>6}", r.round);
        csv.push_str(&r.round.to_string());
        for acc in &r.device_accuracy {
            print!(" {:>24}", pct(*acc));
            csv.push_str(&format!(",{acc:.4}"));
        }
        println!();
        csv.push('\n');
    }
    println!("\nfinal per-device accuracies:");
    if let Some(last) = log.rounds.last() {
        for (i, (spec, acc)) in zoo.iter().zip(&last.device_accuracy).enumerate() {
            println!("  Device {:>2} ({}): {}", i + 1, spec.name(), pct(*acc));
        }
    }
    opts.write_csv("fig5.csv", &csv);
}
