//! Figure 2 — norm of gradients w.r.t. input data for the three candidate
//! disagreement losses (MNIST, IID). Expected shape: KL vanishes, logit-ℓ1
//! is large/unstable, SL sits between and stays stable.

use fedzkt_bench::{banner, ExpOptions};
use fedzkt_core::FedZkt;
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::Simulation;

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 2: ||grad_x L|| per round (MNIST, IID)", &opts);
    let mut scenario = opts.scenario(DataFamily::MnistLike, Partition::Iid);
    scenario.fedzkt_cfg_mut().expect("standard scenarios run fedzkt").probe_grad_norms = true;
    let mut sim = scenario.build().expect("buildable scenario");
    sim.run();
    // The probe is FedZKT-specific: reach through the erased runner.
    let typed = sim
        .as_any()
        .downcast_ref::<Simulation<FedZkt>>()
        .expect("fedzkt scenario");
    println!("{:>6} {:>14} {:>14} {:>14}", "round", "KL", "l1-norm", "SL");
    for r in typed.algorithm().probe().records() {
        println!("{:>6} {:>14.6} {:>14.6} {:>14.6}", r.round, r.kl, r.logit_l1, r.sl);
    }
    // Shape summary (the property Fig. 2 illustrates).
    let records = typed.algorithm().probe().records();
    let last = &records[records.len().saturating_sub(3)..];
    let mean = |f: fn(&fedzkt_core::GradNormRecord) -> f32| -> f32 {
        last.iter().map(f).sum::<f32>() / last.len().max(1) as f32
    };
    println!(
        "\nlate-round means:  KL {:.6}   l1 {:.6}   SL {:.6}",
        mean(|r| r.kl),
        mean(|r| r.logit_l1),
        mean(|r| r.sl)
    );
    opts.write_csv("fig2.csv", &typed.algorithm().probe().to_csv());
}
