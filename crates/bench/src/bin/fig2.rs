//! Figure 2 — norm of gradients w.r.t. input data for the three candidate
//! disagreement losses (MNIST, IID). Expected shape: KL vanishes, logit-ℓ1
//! is large/unstable, SL sits between and stays stable.

use fedzkt_bench::{banner, build_workload, ExpOptions};
use fedzkt_core::{FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Partition};
use fedzkt_fl::Simulation;

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 2: ||grad_x L|| per round (MNIST, IID)", &opts);
    let workload = build_workload(DataFamily::MnistLike, Partition::Iid, opts.tier, opts.seed);
    let cfg = FedZktConfig { probe_grad_norms: true, ..workload.fedzkt };
    let fed = FedZkt::new(&workload.zoo, &workload.train, &workload.shards, cfg, &workload.sim);
    let mut sim = Simulation::builder(fed, workload.test.clone(), workload.sim).build();
    sim.run();
    println!("{:>6} {:>14} {:>14} {:>14}", "round", "KL", "l1-norm", "SL");
    for r in sim.algorithm().probe().records() {
        println!("{:>6} {:>14.6} {:>14.6} {:>14.6}", r.round, r.kl, r.logit_l1, r.sl);
    }
    // Shape summary (the property Fig. 2 illustrates).
    let records = sim.algorithm().probe().records();
    let last = &records[records.len().saturating_sub(3)..];
    let mean = |f: fn(&fedzkt_core::GradNormRecord) -> f32| -> f32 {
        last.iter().map(f).sum::<f32>() / last.len().max(1) as f32
    };
    println!(
        "\nlate-round means:  KL {:.6}   l1 {:.6}   SL {:.6}",
        mean(|r| r.kl),
        mean(|r| r.logit_l1),
        mean(|r| r.sl)
    );
    opts.write_csv("fig2.csv", &sim.algorithm().probe().to_csv());
}
