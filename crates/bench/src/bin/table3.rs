//! Table III — lower/upper bound of on-device performance (CIFAR-10, IID):
//! for each of the ten devices of Figure 5, the accuracy of its
//! architecture trained on its own shard only (lower) vs on the union of
//! all shards (upper). FedZKT's per-device accuracy should approach the
//! upper bound.

use fedzkt_bench::{banner, pct, ExpOptions, Scale, Tier};
use fedzkt_core::{centralized_bound, local_only_bound, BoundConfig};
use fedzkt_data::{DataFamily, Dataset, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Table III: per-device lower/upper bounds (CIFAR-10, IID)", &opts);
    let mut scale = Scale::for_family(DataFamily::Cifar10Like, opts.tier);
    scale.devices = 10;
    let scenario = opts.scenario_scaled(DataFamily::Cifar10Like, Partition::Iid, scale);
    // The bound trainers consume the raw materials — datasets, shards and
    // zoo — rather than a federated run.
    let m = scenario.materialize().expect("materializable scenario");
    let fedzkt = *scenario.fedzkt_cfg().expect("standard scenarios run fedzkt");
    let shards: Vec<Dataset> = m.shards.iter().map(|idx| m.train.subset(idx)).collect();
    let refs: Vec<&Dataset> = shards.iter().collect();
    let cfg = BoundConfig {
        epochs: match opts.tier {
            Tier::Paper => 100,
            Tier::Quick => 10,
            Tier::Tiny => 2,
        },
        batch_size: fedzkt.device_batch,
        lr: fedzkt.device_lr,
        seed: opts.seed,
        ..Default::default()
    };

    println!("{:<30} {:>12} {:>12}", "Model Architecture", "Upper Bound", "Lower Bound");
    let mut csv = String::from("device,architecture,upper,lower\n");
    for (i, spec) in m.zoo.iter().enumerate() {
        let lower = local_only_bound(*spec, &shards[i], &m.test, &cfg);
        let upper = centralized_bound(*spec, &refs, &m.test, &cfg);
        println!(
            "{:<30} {:>12} {:>12}",
            format!("Device {}: {}", i + 1, spec.name()),
            pct(upper),
            pct(lower)
        );
        csv.push_str(&format!("{},{},{upper:.4},{lower:.4}\n", i + 1, spec.name()));
    }
    opts.write_csv("table3.csv", &csv);
}
