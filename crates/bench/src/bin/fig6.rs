//! Figure 6 — straggler effect: average accuracy when only a portion
//! p ∈ {0.2, 0.4, 0.6, 0.8, 1.0} of devices trains each round (MNIST and
//! CIFAR-10, IID). Expected shape: stable for p ≥ 0.4; slower and noisier
//! at p = 0.2.

use fedzkt_bench::{banner, pct, ExpOptions, Tier};
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Figure 6: straggler effect (MNIST & CIFAR-10, IID)", &opts);
    let portions = [0.2f32, 0.4, 0.6, 0.8, 1.0];
    let mut csv = String::from("family,p,round,accuracy\n");
    for family in [DataFamily::MnistLike, DataFamily::Cifar10Like] {
        println!("[{}]", family.name());
        let mut base = opts.scenario(family, Partition::Iid);
        if opts.tier == Tier::Quick {
            // Five participation levels per family: cap rounds so the sweep
            // stays within the quick-tier time budget.
            base.sim.rounds = base.sim.rounds.min(6);
        }
        print!("{:>6}", "round");
        for p in portions {
            print!(" {:>10}", format!("p={p}"));
        }
        println!();
        let logs: Vec<_> = portions
            .iter()
            .map(|&p| {
                // Participation is a protocol knob: the cells of this sweep
                // differ in one SimConfig field of the shared scenario.
                let mut cell = base.clone();
                cell.sim.participation = p;
                cell.run().expect("buildable scenario")
            })
            .collect();
        let rounds = logs[0].rounds.len();
        for r in 0..rounds {
            print!("{:>6}", r + 1);
            for (pi, log) in logs.iter().enumerate() {
                let acc = log.rounds[r].avg_device_accuracy;
                print!(" {:>10}", pct(acc));
                csv.push_str(&format!("{},{},{},{acc:.4}\n", family.name(), portions[pi], r + 1));
            }
            println!();
        }
        print!("{:>6}", "final");
        for log in &logs {
            print!(" {:>10}", pct(log.final_accuracy()));
        }
        println!("\n");
    }
    opts.write_csv("fig6.csv", &csv);
}
