//! Table II — effect of the disagreement-loss choice on zero-shot
//! federated distillation (CIFAR-10, non-IID: quantity c=5 and Dirichlet
//! β=0.5). Expected shape: SL > KL ≫ logit-ℓ1.

use fedzkt_bench::{banner, pct, ExpOptions};
use fedzkt_core::DistillLoss;
use fedzkt_data::{DataFamily, Partition};

fn main() {
    let opts = ExpOptions::from_args();
    banner("Table II: loss functions for zero-shot distillation (CIFAR-10, non-IID)", &opts);
    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "Scenario", "KL-divergence", "l1-norm", "SL loss"
    );
    let mut csv = String::from("scenario,loss,final_accuracy\n");
    let scenarios: [(&str, Partition); 2] = [
        ("C = 5", Partition::QuantitySkew { classes_per_device: 5 }),
        ("beta = 0.5", Partition::Dirichlet { beta: 0.5 }),
    ];
    for (label, partition) in scenarios {
        let base = opts.scenario(DataFamily::Cifar10Like, partition);
        let mut row = Vec::new();
        for loss in [DistillLoss::Kl, DistillLoss::LogitL1, DistillLoss::Sl] {
            let mut cell = base.clone();
            let cfg = cell.fedzkt_cfg_mut().expect("standard scenarios run fedzkt");
            cfg.loss = loss;
            cfg.prox_mu = 1.0;
            let acc = cell.run().expect("buildable cell").final_accuracy();
            csv.push_str(&format!("{label},{loss},{acc:.4}\n"));
            row.push(acc);
        }
        println!(
            "{:<12} {:>14} {:>14} {:>14}",
            label,
            pct(row[0]),
            pct(row[1]),
            pct(row[2])
        );
    }
    opts.write_csv("table2.csv", &csv);
}
