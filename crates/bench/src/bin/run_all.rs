//! Run every table/figure experiment in sequence by invoking the sibling
//! binaries (so each prints its own artifact), forwarding the common flags.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let order = [
        "table1", "fig2", "fig3", "fig4", "table2", "fig5", "table3", "fig6", "table4", "fig7",
        "ablation",
    ];
    let started = std::time::Instant::now();
    for bin in order {
        let path = dir.join(bin);
        println!("\n>>> running {bin} {}", args.join(" "));
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", path.display()));
        assert!(status.success(), "{bin} failed with {status}");
    }
    println!(
        "\nall experiments complete in {:.1} min; CSVs in target/experiments/",
        started.elapsed().as_secs_f64() / 60.0
    );
}
