//! Run every scenario in the `fedzkt_scenario` preset registry in
//! sequence, writing the standard CSV+JSON artifact pair per preset — the
//! one-command smoke matrix over every algorithm, partition and resource
//! model the workspace ships.
//!
//! Paper-scale presets (hours of CPU) are skipped unless `--paper` /
//! `--scale paper` is given. The per-figure/table binaries (`fig2`…`table4`)
//! remain the way to regenerate individual paper artifacts.

use fedzkt_bench::{pct, ExpOptions, Tier};
use fedzkt_scenario::presets;

fn main() {
    let opts = ExpOptions::from_args();
    println!("================================================================");
    println!("run_all: every preset in the scenario registry   (tier: {:?})", opts.tier);
    match opts.seed_explicit {
        true => println!("seed: {} (overriding every preset's own seed)", opts.seed),
        false => println!("seeds: each preset's own (pass --seed N to override)"),
    }
    println!("================================================================");
    let started = std::time::Instant::now();
    let mut summary = String::from("preset,algorithm,rounds,final_accuracy,best_accuracy\n");
    let mut executed = 0usize;
    for preset in presets() {
        if preset.paper_scale && opts.tier != Tier::Paper {
            println!(">>> skipping {} (paper scale; pass --paper to include)", preset.name);
            continue;
        }
        let mut scenario = preset.scenario();
        // Presets carry their own seeds so their artifacts are stable;
        // an explicit --seed overrides them all (for seed sweeps).
        scenario.sim.threads = opts.threads;
        if opts.seed_explicit {
            scenario.sim.seed = opts.seed;
        }
        println!(
            "\n>>> {} — {} ({} devices, {} rounds)",
            preset.name,
            preset.about,
            scenario.devices(),
            scenario.sim.rounds
        );
        let log = scenario
            .run()
            .unwrap_or_else(|e| panic!("preset {}: {e}", preset.name));
        println!(
            "    final {}  best {}",
            pct(log.final_accuracy()),
            pct(log.best_accuracy())
        );
        summary.push_str(&format!(
            "{},{},{},{:.4},{:.4}\n",
            preset.name,
            scenario.algorithm.name(),
            log.rounds.len(),
            log.final_accuracy(),
            log.best_accuracy()
        ));
        log.write_artifacts(&opts.out_dir, preset.name).expect("write artifacts");
        executed += 1;
    }
    opts.write_csv("run_all_summary.csv", &summary);
    println!(
        "\n{executed} presets complete in {:.1} min; artifacts in {}/",
        started.elapsed().as_secs_f64() / 60.0,
        opts.out_dir.display()
    );
}
