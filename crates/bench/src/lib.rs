//! # fedzkt-bench
//!
//! Experiment harness reproducing every table and figure of the FedZKT
//! paper's evaluation (§IV). Each `src/bin/*` binary regenerates one
//! artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — IID accuracy, FedZKT vs FedMD (incl. public-dataset sensitivity) |
//! | `fig2`   | Figure 2 — ‖∇ₓL‖ for SL / KL / ℓ1 over rounds |
//! | `fig3`   | Figure 3 — learning curves, FedZKT vs FedMD (CIFAR-10) |
//! | `fig4`   | Figure 4 — non-IID accuracy across c and β |
//! | `table2` | Table II — loss-function ablation under non-IID |
//! | `fig5`   | Figure 5 — per-device learning curves, heterogeneous zoo |
//! | `table3` | Table III — per-device lower/upper bounds |
//! | `fig6`   | Figure 6 — straggler portions p |
//! | `table4` | Table IV — ℓ2-regularization ablation |
//! | `fig7`   | Figure 7 — device counts K |
//! | `run_all`| every preset of the `fedzkt_scenario` registry |
//! | `bench_gemm` | execution-model baseline: GEMM / conv-lowering / round throughput across thread counts → `BENCH_gemm.json` |
//!
//! Every binary constructs its workloads declaratively through
//! [`Scenario`] (see [`ExpOptions::scenario`]) — the experiment grid is
//! data, not hand-wired setup code — and shares one flag parser:
//! `--paper` / `--scale quick|tiny|paper`, `--seed N`, `--out DIR`,
//! `--threads N`. Results print as aligned tables and are written as CSV
//! under `target/experiments/`.

#![warn(missing_docs)]

use fedzkt_data::{DataFamily, Partition};
use fedzkt_scenario::Scenario;
use std::io::Write as _;
use std::path::PathBuf;

pub use fedzkt_scenario::{fedmd_public_family, Scale, Tier};

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Workload tier.
    pub tier: Tier,
    /// Master seed.
    pub seed: u64,
    /// Was `--seed` given explicitly? Binaries whose workloads carry their
    /// own curated seeds (`run_all` over the preset registry) only
    /// override them when the user actually asked.
    pub seed_explicit: bool,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Worker threads for device-parallel phases (0 = `FEDZKT_THREADS`,
    /// then available parallelism). Applied to every scenario the binary
    /// builds through [`ExpOptions::scenario`] / [`ExpOptions::tune`].
    pub threads: usize,
    /// Binary-specific flags the common parser did not recognise
    /// (e.g. fig4's `--skew quantity`).
    pub extras: Vec<String>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            tier: Tier::Quick,
            seed: 42,
            seed_explicit: false,
            out_dir: PathBuf::from("target/experiments"),
            threads: 0,
            extras: Vec::new(),
        }
    }
}

impl ExpOptions {
    /// Parse `--paper`, `--scale quick|tiny|paper`, `--seed N`, `--out DIR`,
    /// `--threads N` from `std::env::args`; unrecognised arguments are
    /// collected into [`ExpOptions::extras`] for binary-specific flags.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable form of
    /// [`ExpOptions::from_args`]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = ExpOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => opts.tier = Tier::Paper,
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    opts.tier = match v.as_str() {
                        "quick" => Tier::Quick,
                        "tiny" => Tier::Tiny,
                        "paper" => Tier::Paper,
                        other => {
                            eprintln!("unknown scale '{other}' (quick|tiny|paper)");
                            std::process::exit(2);
                        }
                    };
                }
                "--seed" => {
                    opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                    opts.seed_explicit = true;
                }
                "--threads" => {
                    opts.threads = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--threads needs an integer");
                        std::process::exit(2);
                    });
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().unwrap_or_default());
                }
                "--help" | "-h" => {
                    println!(
                        "usage: [--paper | --scale quick|tiny|paper] [--seed N] [--out DIR] [--threads N]"
                    );
                    std::process::exit(0);
                }
                other => opts.extras.push(other.to_string()),
            }
        }
        opts
    }

    /// Value following `flag` among the extra arguments, if present.
    pub fn extra_value(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.extras.get(i + 1))
            .map(String::as_str)
    }

    /// The standard FedZKT scenario for a family and partition at this
    /// invocation's tier, seed and thread count — the declarative
    /// starting point of every experiment binary.
    pub fn scenario(&self, family: DataFamily, partition: Partition) -> Scenario {
        let mut sc = Scenario::standard(family, partition, self.tier, self.seed);
        self.tune(&mut sc);
        sc
    }

    /// [`ExpOptions::scenario`] with explicit scale overrides (device-count
    /// and round sweeps).
    pub fn scenario_scaled(
        &self,
        family: DataFamily,
        partition: Partition,
        scale: Scale,
    ) -> Scenario {
        let mut sc = Scenario::standard_scaled(family, partition, self.tier, self.seed, scale);
        self.tune(&mut sc);
        sc
    }

    /// Apply this invocation's seed and worker-thread count to a scenario
    /// built elsewhere (e.g. a registry preset).
    pub fn tune(&self, scenario: &mut Scenario) {
        scenario.sim.seed = self.seed;
        scenario.sim.threads = self.threads;
    }

    /// Write a CSV artifact, creating the output directory if needed.
    pub fn write_csv(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self.out_dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create CSV");
        f.write_all(contents.as_bytes()).expect("write CSV");
        println!("  [csv] {}", path.display());
    }
}

/// Format an accuracy as the paper prints them.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Print a named experiment header.
pub fn banner(name: &str, opts: &ExpOptions) {
    println!("================================================================");
    println!("{name}   (tier: {:?}, seed: {})", opts.tier, opts.seed);
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_scenario::Algo;

    #[test]
    fn options_parse_the_shared_flags() {
        let opts = ExpOptions::parse(
            ["--scale", "tiny", "--seed", "9", "--threads", "3", "--out", "/tmp/x", "--skew", "quantity"]
                .map(String::from),
        );
        assert_eq!(opts.tier, Tier::Tiny);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.threads, 3);
        assert_eq!(opts.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(opts.extra_value("--skew"), Some("quantity"));
    }

    #[test]
    fn scenario_carries_the_invocation_knobs() {
        let opts = ExpOptions {
            tier: Tier::Tiny,
            seed: 5,
            threads: 2,
            ..Default::default()
        };
        let sc = opts.scenario(DataFamily::MnistLike, Partition::Iid);
        assert_eq!(sc.sim.seed, 5);
        assert_eq!(sc.sim.threads, 2);
        assert_eq!(sc.devices(), 3);
        assert!(matches!(sc.algorithm, Algo::FedZkt(_)));
        sc.validate().expect("standard scenario validates");
    }

    #[test]
    fn tiny_fedzkt_and_fedmd_run_end_to_end() {
        let opts = ExpOptions { tier: Tier::Tiny, seed: 2, ..Default::default() };
        let sc = opts.scenario(DataFamily::MnistLike, Partition::Iid);
        let log = sc.run().expect("fedzkt leg");
        assert_eq!(log.rounds.len(), 2);
        let mut md = sc.fedmd_counterpart(opts.tier, fedmd_public_family(DataFamily::MnistLike));
        md.sim.rounds = 1;
        let log = md.run().expect("fedmd leg");
        assert_eq!(log.rounds.len(), 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9776), "97.76%");
    }
}
