//! # fedzkt-bench
//!
//! Experiment harness reproducing every table and figure of the FedZKT
//! paper's evaluation (§IV). Each `src/bin/*` binary regenerates one
//! artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table I — IID accuracy, FedZKT vs FedMD (incl. public-dataset sensitivity) |
//! | `fig2`   | Figure 2 — ‖∇ₓL‖ for SL / KL / ℓ1 over rounds |
//! | `fig3`   | Figure 3 — learning curves, FedZKT vs FedMD (CIFAR-10) |
//! | `fig4`   | Figure 4 — non-IID accuracy across c and β |
//! | `table2` | Table II — loss-function ablation under non-IID |
//! | `fig5`   | Figure 5 — per-device learning curves, heterogeneous zoo |
//! | `table3` | Table III — per-device lower/upper bounds |
//! | `fig6`   | Figure 6 — straggler portions p |
//! | `table4` | Table IV — ℓ2-regularization ablation |
//! | `fig7`   | Figure 7 — device counts K |
//! | `run_all`| everything above, emitting an EXPERIMENTS.md fragment |
//! | `bench_gemm` | execution-model baseline: GEMM / conv-lowering / round throughput across thread counts → `BENCH_gemm.json` |
//!
//! All binaries accept `--paper` (paper-scale parameters), `--seed N` and
//! `--scale quick|tiny`; results print as aligned tables and are written as
//! CSV under `target/experiments/`.

#![warn(missing_docs)]

use fedzkt_core::{FedMd, FedMdConfig, FedZkt, FedZktConfig};
use fedzkt_data::{DataFamily, Dataset, Partition, SynthConfig};
use fedzkt_fl::{RunLog, SimConfig, Simulation};
use fedzkt_models::{GeneratorSpec, ModelSpec};
use std::io::Write as _;
use std::path::PathBuf;

/// Workload tier: how much compute an experiment spends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Minutes-scale CPU runs (default), preserving the paper's qualitative
    /// shapes.
    Quick,
    /// Seconds-scale smoke runs (CI-friendly).
    Tiny,
    /// The paper's §IV-A3 parameters (hours on CPU).
    Paper,
}

/// Parsed command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Workload tier.
    pub tier: Tier,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSVs.
    pub out_dir: PathBuf,
    /// Binary-specific flags the common parser did not recognise
    /// (e.g. fig4's `--skew quantity`).
    pub extras: Vec<String>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            tier: Tier::Quick,
            seed: 42,
            out_dir: PathBuf::from("target/experiments"),
            extras: Vec::new(),
        }
    }
}

impl ExpOptions {
    /// Parse `--paper`, `--scale quick|tiny|paper`, `--seed N`, `--out DIR`
    /// from `std::env::args`; unrecognised arguments are collected into
    /// [`ExpOptions::extras`] for binary-specific flags.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (testable form of
    /// [`ExpOptions::from_args`]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = ExpOptions::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => opts.tier = Tier::Paper,
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    opts.tier = match v.as_str() {
                        "quick" => Tier::Quick,
                        "tiny" => Tier::Tiny,
                        "paper" => Tier::Paper,
                        other => {
                            eprintln!("unknown scale '{other}' (quick|tiny|paper)");
                            std::process::exit(2);
                        }
                    };
                }
                "--seed" => {
                    opts.seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                        eprintln!("--seed needs an integer");
                        std::process::exit(2);
                    });
                }
                "--out" => {
                    opts.out_dir = PathBuf::from(args.next().unwrap_or_default());
                }
                "--help" | "-h" => {
                    println!(
                        "usage: [--paper | --scale quick|tiny|paper] [--seed N] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => opts.extras.push(other.to_string()),
            }
        }
        opts
    }

    /// Value following `flag` among the extra arguments, if present.
    pub fn extra_value(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.extras.get(i + 1))
            .map(String::as_str)
    }

    /// Write a CSV artifact, creating the output directory if needed.
    pub fn write_csv(&self, name: &str, contents: &str) {
        std::fs::create_dir_all(&self.out_dir).expect("create output dir");
        let path = self.out_dir.join(name);
        let mut f = std::fs::File::create(&path).expect("create CSV");
        f.write_all(contents.as_bytes()).expect("write CSV");
        println!("  [csv] {}", path.display());
    }
}

/// A fully specified federated workload: dataset, shards, zoo and configs
/// sized to a [`Tier`].
pub struct Workload {
    /// Private training data.
    pub train: Dataset,
    /// Held-out test data.
    pub test: Dataset,
    /// Device shards (index sets into `train`).
    pub shards: Vec<Vec<usize>>,
    /// Per-device architectures.
    pub zoo: Vec<ModelSpec>,
    /// Protocol configuration (rounds, participation, seed, …) shared by
    /// every algorithm through the [`Simulation`] driver.
    pub sim: SimConfig,
    /// FedZKT configuration.
    pub fedzkt: FedZktConfig,
    /// FedMD configuration.
    pub fedmd: FedMdConfig,
}

/// Tier-dependent scale parameters for one dataset family.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Device count `K`.
    pub devices: usize,
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Local epochs `T_l`.
    pub local_epochs: usize,
    /// Server distillation iterations `nD`.
    pub distill_iters: usize,
    /// Image side length.
    pub img: usize,
    /// Training samples.
    pub train_n: usize,
    /// Test samples.
    pub test_n: usize,
    /// Batch size.
    pub batch: usize,
}

impl Scale {
    /// Scale for a family and tier.
    pub fn for_family(family: DataFamily, tier: Tier) -> Scale {
        let cifar = matches!(family, DataFamily::Cifar10Like);
        match tier {
            Tier::Paper => Scale {
                devices: 10,
                rounds: if cifar { 100 } else { 50 },
                local_epochs: if cifar { 10 } else { 5 },
                distill_iters: if cifar { 500 } else { 200 },
                img: if cifar { 32 } else { 28 },
                train_n: 50_000,
                test_n: 10_000,
                batch: 256,
            },
            Tier::Quick => Scale {
                devices: 5,
                rounds: if cifar { 8 } else { 7 },
                local_epochs: 2,
                distill_iters: if cifar { 20 } else { 14 },
                img: 12,
                train_n: 600,
                test_n: 300,
                batch: 32,
            },
            Tier::Tiny => Scale {
                devices: 3,
                rounds: 2,
                local_epochs: 1,
                distill_iters: 4,
                img: 8,
                train_n: 120,
                test_n: 60,
                batch: 16,
            },
        }
    }
}

/// Build the standard workload for a private family, partition and tier.
pub fn build_workload(
    family: DataFamily,
    partition: Partition,
    tier: Tier,
    seed: u64,
) -> Workload {
    let s = Scale::for_family(family, tier);
    build_workload_scaled(family, partition, tier, seed, s)
}

/// Build a workload with explicit scale overrides (used by fig5/6/7 which
/// vary K and rounds).
pub fn build_workload_scaled(
    family: DataFamily,
    partition: Partition,
    tier: Tier,
    seed: u64,
    s: Scale,
) -> Workload {
    let (train, test) = SynthConfig {
        family,
        img: s.img,
        train_n: s.train_n,
        test_n: s.test_n,
        seed,
        ..Default::default()
    }
    .generate();
    let shards = partition
        .split(train.labels(), train.num_classes(), s.devices, seed.wrapping_add(17))
        .expect("partition");
    let base_zoo = if family == DataFamily::Cifar10Like {
        ModelSpec::paper_zoo_cifar()
    } else {
        ModelSpec::paper_zoo_small()
    };
    let zoo = ModelSpec::assign_round_robin(&base_zoo, s.devices);
    let global_model = if family == DataFamily::Cifar10Like {
        ModelSpec::MobileNetV2 { width: 1.0 }
    } else {
        ModelSpec::SmallCnn { base_channels: 8 }
    };
    let generator = match tier {
        Tier::Paper => GeneratorSpec { z_dim: 100, ngf: 32 },
        Tier::Quick => GeneratorSpec { z_dim: 32, ngf: 8 },
        Tier::Tiny => GeneratorSpec { z_dim: 16, ngf: 4 },
    };
    // Learning rates: the paper's values (0.01 / 1e-3) are tuned for
    // nD = 200–500 server iterations; the reduced tiers compensate with
    // proportionally larger steps.
    let sim = SimConfig { rounds: s.rounds, seed, ..Default::default() };
    let fedzkt = FedZktConfig {
        local_epochs: s.local_epochs,
        distill_iters: s.distill_iters,
        transfer_iters: s.distill_iters,
        device_batch: s.batch,
        distill_batch: s.batch,
        device_lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
        server_lr: 0.01,
        transfer_lr: 0.01,
        generator_lr: 1e-3,
        generator,
        global_model,
        ..Default::default()
    };
    let fedmd = FedMdConfig {
        public_warmup_epochs: s.local_epochs,
        private_warmup_epochs: s.local_epochs,
        alignment_size: (s.train_n / 4).clamp(32, 5000),
        digest_epochs: 1,
        revisit_epochs: s.local_epochs,
        batch_size: s.batch,
        lr: if tier == Tier::Paper { 0.01 } else { 0.05 },
    };
    Workload { train, test, shards, zoo, sim, fedzkt, fedmd }
}

/// The public dataset FedMD pairs with a private family in Table I
/// (MNIST↔FASHION, FASHION↔MNIST, KMNIST↔FASHION; CIFAR-10 is handled
/// separately with both CIFAR-100 and SVHN).
pub fn fedmd_public_family(private: DataFamily) -> DataFamily {
    match private {
        DataFamily::MnistLike => DataFamily::FashionLike,
        DataFamily::FashionLike => DataFamily::MnistLike,
        DataFamily::KmnistLike => DataFamily::FashionLike,
        _ => DataFamily::Cifar100Like,
    }
}

/// Generate a public dataset geometrically compatible with `workload`.
pub fn build_public(workload: &Workload, family: DataFamily, seed: u64) -> Dataset {
    let (public, _) = SynthConfig {
        family,
        img: workload.train.img_size(),
        train_n: workload.train.len(),
        test_n: 8,
        seed: seed.wrapping_add(0x9999),
        ..Default::default()
    }
    .generate();
    public
}

/// Run FedZKT on a workload under the [`Simulation`] driver, returning its
/// log.
pub fn run_fedzkt(workload: &Workload, sim: SimConfig, cfg: FedZktConfig) -> RunLog {
    let fed = FedZkt::new(&workload.zoo, &workload.train, &workload.shards, cfg, &sim);
    Simulation::builder(fed, workload.test.clone(), sim).build().run().clone()
}

/// Run FedMD on a workload with the given public dataset under the
/// [`Simulation`] driver.
pub fn run_fedmd(
    workload: &Workload,
    public: Dataset,
    sim: SimConfig,
    cfg: FedMdConfig,
) -> RunLog {
    let fed = FedMd::new(&workload.zoo, &workload.train, &workload.shards, public, cfg, &sim);
    Simulation::builder(fed, workload.test.clone(), sim).build().run().clone()
}

/// Format an accuracy as the paper prints them.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Print a named experiment header.
pub fn banner(name: &str, opts: &ExpOptions) {
    println!("================================================================");
    println!("{name}   (tier: {:?}, seed: {})", opts.tier, opts.seed);
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_builds() {
        let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 1);
        assert_eq!(w.shards.len(), 3);
        assert_eq!(w.zoo.len(), 3);
        assert_eq!(w.train.len(), 120);
    }

    #[test]
    fn cifar_workload_uses_cifar_zoo() {
        let w = build_workload(DataFamily::Cifar10Like, Partition::Iid, Tier::Tiny, 1);
        assert!(matches!(w.zoo[0], ModelSpec::ShuffleNetV2 { .. }));
        assert_eq!(w.train.channels(), 3);
    }

    #[test]
    fn public_family_pairing_matches_table1() {
        assert_eq!(fedmd_public_family(DataFamily::MnistLike), DataFamily::FashionLike);
        assert_eq!(fedmd_public_family(DataFamily::FashionLike), DataFamily::MnistLike);
        assert_eq!(fedmd_public_family(DataFamily::KmnistLike), DataFamily::FashionLike);
    }

    #[test]
    fn tiny_fedzkt_and_fedmd_run_end_to_end() {
        let w = build_workload(DataFamily::MnistLike, Partition::Iid, Tier::Tiny, 2);
        let log = run_fedzkt(&w, w.sim, w.fedzkt);
        assert_eq!(log.rounds.len(), 2);
        let public = build_public(&w, DataFamily::FashionLike, 2);
        let log = run_fedmd(&w, public, SimConfig { rounds: 1, ..w.sim }, w.fedmd);
        assert_eq!(log.rounds.len(), 1);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9776), "97.76%");
    }
}
