//! Property-based tests of the wire-format payload codecs, via the
//! vendored proptest shim: the [`PayloadCodec`] contract holds for
//! arbitrary tensor shapes (empty, scalar, 1-element, multi-dimensional)
//! and arbitrary finite values.
//!
//! The properties (the codec module's documented contract):
//! * `Raw` round-trips bit-exactly;
//! * `QuantQ8`/`QuantQ4` bound per-element error by `scale/2` and are
//!   exact on constant tensors;
//! * `TopK` decoding is idempotent and keeps exactly the `k` largest
//!   magnitudes;
//! * every codec's `wire_bytes` equals `encode(..).len()`, exactly.

use fedzkt_fl::{CodecSpec, PayloadCodec};
use fedzkt_nn::StateDict;
use fedzkt_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic value fill (SplitMix64 → roughly centered floats), so a
/// generated `(dims, seed)` pair fully determines a tensor.
fn tensor_from_seed(dims: &[usize], seed: u64) -> Tensor {
    let n: usize = dims.iter().product();
    let mut state = seed;
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            let unit = ((z ^ (z >> 31)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            ((unit - 0.5) * 64.0) as f32
        })
        .collect();
    Tensor::from_vec(data, dims).unwrap()
}

/// Finite min/max over a slice (the quantizer's range).
fn range(data: &[f32]) -> (f32, f32) {
    data.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
        (lo.min(v), hi.max(v))
    })
}

const ALL: [CodecSpec; 6] = [
    CodecSpec::Raw,
    CodecSpec::QuantQ8,
    CodecSpec::QuantQ4,
    CodecSpec::TopK { density: 0.05 },
    CodecSpec::TopK { density: 0.5 },
    CodecSpec::TopK { density: 1.0 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw round-trips bit-exactly for arbitrary shapes, including empty
    /// (a zero dimension), scalar (`[]`), and 1-element tensors, split
    /// arbitrarily between params and buffers.
    #[test]
    fn raw_roundtrips_bit_exactly(
        shapes in proptest::collection::vec(proptest::collection::vec(0usize..5, 0..=3), 0..=4),
        n_params in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let tensors: Vec<Tensor> = shapes
            .iter()
            .enumerate()
            .map(|(i, dims)| tensor_from_seed(dims, seed.wrapping_add(i as u64)))
            .collect();
        let split = n_params.min(tensors.len());
        let (params, buffers) = {
            let mut it = tensors.into_iter();
            let params: Vec<Tensor> = (&mut it).take(split).collect();
            (params, it.collect::<Vec<Tensor>>())
        };
        let sd = StateDict { params, buffers };
        let codec = CodecSpec::Raw;
        let back = codec.decode(&codec.encode(&sd)).unwrap();
        prop_assert_eq!(back.params.len(), sd.params.len());
        prop_assert_eq!(back.buffers.len(), sd.buffers.len());
        for (a, b) in sd.iter_tensors().zip(back.iter_tensors()) {
            prop_assert_eq!(a.shape(), b.shape());
            for (x, y) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// The quantizers' round-trip error is bounded by scale/2 per element
    /// (scale = finite range / levels), for arbitrary shapes and values.
    #[test]
    fn quantizers_bound_roundtrip_error(
        dims in proptest::collection::vec(1usize..6, 0..=3),
        seed in 0u64..1_000_000,
    ) {
        let t = tensor_from_seed(&dims, seed);
        let data = t.data().to_vec();
        let sd = StateDict { params: vec![t], buffers: Vec::new() };
        for (codec, levels) in [(CodecSpec::QuantQ8, 255.0f64), (CodecSpec::QuantQ4, 15.0)] {
            let back = codec.decode(&codec.encode(&sd)).unwrap();
            let (min, max) = range(&data);
            // Empty and 1-element tensors have a degenerate (zero) range.
            let scale = if data.len() < 2 { 0.0 } else { ((max as f64 - min as f64) / levels) as f32 };
            // A hair of slack for the f32 reconstruction arithmetic.
            let bound = scale * 0.5 + scale * 1e-4 + 1e-6;
            for (x, y) in data.iter().zip(back.params[0].data()) {
                prop_assert!(
                    (x - y).abs() <= bound,
                    "{:?}: |{} - {}| = {} > {}", codec, x, y, (x - y).abs(), bound
                );
            }
        }
    }

    /// Constant tensors survive quantization exactly: the range collapses,
    /// the scale is zero, and every element decodes to the constant.
    #[test]
    fn quantizers_are_exact_on_constant_tensors(
        n in 1usize..40,
        value in -1000.0f32..1000.0,
    ) {
        let sd = StateDict { params: vec![Tensor::full(&[n], value)], buffers: Vec::new() };
        for codec in [CodecSpec::QuantQ8, CodecSpec::QuantQ4] {
            let back = codec.decode(&codec.encode(&sd)).unwrap();
            for y in back.params[0].data() {
                prop_assert_eq!(*y, value, "{:?}", codec);
            }
        }
    }

    /// TopK decode is idempotent — re-encoding a decoded payload selects
    /// the same survivors, bit for bit — and what survives is exactly the
    /// k largest magnitudes: no dropped element outranks a kept one.
    #[test]
    fn topk_is_idempotent_and_keeps_the_largest(
        dims in proptest::collection::vec(1usize..6, 1..=3),
        seed in 0u64..1_000_000,
        density in 0.01f32..1.0,
    ) {
        let codec = CodecSpec::TopK { density };
        let t = tensor_from_seed(&dims, seed);
        let original = t.data().to_vec();
        let sd = StateDict { params: vec![t], buffers: Vec::new() };
        let once = codec.decode(&codec.encode(&sd)).unwrap();
        let twice = codec.decode(&codec.encode(&once)).unwrap();
        for (a, b) in once.params[0].data().iter().zip(twice.params[0].data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "decode is not idempotent");
        }
        // Survivor analysis against the original values.
        let decoded = once.params[0].data();
        let kept: Vec<usize> = (0..original.len()).filter(|&i| decoded[i] != 0.0).collect();
        let dropped_max = (0..original.len())
            .filter(|i| !kept.contains(i))
            .map(|i| original[i].abs())
            .fold(0.0f32, f32::max);
        for &i in &kept {
            prop_assert_eq!(decoded[i].to_bits(), original[i].to_bits(), "kept values are verbatim");
            prop_assert!(
                original[i].abs() >= dropped_max,
                "kept |{}| < dropped max |{}|", original[i], dropped_max
            );
        }
        // Kept exactly ⌈density·n⌉ elements — modulo original zeros, which
        // are indistinguishable from dropped positions after decode.
        let n = original.len();
        let k = ((density as f64 * n as f64).ceil() as usize).clamp(1, n);
        let zero_originals = original.iter().filter(|v| **v == 0.0).count();
        prop_assert!(kept.len() <= k && kept.len() + zero_originals >= k);
    }

    /// Every codec's `wire_bytes` equals `encode(..).len()` exactly, for
    /// arbitrary shapes (the accounting the simulator trusts).
    #[test]
    fn wire_bytes_equals_encoded_length(
        shapes in proptest::collection::vec(proptest::collection::vec(0usize..6, 0..=3), 0..=3),
        seed in 0u64..1_000_000,
    ) {
        let tensors: Vec<Tensor> = shapes
            .iter()
            .enumerate()
            .map(|(i, dims)| tensor_from_seed(dims, seed.wrapping_add(i as u64)))
            .collect();
        let sd = StateDict { params: tensors, buffers: Vec::new() };
        for codec in ALL {
            prop_assert_eq!(
                codec.encode(&sd).len(),
                codec.wire_bytes(&sd),
                "{:?}", codec
            );
        }
    }

    /// The codecs carry *any* named tensor bundle, not just model state
    /// dicts: a FedGKT-shaped per-sample knowledge bundle — `[n, d]`
    /// features, `[n, C]` logits, `[n]` labels — encodes to exactly
    /// `wire_bytes`, decodes shape- and count-preserving under every
    /// codec, and round-trips bit-exactly under `Raw`, for arbitrary
    /// sample counts and dimensions (including `n = 0`, an empty shard).
    #[test]
    fn per_sample_bundles_are_first_class_payloads(
        n in 0usize..20,
        d in 1usize..9,
        classes in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let bundle = StateDict {
            params: vec![
                tensor_from_seed(&[n, d], seed),
                tensor_from_seed(&[n, classes], seed.wrapping_add(1)),
                tensor_from_seed(&[n], seed.wrapping_add(2)),
            ],
            buffers: Vec::new(),
        };
        for codec in ALL {
            let bytes = codec.encode(&bundle);
            prop_assert_eq!(bytes.len(), codec.wire_bytes(&bundle), "{:?}", codec);
            let back = codec.decode(&bytes).unwrap();
            prop_assert_eq!(back.params.len(), 3, "{:?}", codec);
            for (a, b) in bundle.iter_tensors().zip(back.iter_tensors()) {
                prop_assert_eq!(a.shape(), b.shape(), "{:?}", codec);
            }
        }
        let raw = CodecSpec::Raw.decode(&CodecSpec::Raw.encode(&bundle)).unwrap();
        for (a, b) in bundle.iter_tensors().zip(raw.iter_tensors()) {
            for (x, y) in a.data().iter().zip(b.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Encoding is a pure function: byte-identical across invocations.
    #[test]
    fn encoding_is_deterministic(
        dims in proptest::collection::vec(0usize..6, 0..=3),
        seed in 0u64..1_000_000,
    ) {
        let sd = StateDict {
            params: vec![tensor_from_seed(&dims, seed)],
            buffers: vec![tensor_from_seed(&dims, seed.wrapping_add(7))],
        };
        for codec in ALL {
            prop_assert_eq!(codec.encode(&sd), codec.encode(&sd), "{:?}", codec);
        }
    }
}
