//! Property tests for the lazy-fleet substrate: the participation sampler
//! replayed over [`DeviceRegistry`]s, shard-layout invariance of every
//! registry observable, and bit-exactness of the rematerialization round
//! trip the lazy mode's determinism guarantee rests on.

use fedzkt_fl::{DeviceRegistry, ParticipationSampler};
use fedzkt_models::ModelSpec;
use fedzkt_nn::{load_state_dict, state_dict, StateDict};
use fedzkt_tensor::{split_seed, Tensor};
use proptest::prelude::*;

fn scalar_summary(v: f32) -> StateDict {
    StateDict { params: vec![Tensor::scalar(v)], buffers: Vec::new() }
}

/// Every f32 in transfer order, as raw bits — the comparison that catches
/// even a `-0.0` vs `0.0` drift a value compare would wave through.
fn bits(sd: &StateDict) -> Vec<u32> {
    sd.iter_tensors().flat_map(|t| t.data().iter().map(|v| v.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replaying the sampler's rounds as checkout/release cycles over a
    /// lazy registry: the active set is always a sorted, unique subset of
    /// the registered ids; the sampled ids are a function of
    /// `(devices, fraction, seed, round)` alone (so lazy and eager fleets,
    /// which share one sampler construction, sample identically); and the
    /// resulting counters — including the peak-resident gauge the memory
    /// tests read — are identical for every slot-shard size.
    #[test]
    fn sampled_residency_is_shard_invariant(devices in 1usize..64, p in 0.01f32..1.0, seed in 0u64..200) {
        let sampler = ParticipationSampler::new(devices, p, seed);
        let again = ParticipationSampler::new(devices, p, seed);
        let mut outcomes = Vec::new();
        for shard_size in [1usize, 7, 64] {
            let mut reg = DeviceRegistry::with_shard_size(devices, shard_size);
            for round in 0..4 {
                let active = sampler.active(round);
                prop_assert!(active.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
                prop_assert!(active.iter().all(|&k| k < reg.registered()));
                prop_assert_eq!(&active, &again.active(round));
                for &k in &active {
                    reg.checkout(k);
                }
                prop_assert_eq!(reg.resident(), active.len());
                for &k in &active {
                    reg.release(k);
                }
            }
            outcomes.push((reg.resident(), reg.peak_resident(), reg.touched()));
        }
        prop_assert!(outcomes.windows(2).all(|w| w[0] == w[1]), "shard size leaked: {outcomes:?}");
        let (resident, peak, _) = outcomes[0];
        prop_assert_eq!(resident, 0, "every round released its working set");
        prop_assert_eq!(peak, sampler.active_count(), "peak is exactly one round's sample");
    }

    /// Shard size is pure layout: an arbitrary interleaving of checkouts,
    /// releases, summary stores and summary takes produces identical
    /// observables (counters, residency flags, summaries, returned values)
    /// on registries sharded 1, 7 and 64 wide.
    #[test]
    fn registry_observables_are_shard_size_invariant(
        ops in proptest::collection::vec((0usize..16, 0u8..3), 1..80),
    ) {
        let mut regs: Vec<DeviceRegistry> =
            [1usize, 7, 64].iter().map(|&s| DeviceRegistry::with_shard_size(16, s)).collect();
        for (i, &(k, op)) in ops.iter().enumerate() {
            let mut returned = Vec::new();
            for reg in &mut regs {
                returned.push(match op {
                    0 => {
                        if reg.is_resident(k) {
                            reg.release(k);
                        } else {
                            reg.checkout(k);
                        }
                        None
                    }
                    1 => {
                        reg.store_summary(k, scalar_summary(i as f32));
                        None
                    }
                    _ => reg.take_summary(k),
                });
            }
            prop_assert!(returned.windows(2).all(|w| w[0] == w[1]));
            let observed: Vec<_> = regs
                .iter()
                .map(|r| {
                    (r.resident(), r.peak_resident(), r.touched(), r.is_resident(k), r.summary(k).cloned())
                })
                .collect();
            prop_assert!(observed.windows(2).all(|w| w[0] == w[1]));
        }
    }
}

proptest! {
    // Fewer cases: each one builds three models.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The lazy fleet's rematerialization contract, on real zoo members:
    /// a fresh build from the construction seed is bit-identical to the
    /// original build, and a fresh build from a *different* seed restored
    /// via `load_state_dict` is bit-identical to the stored summary — every
    /// parameter and buffer, compared as raw f32 bits.
    #[test]
    fn rematerialization_roundtrip_is_bit_exact(arch in 0usize..4, img_sel in 0usize..2, seed in 0u64..1000) {
        let spec = [
            ModelSpec::Mlp { hidden: 8 },
            ModelSpec::Mlp { hidden: 17 },
            ModelSpec::SmallCnn { base_channels: 2 },
            ModelSpec::SmallCnn { base_channels: 3 },
        ][arch];
        let img = [4usize, 8][img_sel];
        let original = spec.build(1, 4, img, seed);
        let summary = state_dict(&*original);

        // First materialization: same spec, same seed, nothing to restore.
        let fresh = spec.build(1, 4, img, seed);
        prop_assert_eq!(bits(&state_dict(&*fresh)), bits(&summary));

        // Rematerialization: deliberately different init seed, then the
        // stored summary overwrites every parameter and buffer.
        let rebuilt = spec.build(1, 4, img, split_seed(seed, 999));
        load_state_dict(&*rebuilt, &summary).expect("same architecture");
        prop_assert_eq!(bits(&state_dict(&*rebuilt)), bits(&summary));
    }
}
