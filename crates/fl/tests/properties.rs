//! Property-based tests on the FL substrate's public API.

use fedzkt_data::{DataFamily, Partition, SynthConfig};
use fedzkt_fl::{
    accuracy, ChurnProcess, ChurnSpec, DeviceResources, ParticipationSampler, RoundParticipant,
    SimClock,
};
use proptest::prelude::*;

/// Arbitrary *valid* churn specs: every field ranges over its legal
/// domain, with a flags word forcing the degenerate branches (no
/// departures, no dropout, steady links) back in so they stay covered.
fn churn_spec() -> impl Strategy<Value = ChurnSpec> {
    (
        0u64..1000,
        0usize..6,
        0.5f32..12.0,
        0usize..5,
        0usize..8,
        0.0f32..0.95,
        0.05f32..1.0,
        0usize..8,
    )
        .prop_map(|(seed, arrival_window, life, duty_period, on, drop, floor, flags)| {
            ChurnSpec {
                seed,
                arrival_window,
                mean_lifetime: if flags & 1 != 0 { 0.0 } else { life },
                duty_period,
                // duty_on must sit in 1..=duty_period when cycling at all.
                duty_on: if duty_period == 0 { 0 } else { on % duty_period + 1 },
                dropout: if flags & 2 != 0 { 0.0 } else { drop },
                bandwidth_floor: if flags & 4 != 0 { 1.0 } else { floor },
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The participation sampler always returns a sorted, deduplicated,
    /// in-range, non-empty subset of the requested size.
    #[test]
    fn sampler_invariants(devices in 1usize..30, p in 0.01f32..1.0, seed in 0u64..500, round in 0usize..50) {
        let s = ParticipationSampler::new(devices, p, seed);
        let active = s.active(round);
        prop_assert!(!active.is_empty());
        prop_assert!(active.len() <= devices);
        prop_assert!(active.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
        prop_assert!(active.iter().all(|&d| d < devices));
        prop_assert_eq!(active.len(), s.active_count());
        // Deterministic.
        prop_assert_eq!(active, s.active(round));
    }

    /// Full participation is exactly everyone, for any seed and round.
    #[test]
    fn full_participation(devices in 1usize..20, seed in 0u64..100, round in 0usize..20) {
        let s = ParticipationSampler::new(devices, 1.0, seed);
        prop_assert_eq!(s.active(round), (0..devices).collect::<Vec<_>>());
    }

    /// Accuracy is a proportion: in [0, 1], 1 iff identical, monotone in
    /// the number of agreeing positions.
    #[test]
    fn accuracy_is_a_proportion(labels in proptest::collection::vec(0usize..5, 1..40)) {
        let perfect = accuracy(&labels, &labels);
        prop_assert!((perfect - 1.0).abs() < 1e-6);
        let mut wrong = labels.clone();
        wrong[0] = (wrong[0] + 1) % 5;
        let one_off = accuracy(&wrong, &labels);
        prop_assert!(one_off < 1.0);
        prop_assert!((one_off - (labels.len() - 1) as f32 / labels.len() as f32).abs() < 1e-5);
    }

    /// Simulated round duration is monotone in the active set: adding a
    /// device can only keep or increase the round time.
    #[test]
    fn round_time_monotone_in_active_set(seed in 0u64..200, samples in 1usize..500) {
        let pop = DeviceResources::heterogeneous_population(4, seed);
        let mut clock_small = SimClock::new(pop.clone());
        let mut clock_big = SimClock::new(pop);
        let two: Vec<_> = (0..2).map(RoundParticipant::full).collect();
        let four: Vec<_> = (0..4).map(RoundParticipant::full).collect();
        let small = clock_small.advance_round(&two, &|_| samples, &|_| 1000, &|_| 1000, 0.1);
        let big = clock_big.advance_round(&four, &|_| samples, &|_| 1000, &|_| 1000, 0.1);
        prop_assert!(big >= small - 1e-9);
    }

    /// The availability timeline is invariant under fleet sharding: for
    /// every chunk size, walking the fleet a chunk at a time (as a
    /// sharded registry does) yields exactly the monolithic scan. The
    /// registry's internal layout can never leak into which devices
    /// exist in a round.
    #[test]
    fn churn_timeline_is_shard_invariant(
        spec in churn_spec(),
        devices in 1usize..200,
        chunk in 1usize..300,
        round in 0usize..30,
    ) {
        let p = ChurnProcess::new(spec, devices);
        prop_assert_eq!(p.available_chunked(round, chunk), p.available(round));
    }

    /// The timeline is a pure function of (spec, device, round): querying
    /// rounds in any scrambled order, with repeats, returns the same
    /// answers as a fresh evaluator queried in ascending order — no
    /// hidden cursor, which is what lets a resumed run re-derive the
    /// exact fleet history from the spec alone.
    #[test]
    fn churn_timeline_is_query_order_independent(
        spec in churn_spec(),
        devices in 1usize..100,
        order in proptest::collection::vec(0usize..20, 1..30),
    ) {
        let scrambled = ChurnProcess::new(spec, devices);
        let mut seen: Vec<(usize, Vec<usize>)> = Vec::new();
        for &round in &order {
            seen.push((round, scrambled.available(round)));
            // The per-round draws must be equally history-free.
            let _ = scrambled.dropout(round % devices, round);
            let _ = scrambled.link_scale(round % devices, round);
        }
        let fresh = ChurnProcess::new(spec, devices);
        for (round, avail) in seen {
            prop_assert_eq!(avail, fresh.available(round));
        }
        for round in 0..20 {
            for k in 0..devices {
                prop_assert_eq!(scrambled.dropout(k, round), fresh.dropout(k, round));
                prop_assert_eq!(
                    scrambled.link_scale(k, round).to_bits(),
                    fresh.link_scale(k, round).to_bits()
                );
            }
        }
    }

    /// Range invariants of the per-round draws: dropout fractions are
    /// partial completions in [0, 1), link scales stay inside the
    /// configured [floor, 1] band, and the degenerate spec values switch
    /// each draw off entirely.
    #[test]
    fn churn_draws_stay_in_range(
        spec in churn_spec(),
        devices in 1usize..100,
        round in 0usize..30,
    ) {
        let p = ChurnProcess::new(spec, devices);
        for k in 0..devices {
            // Surviving the round (None) is always legal; a drop must
            // come with a partial-completion fraction in [0, 1).
            if let Some(fraction) = p.dropout(k, round) {
                prop_assert!(spec.dropout > 0.0);
                prop_assert!((0.0..1.0).contains(&fraction));
            }
            if spec.dropout == 0.0 {
                prop_assert_eq!(p.dropout(k, round), None);
            }
            let scale = p.link_scale(k, round);
            prop_assert!(scale >= f64::from(spec.bandwidth_floor) && scale <= 1.0);
            if spec.bandwidth_floor >= 1.0 {
                prop_assert_eq!(scale, 1.0);
            }
        }
    }

    /// A quiescent spec is behaviourally the static fleet: everyone
    /// available every round, regardless of the other knob values.
    #[test]
    fn quiescent_churn_is_the_static_fleet(
        seed in 0u64..1000,
        devices in 1usize..100,
        round in 0usize..50,
    ) {
        let spec = ChurnSpec { seed, ..Default::default() };
        prop_assert!(spec.is_quiescent());
        let p = ChurnProcess::new(spec, devices);
        prop_assert_eq!(p.available(round), (0..devices).collect::<Vec<_>>());
    }

    /// Partition + subset: every shard of every scheme yields a dataset
    /// whose class histogram sums back to the shard size.
    #[test]
    fn shard_histograms_consistent(seed in 0u64..100, k in 1usize..6) {
        let (train, _) = SynthConfig {
            family: DataFamily::MnistLike, img: 8, train_n: 60, test_n: 8,
            classes: 5, seed, ..Default::default()
        }.generate();
        for scheme in [
            Partition::Iid,
            Partition::QuantitySkew { classes_per_device: 2 },
            Partition::Dirichlet { beta: 0.5 },
        ] {
            let shards = scheme.split(train.labels(), 5, k, seed).unwrap();
            for shard in &shards {
                let sub = train.subset(shard);
                prop_assert_eq!(sub.class_counts().iter().sum::<usize>(), shard.len());
            }
        }
    }
}

#[test]
fn microcontroller_profile_is_resource_constrained() {
    // The premise of the paper, encoded as a test on the simulator's
    // device profiles: MCU compute and links are orders of magnitude below
    // smartphone class.
    let mcu = DeviceResources::microcontroller();
    let phone = DeviceResources::smartphone();
    assert!(phone.compute_samples_per_sec / mcu.compute_samples_per_sec >= 50.0);
    assert!(phone.uplink_bytes_per_sec / mcu.uplink_bytes_per_sec >= 10.0);
}
