//! Property-based tests on the FL substrate's public API.

use fedzkt_data::{DataFamily, Partition, SynthConfig};
use fedzkt_fl::{accuracy, DeviceResources, ParticipationSampler, SimClock};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The participation sampler always returns a sorted, deduplicated,
    /// in-range, non-empty subset of the requested size.
    #[test]
    fn sampler_invariants(devices in 1usize..30, p in 0.01f32..1.0, seed in 0u64..500, round in 0usize..50) {
        let s = ParticipationSampler::new(devices, p, seed);
        let active = s.active(round);
        prop_assert!(!active.is_empty());
        prop_assert!(active.len() <= devices);
        prop_assert!(active.windows(2).all(|w| w[0] < w[1]), "sorted & unique");
        prop_assert!(active.iter().all(|&d| d < devices));
        prop_assert_eq!(active.len(), s.active_count());
        // Deterministic.
        prop_assert_eq!(active, s.active(round));
    }

    /// Full participation is exactly everyone, for any seed and round.
    #[test]
    fn full_participation(devices in 1usize..20, seed in 0u64..100, round in 0usize..20) {
        let s = ParticipationSampler::new(devices, 1.0, seed);
        prop_assert_eq!(s.active(round), (0..devices).collect::<Vec<_>>());
    }

    /// Accuracy is a proportion: in [0, 1], 1 iff identical, monotone in
    /// the number of agreeing positions.
    #[test]
    fn accuracy_is_a_proportion(labels in proptest::collection::vec(0usize..5, 1..40)) {
        let perfect = accuracy(&labels, &labels);
        prop_assert!((perfect - 1.0).abs() < 1e-6);
        let mut wrong = labels.clone();
        wrong[0] = (wrong[0] + 1) % 5;
        let one_off = accuracy(&wrong, &labels);
        prop_assert!(one_off < 1.0);
        prop_assert!((one_off - (labels.len() - 1) as f32 / labels.len() as f32).abs() < 1e-5);
    }

    /// Simulated round duration is monotone in the active set: adding a
    /// device can only keep or increase the round time.
    #[test]
    fn round_time_monotone_in_active_set(seed in 0u64..200, samples in 1usize..500) {
        let pop = DeviceResources::heterogeneous_population(4, seed);
        let mut clock_small = SimClock::new(pop.clone());
        let mut clock_big = SimClock::new(pop);
        let small = clock_small.advance_round(&[0, 1], &|_| samples, &|_| 1000, &|_| 1000, 0.1);
        let big = clock_big.advance_round(&[0, 1, 2, 3], &|_| samples, &|_| 1000, &|_| 1000, 0.1);
        prop_assert!(big >= small - 1e-9);
    }

    /// Partition + subset: every shard of every scheme yields a dataset
    /// whose class histogram sums back to the shard size.
    #[test]
    fn shard_histograms_consistent(seed in 0u64..100, k in 1usize..6) {
        let (train, _) = SynthConfig {
            family: DataFamily::MnistLike, img: 8, train_n: 60, test_n: 8,
            classes: 5, seed, ..Default::default()
        }.generate();
        for scheme in [
            Partition::Iid,
            Partition::QuantitySkew { classes_per_device: 2 },
            Partition::Dirichlet { beta: 0.5 },
        ] {
            let shards = scheme.split(train.labels(), 5, k, seed).unwrap();
            for shard in &shards {
                let sub = train.subset(shard);
                prop_assert_eq!(sub.class_counts().iter().sum::<usize>(), shard.len());
            }
        }
    }
}

#[test]
fn microcontroller_profile_is_resource_constrained() {
    // The premise of the paper, encoded as a test on the simulator's
    // device profiles: MCU compute and links are orders of magnitude below
    // smartphone class.
    let mcu = DeviceResources::microcontroller();
    let phone = DeviceResources::smartphone();
    assert!(phone.compute_samples_per_sec / mcu.compute_samples_per_sec >= 50.0);
    assert!(phone.uplink_bytes_per_sec / mcu.uplink_bytes_per_sec >= 10.0);
}
