//! The algorithm-agnostic simulation driver.
//!
//! Every federated algorithm in the workspace — FedZKT, FedAvg/FedProx,
//! FedMD — runs under **one** round loop, [`Simulation`]. The driver owns
//! the protocol machinery the paper holds constant when comparing
//! algorithms: participation sampling (straggler model), communication
//! accounting, the simulated wall clock over heterogeneous
//! [`DeviceResources`], evaluation cadence, and the [`RunLog`]. An
//! algorithm only supplies its two protocol phases through
//! [`FederatedAlgorithm`]:
//!
//! * [`local_update`](FederatedAlgorithm::local_update) — device-side work
//!   for the round's active set (local SGD, logit scoring, …);
//! * [`server_update`](FederatedAlgorithm::server_update) — server-side
//!   aggregation / distillation and the transfer back to devices;
//!
//! plus accessors for its evaluable models and per-device payload shapes.
//! A new scenario — a straggler model, an evaluation cadence, a
//! communication budget, a new algorithm — is written once here and
//! applies to every algorithm.

use crate::checkpoint::{AlgoState, SimCheckpoint, CHECKPOINT_VERSION};
use crate::{
    evaluate, ChurnProcess, ChurnSpec, CodecSpec, CommTracker, DeviceRegistry, DeviceResources,
    Materialization, ParticipationSampler, PayloadCodec, RoundMetrics, RoundParticipant, RunLog,
    SimClock,
};
use fedzkt_data::Dataset;
use fedzkt_nn::{Module, StateDict};
use fedzkt_tensor::compute::with_format;
use fedzkt_tensor::{par, split_seed, ComputeFormat};
use std::any::Any;

/// Protocol-level knobs shared by every federated algorithm. Algorithm
/// configs (`FedZktConfig`, `FedAvgConfig`, `FedMdConfig`) keep only the
/// hyperparameters specific to their update rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Communication rounds `T`.
    pub rounds: usize,
    /// Fraction of devices active per round (the straggler model; 1.0 =
    /// everyone, every round).
    pub participation: f32,
    /// Evaluation batch size.
    pub eval_batch: usize,
    /// Evaluate every `eval_every`-th round (the final round is always
    /// evaluated; `0` means *only* the final round). Skipped rounds carry
    /// the most recent accuracies forward in the [`RunLog`] — at paper
    /// scale, evaluating every round is pure overhead.
    pub eval_every: usize,
    /// Master seed: the run is a pure function of it.
    pub seed: u64,
    /// Worker threads for device-parallel phases; 0 resolves via
    /// [`fedzkt_tensor::par::max_threads`] (`FEDZKT_THREADS`, then
    /// available parallelism). Results are bit-identical for every value.
    pub threads: usize,
    /// Wire-format codec every transmitted payload passes through
    /// ([`crate::codec`]). [`CodecSpec::Raw`] (the default) is bit-exact;
    /// the lossy codecs shrink the accounted traffic *and* perturb the
    /// decoded states the receiving side trains on.
    pub codec: CodecSpec,
    /// Fleet materialization strategy ([`crate::registry`]). Like
    /// `threads`, a throughput/memory knob and never a semantics knob:
    /// lazy and eager runs of the same config are bit-identical. Eager
    /// (the default) materializes every device up front; lazy keeps
    /// devices as registry summaries and materializes them only while
    /// needed, bounding peak memory by the resident set.
    pub materialization: Materialization,
    /// Numeric format for the **inference-heavy** phases: accuracy
    /// evaluation here in the driver, plus any no-grad scoring passes an
    /// algorithm opts into (FedZKT's distillation game). `F32` (the
    /// default) is exact; `Int8` quantizes GEMM operands with the codec's
    /// QuantQ8 affine format for an integer inner product
    /// ([`fedzkt_tensor::compute`]). Training always runs f32 — unlike
    /// `threads`/`materialization` this *is* a semantics knob for the
    /// phases it covers, though a deterministic one: results are still
    /// bit-identical across thread counts and materialization modes.
    pub compute: ComputeFormat,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 10,
            participation: 1.0,
            eval_batch: 64,
            eval_every: 1,
            seed: 0,
            threads: 0,
            codec: CodecSpec::Raw,
            materialization: Materialization::Eager,
            compute: ComputeFormat::F32,
        }
    }
}

impl SimConfig {
    /// The worker-thread count device-parallel phases actually use:
    /// `threads`, or — when 0 — the workspace default from
    /// [`fedzkt_tensor::par::max_threads`].
    pub fn resolved_threads(&self) -> usize {
        par::resolve_threads(self.threads)
    }
}

/// Per-round state the driver hands to an algorithm's phases.
///
/// Algorithms push every transmitted payload through
/// [`RoundContext::through_wire`] and record the returned wire size into
/// [`RoundContext::comm`] (the driver totals it into the metrics and feeds
/// the per-device byte counts to the simulated clock), and read the
/// resolved worker-thread count from [`RoundContext::threads`].
pub struct RoundContext {
    /// Uplink/downlink accounting for this round; record every payload a
    /// device sends or receives at its **wire** (encoded) size.
    pub comm: CommTracker,
    codec: CodecSpec,
    threads: usize,
    server_seconds: f64,
    train_loss: Option<f32>,
}

impl RoundContext {
    fn new(devices: usize, codec: CodecSpec, threads: usize) -> Self {
        RoundContext {
            comm: CommTracker::new(devices),
            codec,
            threads,
            server_seconds: 0.0,
            train_loss: None,
        }
    }

    /// Resolved worker threads for device-parallel work
    /// ([`crate::train_local_fleet`] and friends).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The round's wire-format codec ([`SimConfig::codec`]).
    pub fn codec(&self) -> &CodecSpec {
        &self.codec
    }

    /// Is the round's codec bit-exact (`decode(encode(x)) == x`)? When it
    /// is, a transfer is a pure accounting event: record
    /// [`RoundContext::wire_size`] and skip the decode-and-reload, since
    /// the receiver would observe the sender's state verbatim.
    pub fn lossless(&self) -> bool {
        matches!(self.codec, CodecSpec::Raw)
    }

    /// The wire size of `sd` under the round's codec, without encoding.
    pub fn wire_size(&self, sd: &StateDict) -> usize {
        self.codec.wire_bytes(sd)
    }

    /// The wire size of `module`'s transferable state under the round's
    /// codec, computed from tensor shapes alone — no snapshot, no
    /// encoding. The accounting path for lossless transfers.
    pub fn module_wire_size(&self, module: &dyn Module) -> usize {
        let shapes: Vec<Vec<usize>> = module
            .params()
            .iter()
            .map(|p| p.shape())
            .chain(module.buffers().iter().map(|b| b.shape()))
            .collect();
        self.codec.wire_bytes_for_shapes(shapes.iter().map(Vec::as_slice))
    }

    /// Push a payload through the wire once: encode with the round's
    /// codec, then decode. Returns what the *receiving* side observes —
    /// the (possibly lossy) decoded state — and the wire size in bytes to
    /// record into [`RoundContext::comm`]. Under [`CodecSpec::Raw`] the
    /// returned state is bit-identical to `sd`.
    ///
    /// A broadcast (one server payload to many devices) goes through the
    /// wire **once**; record the returned size once per recipient.
    pub fn through_wire(&self, sd: &StateDict) -> (StateDict, usize) {
        // Raw is bit-exact by contract (property-tested), so the default
        // path skips the encode/decode memcpys and pays one clone.
        if matches!(self.codec, CodecSpec::Raw) {
            return (sd.clone(), self.codec.wire_bytes(sd));
        }
        let bytes = self.codec.encode(sd);
        let wire = bytes.len();
        let decoded = self
            .codec
            .decode(&bytes)
            .expect("a payload this codec just encoded must decode");
        (decoded, wire)
    }

    /// Add simulated *server-side* compute time for this round (seconds);
    /// it is added to the slowest active device's time when a clock is
    /// attached.
    pub fn add_server_seconds(&mut self, seconds: f64) {
        self.server_seconds += seconds;
    }

    /// Override the round's reported training loss. By default the driver
    /// records [`FederatedAlgorithm::local_update`]'s return value; an
    /// algorithm whose loss-bearing device phase runs *after* aggregation
    /// (FedMD's revisit) reports it here from `server_update` instead.
    pub fn set_train_loss(&mut self, loss: f32) {
        self.train_loss = Some(loss);
    }
}

/// One federated algorithm, as seen by the [`Simulation`] driver.
///
/// Implementations own their devices, models and data shards; the driver
/// owns the round loop, sampling, accounting, the clock and evaluation.
/// The contract every implementation must honour (enforced by the
/// workspace's protocol-invariant suite):
///
/// * only devices in `active` may change state during a round — stragglers
///   stay bit-identical;
/// * every payload a device sends or receives goes through
///   [`RoundContext::through_wire`] and is recorded in `ctx.comm` at its
///   encoded size; a device's per-round traffic is the wire size of its
///   own named tensor bundle — uplink per
///   [`FederatedAlgorithm::payload_template`], downlink per
///   [`FederatedAlgorithm::downlink_template`] — never a function of
///   server-side state;
/// * same seed ⇒ same run, for every worker-thread count and codec.
pub trait FederatedAlgorithm {
    /// Number of devices in the federation.
    fn devices(&self) -> usize;

    /// Device-side phase: train the `active` devices locally, record their
    /// uplink traffic, and return the mean training loss over them.
    fn local_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext) -> f32;

    /// Server-side phase: aggregate / distill, transfer state back to the
    /// `active` devices, and record their downlink traffic.
    fn server_update(&mut self, round: usize, active: &[usize], ctx: &mut RoundContext);

    /// Device `k`'s current evaluable model.
    ///
    /// Homogeneous algorithms may return one shared model for every `k`;
    /// the driver evaluates each distinct model once per evaluation.
    fn device_model(&self, k: usize) -> &dyn Module;

    /// The server/global model, when the algorithm maintains one.
    fn global_model(&self) -> Option<&dyn Module> {
        None
    }

    /// A template of device `k`'s per-round **uplink** payload — the
    /// quantity the paper's communication claims are stated in. The
    /// template is a *named tensor bundle*: a [`StateDict`] whose tensors
    /// are whatever the protocol ships, in a fixed order — a model's
    /// parameters (FedZKT: `O(|w_k|)`), a single alignment-sized logit
    /// tensor (FedMD), or a per-sample feature/logit/label triple
    /// (FedGKT) — not necessarily any module's state. Every codec's wire
    /// size is a pure function of the template's tensor *shapes*, so
    /// [`PayloadCodec::wire_bytes`]`(template)` is the device's expected
    /// per-round uplink — the invariant the workspace protocol suite
    /// checks against the recorded [`CommTracker`] totals. Values need not
    /// match what a live round ships.
    fn payload_template(&self, k: usize) -> StateDict;

    /// A template of device `k`'s per-round **downlink** payload, for the
    /// protocols whose two directions carry differently shaped bundles
    /// (FedGKT uplinks per-sample features+logits but downlinks only
    /// soft labels). Defaults to [`FederatedAlgorithm::payload_template`]
    /// — correct for every symmetric protocol. The driver charges
    /// mid-round dropouts their downlink at this template's wire size,
    /// and the protocol suite checks recorded downlink totals against it.
    fn downlink_template(&self, k: usize) -> StateDict {
        self.payload_template(k)
    }

    /// Training samples device `k` processes locally in one round (drives
    /// the simulated clock's compute time).
    fn local_samples(&self, k: usize) -> usize;

    /// The [`SimConfig::seed`] this algorithm was constructed with, when it
    /// derives its RNG streams from one. [`SimulationBuilder::build`]
    /// asserts it matches the driver's config, so a call site cannot
    /// silently hand the constructor and the builder two different
    /// protocol configs.
    fn construction_seed(&self) -> Option<u64> {
        None
    }

    /// The algorithm's [`DeviceRegistry`], when it runs its fleet through
    /// one. The driver exports the registry's residency counters into
    /// every round's metrics; algorithms without a registry report the
    /// whole fleet as resident.
    fn registry(&self) -> Option<&DeviceRegistry> {
        None
    }

    /// Called by the driver right before it evaluates device models, so a
    /// lazily materialized fleet can make every model the evaluation will
    /// borrow resident ([`FederatedAlgorithm::device_model`] hands out
    /// `&dyn Module`, which cannot materialize on demand). Default: no-op.
    fn prepare_eval(&mut self) {}

    /// Called by the driver at the very end of a round — after evaluation
    /// and clock advancement — so a lazy fleet can drop the round's
    /// materialized device state back to registry summaries. Default:
    /// no-op.
    fn end_round(&mut self, _round: usize) {}

    /// Serialize the algorithm's evolving state into a checkpoint bag:
    /// everything `local_update`/`server_update` mutate across rounds
    /// (model state dicts, RNG cursors, optimizer moments, registry
    /// counters). State that is a pure function of the construction
    /// config — specs, shards, seeds — must *not* be stored; resume
    /// reconstructs the algorithm from the same config first and then
    /// overlays this bag. Default: an empty bag, correct for an
    /// algorithm whose rounds mutate nothing.
    fn save_state(&self) -> AlgoState {
        AlgoState::new()
    }

    /// Restore the state captured by [`FederatedAlgorithm::save_state`]
    /// into a freshly constructed instance of the same config. The
    /// implementation must fully overwrite every piece of state
    /// `save_state` covers — resume-equivalence is only as good as this
    /// round trip. Default: accept the empty bag.
    ///
    /// # Errors
    /// Returns a message when the bag is missing entries or holds
    /// payloads that do not fit this algorithm's shapes.
    fn load_state(&mut self, _state: &AlgoState) -> Result<(), String> {
        Ok(())
    }
}

/// An object-safe view of a [`Simulation`], independent of the algorithm
/// type parameter.
///
/// `Simulation<FedZkt>` and `Simulation<FedAvg>` are distinct types, so a
/// harness that compares algorithms — or executes a declaratively described
/// experiment whose algorithm is chosen at runtime — cannot hold them in
/// one collection or return them from one constructor. Every
/// `Simulation<A>` implements this trait, so such call sites work with
/// `Box<dyn ErasedSimulation>` instead and keep the full driver surface:
/// stepping, the run loop, the per-round observer hook, and the log.
///
/// The algorithm itself is reachable through [`ErasedSimulation::as_any`]:
/// downcast to the concrete `Simulation<A>` when an experiment needs an
/// algorithm-specific accessor (e.g. FedZKT's gradient-norm probe).
pub trait ErasedSimulation {
    /// Number of devices in the federation.
    fn devices(&self) -> usize;

    /// The protocol configuration.
    fn config(&self) -> &SimConfig;

    /// The run log so far.
    fn log(&self) -> &RunLog;

    /// Execute one communication round; see [`Simulation::round`].
    ///
    /// # Panics
    /// Panics when rounds are driven out of order, like the typed form.
    fn round(&mut self, round: usize) -> RoundMetrics;

    /// Run the remaining configured rounds, invoking `observer` with each
    /// round's metrics as it completes; see [`Simulation::run_with`].
    fn run_with(&mut self, observer: &mut dyn FnMut(&RoundMetrics)) -> &RunLog;

    /// Run the remaining configured rounds, returning the full log.
    fn run(&mut self) -> &RunLog {
        self.run_with(&mut |_| {})
    }

    /// Snapshot the full simulation state between rounds; see
    /// [`Simulation::checkpoint`].
    fn checkpoint(&self) -> SimCheckpoint;

    /// Restore a snapshot into this (freshly built) simulation; see
    /// [`Simulation::resume_from`].
    ///
    /// # Errors
    /// Returns a message when the checkpoint does not belong to this
    /// configuration.
    fn resume_from(&mut self, ck: &SimCheckpoint) -> Result<(), String>;

    /// The concrete `Simulation<A>` behind the erasure, for downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Mutable access to the concrete `Simulation<A>`, for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<A: FederatedAlgorithm + 'static> ErasedSimulation for Simulation<A> {
    fn devices(&self) -> usize {
        Simulation::devices(self)
    }

    fn config(&self) -> &SimConfig {
        Simulation::config(self)
    }

    fn log(&self) -> &RunLog {
        Simulation::log(self)
    }

    fn round(&mut self, round: usize) -> RoundMetrics {
        Simulation::round(self, round)
    }

    fn run_with(&mut self, observer: &mut dyn FnMut(&RoundMetrics)) -> &RunLog {
        Simulation::run_with(self, |m| observer(m))
    }

    fn checkpoint(&self) -> SimCheckpoint {
        Simulation::checkpoint(self)
    }

    fn resume_from(&mut self, ck: &SimCheckpoint) -> Result<(), String> {
        Simulation::resume_from(self, ck)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Accuracies from the most recent evaluation, carried forward over
/// rounds the cadence skips.
struct EvalSnapshot {
    device_accuracy: Vec<f32>,
    avg: f32,
    global: Option<f32>,
}

/// The generic simulation driver: one round loop for any
/// [`FederatedAlgorithm`].
///
/// Construct with [`Simulation::builder`]; drive with [`Simulation::run`]
/// (or [`Simulation::run_with`] for a per-round observer, or
/// [`Simulation::round`] for manual stepping). The driver appends every
/// round's [`RoundMetrics`] to its [`RunLog`]; when device resources are
/// attached, `sim_seconds` is populated from the simulated clock.
pub struct Simulation<A: FederatedAlgorithm> {
    algo: A,
    cfg: SimConfig,
    test: Dataset,
    sampler: ParticipationSampler,
    clock: Option<SimClock>,
    churn: Option<ChurnProcess>,
    server_seconds: f64,
    log: RunLog,
    last_eval: Option<EvalSnapshot>,
}

/// Configures a [`Simulation`] before it starts; created by
/// [`Simulation::builder`].
pub struct SimulationBuilder<A: FederatedAlgorithm> {
    algo: A,
    test: Dataset,
    cfg: SimConfig,
    resources: Option<Vec<DeviceResources>>,
    churn: Option<ChurnSpec>,
    server_seconds: f64,
}

impl<A: FederatedAlgorithm> SimulationBuilder<A> {
    /// Attach per-device compute/link resources: a [`SimClock`] is created
    /// over them and every round's `sim_seconds` is populated.
    ///
    /// # Panics
    /// Panics when the population size differs from the algorithm's device
    /// count.
    pub fn resources(mut self, resources: Vec<DeviceResources>) -> Self {
        assert_eq!(
            resources.len(),
            self.algo.devices(),
            "resource population must match the device count"
        );
        self.resources = Some(resources);
        self
    }

    /// Constant simulated server-side seconds added to every round (e.g.
    /// the server's distillation time on datacenter hardware). Only
    /// meaningful together with [`SimulationBuilder::resources`].
    pub fn server_seconds(mut self, seconds: f64) -> Self {
        self.server_seconds = seconds;
        self
    }

    /// Attach a churn model ([`crate::churn`]): the participation sampler
    /// draws from each round's *available* devices, sampled devices may
    /// drop out mid-round (charged partial compute, contributing no
    /// update), and link bandwidths vary per round. A quiescent spec
    /// ([`ChurnSpec::is_quiescent`]) is dropped here, so attaching one is
    /// bit-identical to attaching none.
    ///
    /// # Panics
    /// [`SimulationBuilder::build`] panics when the spec fails
    /// [`ChurnSpec::validate`].
    pub fn churn(mut self, spec: ChurnSpec) -> Self {
        self.churn = Some(spec);
        self
    }

    /// Finish configuration.
    ///
    /// # Panics
    /// Panics when the algorithm reports zero devices, or when it was
    /// constructed from a [`SimConfig`] with a different seed than the one
    /// handed to [`Simulation::builder`] (an inconsistent config pair
    /// would make the run silently non-reproducible).
    pub fn build(self) -> Simulation<A> {
        let devices = self.algo.devices();
        assert!(devices > 0, "need at least one device");
        if let Some(seed) = self.algo.construction_seed() {
            assert_eq!(
                seed, self.cfg.seed,
                "algorithm was constructed with a different SimConfig seed than the driver's"
            );
        }
        let sampler = ParticipationSampler::new(
            devices,
            self.cfg.participation,
            split_seed(self.cfg.seed, 0x5A3),
        );
        Simulation {
            algo: self.algo,
            cfg: self.cfg,
            test: self.test,
            sampler,
            clock: self.resources.map(SimClock::new),
            churn: self
                .churn
                .filter(|spec| !spec.is_quiescent())
                .map(|spec| ChurnProcess::new(spec, devices)),
            server_seconds: self.server_seconds,
            log: RunLog::new(),
            last_eval: None,
        }
    }
}

impl<A: FederatedAlgorithm> Simulation<A> {
    /// Start configuring a simulation of `algo`, evaluated on `test`.
    pub fn builder(algo: A, test: Dataset, cfg: SimConfig) -> SimulationBuilder<A> {
        SimulationBuilder { algo, test, cfg, resources: None, churn: None, server_seconds: 0.0 }
    }

    /// The wrapped algorithm (for its accessors: models, probes, specs).
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Mutable access to the wrapped algorithm.
    pub fn algorithm_mut(&mut self) -> &mut A {
        &mut self.algo
    }

    /// Number of devices in the federation.
    pub fn devices(&self) -> usize {
        self.algo.devices()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The simulated clock, when resources are attached.
    pub fn clock(&self) -> Option<&SimClock> {
        self.clock.as_ref()
    }

    /// The churn model, when a non-quiescent one is attached.
    pub fn churn(&self) -> Option<&ChurnProcess> {
        self.churn.as_ref()
    }

    /// The run log so far.
    pub fn log(&self) -> &RunLog {
        &self.log
    }

    /// Is `round` (0-based) one the evaluation cadence covers?
    fn eval_due(&self, round: usize) -> bool {
        let r = round + 1;
        r == self.cfg.rounds || (self.cfg.eval_every > 0 && r.is_multiple_of(self.cfg.eval_every))
    }

    /// Evaluate every distinct device model (deduplicated by identity, so
    /// homogeneous algorithms sharing one model pay one evaluation) and
    /// the global model.
    fn evaluate_all(&self) -> EvalSnapshot {
        let n = self.algo.devices();
        let mut cache: Vec<(*const u8, f32)> = Vec::new();
        let compute = self.cfg.compute;
        let mut eval_cached = |model: &dyn Module| -> f32 {
            let ptr = model as *const dyn Module as *const u8;
            match cache.iter().find(|(p, _)| std::ptr::eq(*p, ptr)) {
                Some((_, acc)) => *acc,
                None => {
                    // Eval is tape-free, so the configured compute format
                    // applies; the scope is entered here on the driving
                    // thread so every forward GEMM inside resolves it.
                    let acc = with_format(compute, || {
                        evaluate(model, &self.test, self.cfg.eval_batch)
                    });
                    cache.push((ptr, acc));
                    acc
                }
            }
        };
        let device_accuracy: Vec<f32> =
            (0..n).map(|k| eval_cached(self.algo.device_model(k))).collect();
        let avg = device_accuracy.iter().sum::<f32>() / n.max(1) as f32;
        let global = self.algo.global_model().map(&mut eval_cached);
        EvalSnapshot { device_accuracy, avg, global }
    }

    /// Execute one communication round (0-based `round`): sample the
    /// active set, run the algorithm's two phases, evaluate (per cadence),
    /// advance the clock, and append the metrics to the log.
    ///
    /// # Panics
    /// Rounds must be driven in order: `round` is required to be the next
    /// undriven index (`log().rounds.len()`). Skipping or replaying an
    /// index would silently desync the participation sampler, the
    /// per-round seed streams, and the log.
    pub fn round(&mut self, round: usize) -> RoundMetrics {
        assert_eq!(
            round,
            self.log.rounds.len(),
            "rounds must be driven in order; the next round index is {}",
            self.log.rounds.len()
        );
        // Sample from the round's available pool. Without churn the pool
        // is the whole fleet and `active_among` is bit-identical to the
        // pre-churn `active` path (same shuffle stream over the same
        // elements), so attaching no churn changes nothing.
        let (available, sampled) = match &self.churn {
            Some(churn) => {
                let pool = churn.available(round);
                let sampled = self.sampler.active_among(round, &pool);
                (pool.len(), sampled)
            }
            None => (self.algo.devices(), self.sampler.active(round)),
        };
        // Partition the sampled set into survivors (the algorithm's active
        // set) and mid-round dropouts, which are charged their download
        // and partial compute below but never touch algorithm state.
        let mut active = Vec::with_capacity(sampled.len());
        let mut dropouts: Vec<(usize, f64)> = Vec::new();
        match &self.churn {
            Some(churn) => {
                for &k in &sampled {
                    match churn.dropout(k, round) {
                        Some(fraction) => dropouts.push((k, fraction)),
                        None => active.push(k),
                    }
                }
            }
            None => active = sampled,
        }
        let mut ctx =
            RoundContext::new(self.algo.devices(), self.cfg.codec, self.cfg.resolved_threads());

        // A round can be empty under churn (nobody online, or everyone
        // sampled dropped): both algorithm phases are skipped — an empty
        // active set must leave algorithm state untouched anyway — but
        // evaluation cadence, the clock and the log still advance.
        let local_loss = if active.is_empty() {
            0.0
        } else {
            self.algo.local_update(round, &active, &mut ctx)
        };
        if !active.is_empty() {
            self.algo.server_update(round, &active, &mut ctx);
        }
        // A dropout received the round's broadcast before dying: charge
        // its downlink at the wire size of its own downlink template.
        for &(k, _) in &dropouts {
            let wire = ctx.wire_size(&self.algo.downlink_template(k));
            ctx.comm.record_download(k, wire);
        }

        let mut metrics = RoundMetrics::new(round + 1);
        metrics.train_loss = ctx.train_loss.unwrap_or(local_loss);
        metrics.upload_bytes = ctx.comm.total_upload();
        metrics.download_bytes = ctx.comm.total_download();
        metrics.available_devices = available;
        metrics.dropped_devices = dropouts.len();

        if self.eval_due(round) {
            self.algo.prepare_eval();
            self.last_eval = Some(self.evaluate_all());
        }
        if let Some(snapshot) = &self.last_eval {
            metrics.device_accuracy = snapshot.device_accuracy.clone();
            metrics.avg_device_accuracy = snapshot.avg;
            metrics.global_accuracy = snapshot.global;
        }

        if let Some(clock) = &mut self.clock {
            let algo = &self.algo;
            let participants: Vec<RoundParticipant> = match &self.churn {
                Some(churn) => active
                    .iter()
                    .map(|&k| RoundParticipant {
                        device: k,
                        completion: 1.0,
                        link_scale: churn.link_scale(k, round),
                    })
                    .chain(dropouts.iter().map(|&(k, fraction)| RoundParticipant {
                        device: k,
                        completion: fraction,
                        link_scale: churn.link_scale(k, round),
                    }))
                    .collect(),
                None => active.iter().copied().map(RoundParticipant::full).collect(),
            };
            metrics.sim_seconds = clock.advance_round(
                &participants,
                &|d| algo.local_samples(d),
                &|d| ctx.comm.download_bytes(d) as usize,
                &|d| ctx.comm.upload_bytes(d) as usize,
                self.server_seconds + ctx.server_seconds,
            );
        }

        // Let a lazy fleet drop the round's materialized state, then read
        // the residency gauge (peak is a monotone high-water mark, so it
        // is unaffected by the release; `resident` intentionally reflects
        // the *between-rounds* footprint).
        self.algo.end_round(round);
        metrics.registered_devices = self.algo.devices();
        metrics.peak_resident_devices = match self.algo.registry() {
            Some(reg) => reg.peak_resident(),
            None => self.algo.devices(),
        };

        metrics.active_devices = active;
        self.log.push(metrics.clone());
        metrics
    }

    /// Snapshot the full simulation state between rounds: the log (which
    /// doubles as the round cursor), the clock instant, and the
    /// algorithm's [`FederatedAlgorithm::save_state`] bag. The sampler
    /// and churn model are pure functions of `(seed, round)` and need no
    /// snapshot. Resuming the checkpoint into a freshly built simulation
    /// of the same configuration continues the run bit-identically.
    pub fn checkpoint(&self) -> SimCheckpoint {
        SimCheckpoint {
            version: CHECKPOINT_VERSION,
            seed: self.cfg.seed,
            devices: self.algo.devices(),
            rounds_done: self.log.rounds.len(),
            clock_now: self.clock.as_ref().map(SimClock::now),
            algo: self.algo.save_state(),
            log: self.log.clone(),
        }
    }

    /// Restore a [`Simulation::checkpoint`] snapshot into this — freshly
    /// built, not yet stepped — simulation: the log, clock and algorithm
    /// state are overwritten and the next [`Simulation::round`] index is
    /// `ck.rounds_done`. The carried-forward evaluation snapshot is
    /// reconstructed from the last logged round (the log carries
    /// accuracies forward over skipped rounds by design).
    ///
    /// # Errors
    /// Returns a message when the checkpoint's seed, fleet size or clock
    /// presence does not match this simulation's configuration, or when
    /// the algorithm rejects its state bag. On error the simulation may
    /// be partially overwritten and must be discarded.
    pub fn resume_from(&mut self, ck: &SimCheckpoint) -> Result<(), String> {
        if ck.seed != self.cfg.seed {
            return Err(format!(
                "checkpoint seed {} does not match this run's seed {}",
                ck.seed, self.cfg.seed
            ));
        }
        if ck.devices != self.algo.devices() {
            return Err(format!(
                "checkpoint fleet size {} does not match this run's {}",
                ck.devices,
                self.algo.devices()
            ));
        }
        if ck.rounds_done > self.cfg.rounds {
            return Err(format!(
                "checkpoint is {} rounds deep but this run is configured for {}",
                ck.rounds_done, self.cfg.rounds
            ));
        }
        match (&mut self.clock, ck.clock_now) {
            (Some(clock), Some(now)) => clock.set_now(now),
            (None, None) => {}
            (Some(_), None) => {
                return Err("checkpoint has no clock instant but this run has resources".into())
            }
            (None, Some(_)) => {
                return Err("checkpoint has a clock instant but this run has no resources".into())
            }
        }
        self.algo.load_state(&ck.algo)?;
        self.log = ck.log.clone();
        self.last_eval = self.log.rounds.last().filter(|r| !r.device_accuracy.is_empty()).map(
            |r| EvalSnapshot {
                device_accuracy: r.device_accuracy.clone(),
                avg: r.avg_device_accuracy,
                global: r.global_accuracy,
            },
        );
        Ok(())
    }

    /// Run the remaining configured rounds, returning the full log.
    pub fn run(&mut self) -> &RunLog {
        self.run_with(|_| {})
    }

    /// Run the remaining configured rounds, invoking `observer` with each
    /// round's metrics as it completes — the hook experiments use for
    /// live progress, early stopping criteria collection, or custom
    /// artifact streaming.
    pub fn run_with(&mut self, mut observer: impl FnMut(&RoundMetrics)) -> &RunLog {
        for round in self.log.rounds.len()..self.cfg.rounds {
            let metrics = self.round(round);
            observer(&metrics);
        }
        &self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_models::ModelSpec;
    use fedzkt_nn::state_dict;

    /// A minimal deterministic algorithm for driver-level tests: each
    /// "device" owns a scalar model (an MLP) that never trains; payloads
    /// and sample counts are synthetic.
    struct Stub {
        models: Vec<Box<dyn Module>>,
        local_calls: Vec<Vec<usize>>,
        server_calls: Vec<Vec<usize>>,
    }

    impl Stub {
        fn new(devices: usize) -> Self {
            Stub {
                models: (0..devices)
                    .map(|k| ModelSpec::Mlp { hidden: 4 }.build(1, 2, 8, k as u64))
                    .collect(),
                local_calls: Vec::new(),
                server_calls: Vec::new(),
            }
        }
    }

    impl FederatedAlgorithm for Stub {
        fn devices(&self) -> usize {
            self.models.len()
        }
        fn local_update(&mut self, _r: usize, active: &[usize], ctx: &mut RoundContext) -> f32 {
            self.local_calls.push(active.to_vec());
            for &k in active {
                let (_, wire) = ctx.through_wire(&self.payload_template(k));
                ctx.comm.record_upload(k, wire);
            }
            0.5
        }
        fn server_update(&mut self, _r: usize, active: &[usize], ctx: &mut RoundContext) {
            self.server_calls.push(active.to_vec());
            for &k in active {
                let (_, wire) = ctx.through_wire(&self.payload_template(k));
                ctx.comm.record_download(k, wire);
            }
        }
        fn device_model(&self, k: usize) -> &dyn Module {
            self.models[k].as_ref()
        }
        fn payload_template(&self, k: usize) -> StateDict {
            // 25·(k+1) raw f32 values → a per-device payload size gradient.
            StateDict {
                params: vec![fedzkt_tensor::Tensor::zeros(&[25 * (k + 1)])],
                buffers: Vec::new(),
            }
        }
        fn local_samples(&self, _k: usize) -> usize {
            40
        }
    }

    /// Raw wire size of the Stub's payload for device `k`: a 15-byte
    /// header (codec id, version, counts, one 1-d shape) + 4 bytes/value.
    fn stub_wire(k: usize) -> u64 {
        (15 + 100 * (k + 1)) as u64
    }

    fn test_set() -> Dataset {
        Dataset::new(fedzkt_tensor::Tensor::zeros(&[6, 1, 8, 8]), vec![0, 1, 0, 1, 0, 1], 2)
    }

    #[test]
    fn driver_runs_all_rounds_and_totals_traffic() {
        let cfg = SimConfig { rounds: 3, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        let log = sim.run().clone();
        assert_eq!(log.rounds.len(), 3);
        for r in &log.rounds {
            assert_eq!(r.upload_bytes, stub_wire(0) + stub_wire(1));
            assert_eq!(r.download_bytes, stub_wire(0) + stub_wire(1));
            assert_eq!(r.active_devices, vec![0, 1]);
            assert_eq!(r.train_loss, 0.5);
            assert_eq!(r.sim_seconds, 0.0, "no clock attached");
        }
        assert_eq!(sim.algorithm().local_calls.len(), 3);
        assert_eq!(sim.algorithm().server_calls.len(), 3);
    }

    #[test]
    fn codec_shrinks_accounted_traffic() {
        let raw_cfg = SimConfig { rounds: 1, ..Default::default() };
        let q8_cfg = SimConfig { rounds: 1, codec: CodecSpec::QuantQ8, ..Default::default() };
        let mut raw = Simulation::builder(Stub::new(2), test_set(), raw_cfg).build();
        let mut q8 = Simulation::builder(Stub::new(2), test_set(), q8_cfg).build();
        let raw_up = raw.round(0).upload_bytes;
        let q8_up = q8.round(0).upload_bytes;
        // (The Stub's payloads are tiny — 25/50 values — so the fixed
        // header keeps the ratio below the asymptotic ~4×.)
        assert!(2 * q8_up < raw_up, "q8 {q8_up} vs raw {raw_up}");
        // The accounted traffic is exactly the codec's wire size of each
        // active device's payload template.
        let expected: u64 = (0..2)
            .map(|k| CodecSpec::QuantQ8.wire_bytes(&q8.algorithm().payload_template(k)) as u64)
            .sum();
        assert_eq!(q8_up, expected);
    }

    #[test]
    fn participation_restricts_phases_to_the_active_set() {
        let cfg = SimConfig { rounds: 4, participation: 0.5, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(4), test_set(), cfg).build();
        sim.run();
        for (local, server) in
            sim.algorithm().local_calls.iter().zip(&sim.algorithm().server_calls)
        {
            assert_eq!(local.len(), 2);
            assert_eq!(local, server, "both phases see the same active set");
        }
        // Different rounds sample different sets (with overwhelming
        // probability over 4 rounds of 4C2).
        assert!(
            sim.algorithm().local_calls.windows(2).any(|w| w[0] != w[1]),
            "sampler never varied: {:?}",
            sim.algorithm().local_calls
        );
    }

    #[test]
    fn eval_cadence_carries_accuracies_forward() {
        let cfg = SimConfig { rounds: 5, eval_every: 2, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        let log = sim.run().clone();
        // Rounds 2 and 4 evaluate per cadence; 5 is the final round.
        // Round 1 has no snapshot yet; round 3 carries round 2's forward.
        assert!(log.rounds[0].device_accuracy.is_empty());
        assert_eq!(log.rounds[1].device_accuracy.len(), 2);
        assert_eq!(log.rounds[2].device_accuracy, log.rounds[1].device_accuracy);
        assert_eq!(log.rounds[4].device_accuracy.len(), 2);
        // Stub models never train, so every evaluation agrees.
        assert_eq!(log.rounds[3].avg_device_accuracy, log.rounds[1].avg_device_accuracy);
    }

    #[test]
    fn eval_every_zero_evaluates_only_the_final_round() {
        let cfg = SimConfig { rounds: 3, eval_every: 0, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        let log = sim.run().clone();
        assert!(log.rounds[0].device_accuracy.is_empty());
        assert!(log.rounds[1].device_accuracy.is_empty());
        assert_eq!(log.rounds[2].device_accuracy.len(), 2);
    }

    #[test]
    fn attached_resources_populate_sim_seconds() {
        let cfg = SimConfig { rounds: 2, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg)
            .resources(vec![DeviceResources::smartphone(), DeviceResources::microcontroller()])
            .server_seconds(1.0)
            .build();
        let log = sim.run().clone();
        for r in &log.rounds {
            // MCU: 40 samples at 5/s = 8 s compute alone, plus server time.
            assert!(r.sim_seconds > 8.0, "sim_seconds {}", r.sim_seconds);
        }
        let total: f64 = log.rounds.iter().map(|r| r.sim_seconds).sum();
        assert!((sim.clock().expect("clock").now() - total).abs() < 1e-9);
    }

    #[test]
    fn observer_sees_every_round_in_order() {
        let cfg = SimConfig { rounds: 3, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        let mut seen = Vec::new();
        sim.run_with(|m| seen.push(m.round));
        assert_eq!(seen, vec![1, 2, 3]);
        // A second run() is a no-op: all configured rounds are done.
        sim.run_with(|m| seen.push(m.round));
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn manual_stepping_then_run_continues_where_left_off() {
        let cfg = SimConfig { rounds: 3, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        sim.round(0);
        assert_eq!(sim.log().rounds.len(), 1);
        sim.run();
        assert_eq!(sim.log().rounds.len(), 3);
        assert_eq!(sim.algorithm().local_calls.len(), 3);
    }

    #[test]
    fn erased_simulation_runs_and_downcasts() {
        let cfg = SimConfig { rounds: 2, ..Default::default() };
        // Two erased simulations of *different* concrete types in one Vec —
        // the collection PR 3's typed driver could not express.
        let mut sims: Vec<Box<dyn ErasedSimulation>> = vec![
            Box::new(Simulation::builder(Stub::new(2), test_set(), cfg).build()),
            Box::new(Simulation::builder(Stub::new(3), test_set(), cfg).build()),
        ];
        let mut seen = Vec::new();
        for sim in &mut sims {
            sim.run_with(&mut |m| seen.push(m.round));
            assert_eq!(sim.log().rounds.len(), 2);
        }
        assert_eq!(seen, vec![1, 2, 1, 2]);
        assert_eq!(sims[0].devices(), 2);
        assert_eq!(sims[1].devices(), 3);
        // The typed algorithm stays reachable through the erasure.
        let typed = sims[0]
            .as_any()
            .downcast_ref::<Simulation<Stub>>()
            .expect("downcast to the concrete simulation");
        assert_eq!(typed.algorithm().local_calls.len(), 2);
        assert!(sims[0].as_any().downcast_ref::<Simulation<Stub>>().is_some());
    }

    #[test]
    fn erased_stepping_matches_typed_stepping() {
        let cfg = SimConfig { rounds: 2, ..Default::default() };
        let mut typed = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        let mut erased: Box<dyn ErasedSimulation> =
            Box::new(Simulation::builder(Stub::new(2), test_set(), cfg).build());
        let a = typed.round(0);
        let b = erased.round(0);
        assert_eq!(a, b);
        assert_eq!(typed.run(), erased.run());
    }

    #[test]
    fn residency_columns_fall_back_to_the_fleet_size() {
        // Stub has no registry: both columns report the fleet.
        let cfg = SimConfig { rounds: 2, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(3), test_set(), cfg).build();
        let log = sim.run().clone();
        for r in &log.rounds {
            assert_eq!(r.registered_devices, 3);
            assert_eq!(r.peak_resident_devices, 3);
        }
    }

    #[test]
    fn lifecycle_hooks_fire_in_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        struct Hooked {
            model: Box<dyn Module>,
            events: Rc<RefCell<Vec<&'static str>>>,
        }
        impl FederatedAlgorithm for Hooked {
            fn devices(&self) -> usize {
                2
            }
            fn local_update(&mut self, _: usize, _: &[usize], _: &mut RoundContext) -> f32 {
                self.events.borrow_mut().push("local");
                0.0
            }
            fn server_update(&mut self, _: usize, _: &[usize], _: &mut RoundContext) {
                self.events.borrow_mut().push("server");
            }
            fn device_model(&self, _k: usize) -> &dyn Module {
                self.model.as_ref()
            }
            fn payload_template(&self, _k: usize) -> StateDict {
                StateDict { params: Vec::new(), buffers: Vec::new() }
            }
            fn local_samples(&self, _k: usize) -> usize {
                0
            }
            fn prepare_eval(&mut self) {
                self.events.borrow_mut().push("prepare_eval");
            }
            fn end_round(&mut self, _round: usize) {
                self.events.borrow_mut().push("end_round");
            }
        }
        let events = Rc::new(RefCell::new(Vec::new()));
        let algo = Hooked {
            model: ModelSpec::Mlp { hidden: 4 }.build(1, 2, 8, 1),
            events: Rc::clone(&events),
        };
        // eval_every = 0: only the final round evaluates, so prepare_eval
        // must fire exactly once, between server_update and end_round.
        let cfg = SimConfig { rounds: 2, eval_every: 0, ..Default::default() };
        Simulation::builder(algo, test_set(), cfg).build().run();
        assert_eq!(
            *events.borrow(),
            vec!["local", "server", "end_round", "local", "server", "prepare_eval", "end_round"]
        );
    }

    fn clocked(devices: usize, cfg: SimConfig) -> Simulation<Stub> {
        Simulation::builder(Stub::new(devices), test_set(), cfg)
            .resources(vec![DeviceResources::smartphone(); devices])
            .build()
    }

    #[test]
    fn checkpoint_at_every_round_resumes_bit_identically() {
        let cfg = SimConfig { rounds: 4, participation: 0.5, eval_every: 2, ..Default::default() };
        let mut uninterrupted = clocked(4, cfg);
        let reference = uninterrupted.run().clone();
        for k in 0..=4 {
            let mut first = clocked(4, cfg);
            for r in 0..k {
                first.round(r);
            }
            // Through the serialized form, as a real kill/restart would go.
            let ck = SimCheckpoint::from_json(&first.checkpoint().to_json()).expect("parse");
            assert_eq!(ck.rounds_done, k);
            let mut resumed = clocked(4, cfg);
            resumed.resume_from(&ck).expect("resume");
            assert_eq!(resumed.run(), &reference, "killed at round {k}");
        }
    }

    #[test]
    fn resume_refuses_a_foreign_checkpoint() {
        let cfg = SimConfig { rounds: 2, ..Default::default() };
        let ck = clocked(2, cfg).checkpoint();
        // Wrong seed.
        let other = SimConfig { seed: 99, ..cfg };
        let mut sim = clocked(2, other);
        assert!(sim.resume_from(&ck).unwrap_err().contains("seed"));
        // Wrong fleet size.
        let mut sim = clocked(3, cfg);
        assert!(sim.resume_from(&ck).unwrap_err().contains("fleet size"));
        // Clock presence mismatch, both ways.
        let mut sim = Simulation::builder(Stub::new(2), test_set(), cfg).build();
        assert!(sim.resume_from(&ck).unwrap_err().contains("clock"));
        let unclocked = Simulation::builder(Stub::new(2), test_set(), cfg).build().checkpoint();
        let mut sim = clocked(2, cfg);
        assert!(sim.resume_from(&unclocked).unwrap_err().contains("clock"));
        // Deeper than the configured run.
        let shallow = SimConfig { rounds: 1, ..cfg };
        let mut deep = clocked(2, cfg);
        deep.round(0);
        deep.round(1);
        let ck = deep.checkpoint();
        let mut sim = clocked(2, shallow);
        assert!(sim.resume_from(&ck).unwrap_err().contains("rounds deep"));
    }

    #[test]
    fn quiescent_churn_is_dropped_and_bit_identical_to_none() {
        let cfg = SimConfig { rounds: 3, participation: 0.5, ..Default::default() };
        let mut plain = Simulation::builder(Stub::new(4), test_set(), cfg).build();
        let mut quiet =
            Simulation::builder(Stub::new(4), test_set(), cfg).churn(ChurnSpec::default()).build();
        assert!(quiet.churn().is_none(), "a quiescent spec must be dropped at build time");
        assert_eq!(plain.run(), quiet.run());
    }

    #[test]
    fn churn_empties_rounds_without_touching_the_algorithm() {
        // mean_lifetime = 0.1 rounds to a 1-round lifetime for every
        // device: round 0 is fully populated, every later pool is empty.
        let spec = ChurnSpec { seed: 1, mean_lifetime: 0.1, ..Default::default() };
        let cfg = SimConfig { rounds: 3, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(3), test_set(), cfg).churn(spec).build();
        let log = sim.run().clone();
        assert_eq!(log.rounds[0].available_devices, 3);
        assert_eq!(log.rounds[0].active_devices, vec![0, 1, 2]);
        assert_eq!(log.rounds[1].available_devices, 0);
        assert!(log.rounds[1].active_devices.is_empty());
        assert_eq!(log.rounds[1].upload_bytes, 0);
        assert_eq!(log.rounds[1].train_loss, 0.0);
        // The algorithm's phases ran only in the populated round…
        assert_eq!(sim.algorithm().local_calls.len(), 1);
        assert_eq!(sim.algorithm().server_calls.len(), 1);
        // …but the evaluation cadence is driver business and still fires.
        assert_eq!(log.rounds[2].device_accuracy.len(), 3);
    }

    #[test]
    fn dropouts_are_charged_download_but_never_upload_or_update() {
        let spec = ChurnSpec { seed: 9, dropout: 0.5, ..Default::default() };
        let cfg = SimConfig { rounds: 6, ..Default::default() };
        let mut sim = Simulation::builder(Stub::new(4), test_set(), cfg)
            .resources(vec![DeviceResources::smartphone(); 4])
            .churn(spec)
            .build();
        let log = sim.run().clone();
        let dropped: usize = log.rounds.iter().map(|r| r.dropped_devices).sum();
        let survived: usize = log.rounds.iter().map(|r| r.active_devices.len()).sum();
        assert!(dropped > 0, "p = 0.5 over 24 draws must drop someone");
        assert!(survived > 0, "p = 0.5 over 24 draws must spare someone");
        let mut li = 0;
        for r in &log.rounds {
            assert_eq!(r.active_devices.len() + r.dropped_devices, 4);
            if !r.active_devices.is_empty() {
                assert_eq!(r.active_devices, sim.algorithm().local_calls[li]);
                li += 1;
            }
            // Upload comes from survivors only; every sampled device —
            // survivor or dropout — is charged its download.
            let up: u64 = r.active_devices.iter().map(|&k| stub_wire(k)).sum();
            assert_eq!(r.upload_bytes, up);
            assert_eq!(r.download_bytes, (0..4).map(stub_wire).sum::<u64>());
            assert!(r.sim_seconds > 0.0);
        }
        assert_eq!(li, sim.algorithm().local_calls.len());
    }

    #[test]
    fn shared_device_model_is_evaluated_once() {
        // A homogeneous stub: one model served for every device index.
        struct Homogeneous {
            model: Box<dyn Module>,
        }
        impl FederatedAlgorithm for Homogeneous {
            fn devices(&self) -> usize {
                3
            }
            fn local_update(&mut self, _: usize, _: &[usize], _: &mut RoundContext) -> f32 {
                0.0
            }
            fn server_update(&mut self, _: usize, _: &[usize], _: &mut RoundContext) {}
            fn device_model(&self, _k: usize) -> &dyn Module {
                self.model.as_ref()
            }
            fn global_model(&self) -> Option<&dyn Module> {
                Some(self.model.as_ref())
            }
            fn payload_template(&self, _k: usize) -> StateDict {
                StateDict { params: Vec::new(), buffers: Vec::new() }
            }
            fn local_samples(&self, _k: usize) -> usize {
                0
            }
        }
        let algo = Homogeneous { model: ModelSpec::Mlp { hidden: 4 }.build(1, 2, 8, 3) };
        let before = state_dict(algo.model.as_ref());
        let cfg = SimConfig { rounds: 1, ..Default::default() };
        let mut sim = Simulation::builder(algo, test_set(), cfg).build();
        let log = sim.run().clone();
        let r = &log.rounds[0];
        assert!(r.device_accuracy.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(r.global_accuracy, Some(r.device_accuracy[0]));
        assert!((r.avg_device_accuracy - r.device_accuracy[0]).abs() < 1e-5);
        // Evaluation is side-effect-free on the model.
        assert_eq!(state_dict(sim.algorithm().model.as_ref()), before);
    }
}
