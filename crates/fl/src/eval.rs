//! Model evaluation helpers.

use fedzkt_autograd::{no_grad, Var};
use fedzkt_data::Dataset;
use fedzkt_nn::Module;

/// Fraction of correctly classified samples in `predictions` vs `labels`.
///
/// # Panics
/// Panics when lengths differ.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(predictions.len(), labels.len(), "prediction/label length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

/// Test-set accuracy of a classifier, evaluated in eval mode (batch-norm
/// running statistics, no dropout) without building autograd tape.
///
/// Restores the module to training mode before returning.
pub fn evaluate(model: &dyn Module, data: &Dataset, batch_size: usize) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    model.set_training(false);
    let mut correct = 0usize;
    no_grad(|| {
        let n = data.len();
        let mut start = 0usize;
        while start < n {
            let end = (start + batch_size).min(n);
            let indices: Vec<usize> = (start..end).collect();
            let (x, y) = data.batch(&indices);
            let logits = model.forward(&Var::constant(x));
            let preds = logits.value().argmax_rows().expect("logit matrix");
            correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
            start = end;
        }
    });
    model.set_training(true);
    correct as f32 / data.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_models::ModelSpec;
    use fedzkt_tensor::Tensor;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 3]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn evaluate_runs_and_restores_training_mode() {
        let model = ModelSpec::SmallCnn { base_channels: 2 }.build(1, 2, 8, 1);
        let images = Tensor::zeros(&[6, 1, 8, 8]);
        let data = Dataset::new(images, vec![0, 1, 0, 1, 0, 1], 2);
        let acc = evaluate(model.as_ref(), &data, 4);
        assert!((0.0..=1.0).contains(&acc));
        // Training mode restored: BN stats move on the next forward.
        let before = model.buffers()[0].get();
        let _ = model.forward(&fedzkt_autograd::Var::constant(Tensor::ones(&[2, 1, 8, 8])));
        assert_ne!(before, model.buffers()[0].get());
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let model = ModelSpec::Mlp { hidden: 4 }.build(1, 2, 8, 1);
        let data = Dataset::new(Tensor::zeros(&[0, 1, 8, 8]), vec![], 2);
        assert_eq!(evaluate(model.as_ref(), &data, 4), 0.0);
    }
}
