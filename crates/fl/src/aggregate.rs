//! Streaming weighted aggregation of [`StateDict`]s.
//!
//! FedAvg's server step is a weighted average of the active devices'
//! uplinks (Eq. 1 of McMahan et al.). Collecting every decoded uplink into
//! a `Vec` before averaging makes the server's peak memory O(sampled
//! models) *on top of* the accumulator; at cross-device scale the decoded
//! states should instead be folded into one running sum and dropped —
//! which is what [`StreamingAverage`] does.
//!
//! Floating-point addition is not associative, so a streaming fold is only
//! bit-identical to the batch average if it performs **the same additions
//! in the same order**. The contract here (pinned by unit tests, and the
//! discipline the device-parallel fleet merge already follows) is:
//!
//! * callers fold uplinks in **ascending device-id order** — the order the
//!   participation sampler emits the active set in;
//! * the fold scales each incoming state by `weight / total` and adds it
//!   tensor-by-tensor, parameters before buffers — exactly the operation
//!   sequence of the batch form.
//!
//! [`average_state_dicts`] is the batch form, implemented *as* a fold so
//! there is one arithmetic path to keep bit-exact, not two.

use fedzkt_nn::StateDict;

/// A running weighted average of [`StateDict`]s with a fixed total weight.
///
/// Construct with the total weight (known up front — for FedAvg it is the
/// sum of the active devices' shard sizes, available before any uplink is
/// decoded), then [`fold`](StreamingAverage::fold) each decoded uplink in
/// ascending device-id order and [`finish`](StreamingAverage::finish).
/// Peak memory is one accumulator plus the single state being folded.
#[derive(Debug)]
pub struct StreamingAverage {
    total: f32,
    acc: Option<StateDict>,
    folded: usize,
}

impl StreamingAverage {
    /// Start a fold whose weights will sum to `total`.
    ///
    /// # Panics
    /// Panics when `total` is not finite and positive.
    pub fn new(total: f32) -> Self {
        assert!(
            total.is_finite() && total > 0.0,
            "total weight must be finite and positive, got {total}"
        );
        StreamingAverage { total, acc: None, folded: 0 }
    }

    /// Fold one state in with `weight`. The first fold seeds the
    /// accumulator with `sd · weight/total`; every later fold adds
    /// `sd · weight/total` in place, parameters then buffers.
    ///
    /// # Panics
    /// Panics when `sd`'s tensor layout differs from the first fold's.
    pub fn fold(&mut self, weight: f32, sd: &StateDict) {
        let scale = weight / self.total;
        match &mut self.acc {
            None => {
                let mut seeded = sd.clone();
                for t in seeded.params.iter_mut().chain(seeded.buffers.iter_mut()) {
                    *t = t.mul_scalar(scale);
                }
                self.acc = Some(seeded);
            }
            Some(acc) => {
                assert!(acc.same_layout(sd), "folded state dicts must share one layout");
                for (a, t) in acc.params.iter_mut().zip(&sd.params) {
                    a.add_scaled_inplace(t, scale).expect("param layout");
                }
                for (a, t) in acc.buffers.iter_mut().zip(&sd.buffers) {
                    a.add_scaled_inplace(t, scale).expect("buffer layout");
                }
            }
        }
        self.folded += 1;
    }

    /// States folded so far.
    pub fn folded(&self) -> usize {
        self.folded
    }

    /// The completed average.
    ///
    /// # Panics
    /// Panics when nothing was folded.
    pub fn finish(self) -> StateDict {
        self.acc.expect("no updates folded")
    }
}

/// Weighted average of state dicts, batch form: equivalent to — and
/// implemented as — a [`StreamingAverage`] folding `weighted` in slice
/// order, so the two forms are bit-identical by construction.
///
/// # Panics
/// Panics when `weighted` is empty or layouts are inconsistent.
pub fn average_state_dicts(weighted: &[(f32, &StateDict)]) -> StateDict {
    assert!(!weighted.is_empty(), "no updates to average");
    let total: f32 = weighted.iter().map(|(w, _)| *w).sum();
    let mut avg = StreamingAverage::new(total);
    for (w, sd) in weighted {
        avg.fold(*w, sd);
    }
    avg.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedzkt_tensor::{seeded_rng, Tensor};

    fn sd(seed: u64) -> StateDict {
        let mut rng = seeded_rng(seed);
        StateDict {
            params: vec![Tensor::randn(&[3, 2], &mut rng), Tensor::randn(&[4], &mut rng)],
            buffers: vec![Tensor::randn(&[2], &mut rng)],
        }
    }

    #[test]
    fn uniform_average_of_identical_states_is_identity_like() {
        let a = sd(1);
        let avg = average_state_dicts(&[(1.0, &a), (1.0, &a), (1.0, &a)]);
        for (t, u) in avg.iter_tensors().zip(a.iter_tensors()) {
            for (x, y) in t.data().iter().zip(u.data()) {
                assert!((x - y).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn weights_bias_toward_the_heavier_state() {
        let zeros = StateDict { params: vec![Tensor::zeros(&[2])], buffers: vec![] };
        let ones = StateDict {
            params: vec![Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap()],
            buffers: vec![],
        };
        let avg = average_state_dicts(&[(1.0, &zeros), (3.0, &ones)]);
        assert_eq!(avg.params[0].data(), &[0.75, 0.75]);
    }

    /// The bugfix pin: a streaming fold in device-id order is bit-for-bit
    /// the batch average — same additions, same order.
    #[test]
    fn streaming_fold_matches_batch_average_bit_for_bit() {
        let states: Vec<StateDict> = (0..5).map(|k| sd(100 + k)).collect();
        let weights = [3.0f32, 1.0, 7.0, 2.0, 5.0];
        let weighted: Vec<(f32, &StateDict)> =
            weights.iter().copied().zip(states.iter()).collect();
        let batch = average_state_dicts(&weighted);

        let total: f32 = weights.iter().sum();
        let mut streaming = StreamingAverage::new(total);
        for (w, s) in weights.iter().zip(&states) {
            streaming.fold(*w, s);
        }
        assert_eq!(streaming.folded(), 5);
        let streamed = streaming.finish();
        for (a, b) in batch.iter_tensors().zip(streamed.iter_tensors()) {
            let bits_a: Vec<u32> = a.data().iter().map(|v| v.to_bits()).collect();
            let bits_b: Vec<u32> = b.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_a, bits_b, "streaming fold drifted from the batch sum");
        }
    }

    /// Fold order matters for f32 sums — which is exactly why the contract
    /// pins ascending device-id order. A permuted fold is generally *not*
    /// bit-identical; this test documents the sensitivity the order
    /// discipline exists to contain.
    #[test]
    fn fold_order_sensitivity_is_real() {
        let states: Vec<StateDict> = (0..6).map(|k| sd(300 + k)).collect();
        let weights = [1.0f32, 0.3, 7.7, 0.11, 13.0, 2.2];
        let total: f32 = weights.iter().sum();
        let forward = {
            let mut s = StreamingAverage::new(total);
            for (w, st) in weights.iter().zip(&states) {
                s.fold(*w, st);
            }
            s.finish()
        };
        let reverse = {
            let mut s = StreamingAverage::new(total);
            for (w, st) in weights.iter().zip(&states).rev() {
                s.fold(*w, st);
            }
            s.finish()
        };
        let differs = forward
            .iter_tensors()
            .zip(reverse.iter_tensors())
            .any(|(a, b)| {
                a.data().iter().zip(b.data()).any(|(x, y)| x.to_bits() != y.to_bits())
            });
        assert!(differs, "expected at least one ULP of order sensitivity");
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn empty_average_panics() {
        average_state_dicts(&[]);
    }

    #[test]
    #[should_panic(expected = "one layout")]
    fn layout_mismatch_panics() {
        let a = sd(1);
        let b = StateDict { params: vec![Tensor::zeros(&[2])], buffers: vec![] };
        let mut s = StreamingAverage::new(2.0);
        s.fold(1.0, &a);
        s.fold(1.0, &b);
    }
}
