//! Versioned whole-simulation checkpoints.
//!
//! A checkpoint captures everything a [`Simulation`](crate::Simulation)
//! needs to continue a run exactly where it stopped: the [`RunLog`] so
//! far (which doubles as the round cursor — rounds are always driven in
//! order), the simulated clock's instant, and an [`AlgoState`] bag the
//! algorithm fills with its own evolving state (model state dicts, RNG
//! cursors, optimizer moments, registry counters). The contract, pinned
//! by the workspace's resume-equivalence suite: **kill at round *k*,
//! resume from the checkpoint, and the finished `RunLog` is bit-identical
//! to the uninterrupted run's** — for every worker-thread count.
//!
//! Two pieces of driver state are deliberately *not* stored:
//!
//! * the participation sampler and the churn model are pure functions of
//!   `(seed, round)`, so a resumed run re-derives their timelines;
//! * the carried-forward evaluation snapshot is reconstructed from the
//!   last logged round (the log carries accuracies forward over skipped
//!   rounds by design).
//!
//! The file format is the workspace's hand-rolled JSON (readable,
//! diffable, already the artifact format), with binary state dicts
//! embedded as hex-encoded [`fedzkt_nn::encode_state_dict`] blobs:
//!
//! ```text
//! {"format":"fedzkt-checkpoint","version":1,
//!  "seed":…,"devices":…,"rounds_done":…,"clock_now":…|null,
//!  "algo":{"blobs":[["name","hex…"],…],"words":[["name",[…]],…]},
//!  "log":{"rounds":[…]}}
//! ```
//!
//! `format`/`version` gate parsing: an unknown version is an error, never
//! a guess. [`SimCheckpoint::save`] writes atomically (temp file +
//! rename) so a crash mid-write can never leave a torn checkpoint where
//! a resumable one used to be.

use crate::{json, RunLog};
use fedzkt_nn::{decode_state_dict, encode_state_dict, StateDict};
use std::path::Path;

/// The `format` tag every checkpoint file carries.
pub const CHECKPOINT_FORMAT: &str = "fedzkt-checkpoint";

/// Current checkpoint schema version; bumped on any layout change.
pub const CHECKPOINT_VERSION: u32 = 1;

/// An algorithm's serialized evolving state: named binary blobs (state
/// dicts via [`AlgoState::put_dict`], or arbitrary bytes) plus named
/// `u64` word vectors (RNG cursors, counters, flags).
///
/// The driver treats this as an opaque bag; each
/// [`FederatedAlgorithm`](crate::FederatedAlgorithm) defines its own
/// entry names in `save_state` and reads them back in `load_state`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AlgoState {
    /// Named binary payloads, in insertion order.
    pub blobs: Vec<(String, Vec<u8>)>,
    /// Named `u64` vectors, in insertion order.
    pub words: Vec<(String, Vec<u64>)>,
}

impl AlgoState {
    /// An empty bag (what a stateless algorithm saves).
    pub fn new() -> Self {
        AlgoState::default()
    }

    /// Store a named binary blob.
    pub fn put_blob(&mut self, name: impl Into<String>, bytes: Vec<u8>) {
        self.blobs.push((name.into(), bytes));
    }

    /// Look up a named blob.
    ///
    /// # Errors
    /// Returns a message naming the missing entry.
    pub fn blob(&self, name: &str) -> Result<&[u8], String> {
        self.blobs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| format!("checkpoint is missing blob \"{name}\""))
    }

    /// Store a state dict as a named blob (binary-encoded; bit-exact).
    pub fn put_dict(&mut self, name: impl Into<String>, sd: &StateDict) {
        self.put_blob(name, encode_state_dict(sd).to_vec());
    }

    /// Decode a state dict stored by [`AlgoState::put_dict`].
    ///
    /// # Errors
    /// Returns a message when the entry is missing or malformed.
    pub fn dict(&self, name: &str) -> Result<StateDict, String> {
        decode_state_dict(self.blob(name)?)
            .map_err(|e| format!("checkpoint blob \"{name}\": {e}"))
    }

    /// Store a named `u64` vector.
    pub fn put_words(&mut self, name: impl Into<String>, words: Vec<u64>) {
        self.words.push((name.into(), words));
    }

    /// Look up a named `u64` vector.
    ///
    /// # Errors
    /// Returns a message naming the missing entry.
    pub fn words(&self, name: &str) -> Result<&[u64], String> {
        self.words
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, w)| w.as_slice())
            .ok_or_else(|| format!("checkpoint is missing words \"{name}\""))
    }

    /// Does the bag contain a blob with this name? (For optional entries
    /// such as per-device summaries of never-touched devices.)
    pub fn has_blob(&self, name: &str) -> bool {
        self.blobs.iter().any(|(n, _)| n == name)
    }
}

/// A complete, versioned snapshot of a [`Simulation`](crate::Simulation)
/// between rounds; produced by `Simulation::checkpoint`, consumed by
/// `Simulation::resume_from`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimCheckpoint {
    /// Schema version ([`CHECKPOINT_VERSION`] when written by this build).
    pub version: u32,
    /// The run's master seed; resume refuses a mismatched config.
    pub seed: u64,
    /// Fleet size; resume refuses a mismatched algorithm.
    pub devices: usize,
    /// Rounds completed (always `log.rounds.len()`; stored explicitly so
    /// a torn or hand-edited file is detectable).
    pub rounds_done: usize,
    /// The simulated clock's instant, when the run has a clock.
    pub clock_now: Option<f64>,
    /// The algorithm's own serialized state.
    pub algo: AlgoState,
    /// The run log so far.
    pub log: RunLog,
}

fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xF) as usize] as char);
    }
    out
}

fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex blob".into());
    }
    let nibble = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(format!("bad hex digit {:?}", c as char)),
        }
    };
    let bytes = s.as_bytes();
    (0..s.len() / 2).map(|i| Ok(nibble(bytes[2 * i])? << 4 | nibble(bytes[2 * i + 1])?)).collect()
}

impl SimCheckpoint {
    /// Render the checkpoint as one JSON document.
    pub fn to_json(&self) -> String {
        let clock = match self.clock_now {
            Some(t) if t.is_finite() => format!("{t}"),
            _ => "null".into(),
        };
        let blobs: Vec<String> = self
            .algo
            .blobs
            .iter()
            .map(|(n, b)| format!("[\"{}\",\"{}\"]", json::escape(n), hex_encode(b)))
            .collect();
        let words: Vec<String> = self
            .algo
            .words
            .iter()
            .map(|(n, w)| {
                let ws: Vec<String> = w.iter().map(u64::to_string).collect();
                format!("[\"{}\",[{}]]", json::escape(n), ws.join(","))
            })
            .collect();
        format!(
            "{{\"format\":\"{CHECKPOINT_FORMAT}\",\"version\":{},\"seed\":{},\
             \"devices\":{},\"rounds_done\":{},\"clock_now\":{},\
             \"algo\":{{\"blobs\":[{}],\"words\":[{}]}},\"log\":{}}}",
            self.version,
            self.seed,
            self.devices,
            self.rounds_done,
            clock,
            blobs.join(","),
            words.join(","),
            self.log.to_json(),
        )
    }

    /// Parse a checkpoint written by [`SimCheckpoint::to_json`].
    ///
    /// # Errors
    /// Returns a message on an unrecognized format tag, an unsupported
    /// version, or any structural mismatch — a malformed checkpoint is
    /// refused, never partially applied.
    pub fn from_json(input: &str) -> Result<SimCheckpoint, String> {
        let value = json::parse(input)?;
        match value.get("format").and_then(json::Value::as_str) {
            Some(CHECKPOINT_FORMAT) => {}
            other => return Err(format!("not a checkpoint file (format tag {other:?})")),
        }
        let int = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(json::Value::as_number)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("missing or malformed \"{key}\""))
        };
        let version = int("version")? as u32;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let clock_now = match value.get("clock_now") {
            None | Some(json::Value::Null) => None,
            Some(v) => Some(
                v.as_number()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| "malformed \"clock_now\"".to_string())?,
            ),
        };
        let algo_value = value.get("algo").ok_or_else(|| "missing \"algo\"".to_string())?;
        let pairs = |key: &str| -> Result<&[json::Value], String> {
            algo_value
                .get(key)
                .and_then(json::Value::as_array)
                .ok_or_else(|| format!("missing \"algo.{key}\" array"))
        };
        let mut algo = AlgoState::new();
        for entry in pairs("blobs")? {
            let pair = entry.as_array().filter(|p| p.len() == 2).ok_or("malformed blob entry")?;
            let name = pair[0].as_str().ok_or("blob name must be a string")?;
            let hex = pair[1].as_str().ok_or("blob payload must be a hex string")?;
            algo.put_blob(name, hex_decode(hex).map_err(|e| format!("blob \"{name}\": {e}"))?);
        }
        for entry in pairs("words")? {
            let pair = entry.as_array().filter(|p| p.len() == 2).ok_or("malformed words entry")?;
            let name = pair[0].as_str().ok_or("words name must be a string")?;
            let ws: Vec<u64> = pair[1]
                .as_array()
                .ok_or("words payload must be an array")?
                .iter()
                .map(|w| w.as_number().and_then(|s| s.parse().ok()))
                .collect::<Option<_>>()
                .ok_or_else(|| format!("words \"{name}\": non-integer entry"))?;
            algo.put_words(name, ws);
        }
        let log_value = value.get("log").ok_or_else(|| "missing \"log\"".to_string())?;
        let log = RunLog::from_value(log_value)?;
        let rounds_done = int("rounds_done")? as usize;
        if rounds_done != log.rounds.len() {
            return Err(format!(
                "checkpoint claims {rounds_done} rounds but its log holds {}",
                log.rounds.len()
            ));
        }
        Ok(SimCheckpoint {
            version,
            seed: int("seed")?,
            devices: int("devices")? as usize,
            rounds_done,
            clock_now,
            algo,
            log,
        })
    }

    /// Write the checkpoint to `path` atomically: the document goes to a
    /// sibling temp file first and is renamed into place, so an
    /// interrupted write leaves either the old checkpoint or the new one
    /// — never a torn file.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a checkpoint written by [`SimCheckpoint::save`].
    ///
    /// # Errors
    /// Returns I/O errors, or parse failures mapped into
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<SimCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        SimCheckpoint::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundMetrics;
    use fedzkt_tensor::Tensor;

    fn sample() -> SimCheckpoint {
        let mut algo = AlgoState::new();
        algo.put_dict(
            "global",
            &StateDict { params: vec![Tensor::from_vec(vec![1.5, -2.25], &[2]).unwrap()], buffers: vec![] },
        );
        algo.put_blob("raw \"quoted\"", vec![0, 1, 254, 255]);
        algo.put_words("rng", vec![u64::MAX, 0, 7, 42]);
        let mut log = RunLog::new();
        log.push(RoundMetrics {
            avg_device_accuracy: 0.5,
            device_accuracy: vec![0.5],
            sim_seconds: 12.25,
            ..RoundMetrics::new(1)
        });
        SimCheckpoint {
            version: CHECKPOINT_VERSION,
            seed: 9,
            devices: 3,
            rounds_done: 1,
            clock_now: Some(12.25),
            algo,
            log,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let ck = sample();
        let back = SimCheckpoint::from_json(&ck.to_json()).expect("parse back");
        assert_eq!(ck, back);
        // The state dict survives bit-for-bit through the hex embedding.
        assert_eq!(back.algo.dict("global").unwrap(), ck.algo.dict("global").unwrap());
        assert_eq!(back.algo.blob("raw \"quoted\"").unwrap(), &[0, 1, 254, 255]);
        assert_eq!(back.algo.words("rng").unwrap(), &[u64::MAX, 0, 7, 42]);
    }

    #[test]
    fn file_save_is_atomic_and_loads_back() {
        let dir = std::env::temp_dir().join("fedzkt_sim_ckpt_test");
        let path = dir.join("run.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        // The temp staging file must not linger.
        assert!(!path.with_extension("tmp").exists());
        assert_eq!(SimCheckpoint::load(&path).unwrap(), ck);
        // Overwriting goes through the same atomic path.
        let mut newer = ck.clone();
        newer.seed = 10;
        newer.save(&path).unwrap();
        assert_eq!(SimCheckpoint::load(&path).unwrap().seed, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_and_future_files_are_refused() {
        assert!(SimCheckpoint::from_json("{\"rounds\":[]}").is_err(), "a RunLog is not a checkpoint");
        let future = sample().to_json().replacen("\"version\":1", "\"version\":2", 1);
        let err = SimCheckpoint::from_json(&future).unwrap_err();
        assert!(err.contains("version 2"), "{err}");
        let torn = sample().to_json().replacen("\"rounds_done\":1", "\"rounds_done\":5", 1);
        assert!(SimCheckpoint::from_json(&torn).is_err(), "round count must match the log");
    }

    #[test]
    fn hex_is_strict() {
        assert_eq!(hex_decode(&hex_encode(&[0xde, 0xad, 0x00])).unwrap(), vec![0xde, 0xad, 0x00]);
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "bad digit");
        assert!(hex_decode("AB").is_err(), "uppercase is not emitted, so not accepted");
    }

    #[test]
    fn missing_entries_are_named_in_errors() {
        let bag = AlgoState::new();
        assert!(bag.blob("global").unwrap_err().contains("global"));
        assert!(bag.words("rng").unwrap_err().contains("rng"));
        assert!(!bag.has_blob("anything"));
    }
}
